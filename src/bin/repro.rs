//! Reproduction harness: regenerates every table and figure of the
//! ICDE'94 declustering study.
//!
//! Run `repro` with no arguments for the usage text — it is generated
//! from the [`EXPERIMENTS`] table below, the single source of truth for
//! experiment names, descriptions, and which experiments accept
//! `--metrics` / `--trace` (the ones that run through the instrumented
//! evaluation engine).
//!
//! `--quick` cuts the query budget (for smoke tests); `--csv DIR` also
//! writes each sweep as CSV into DIR; `--threads N` (N ≥ 1) evaluates
//! sweep points on N worker threads — the tables are bit-identical for
//! every thread count, and so is the `--metrics` snapshot (wall-clock
//! timings go to stderr). `--faults SPEC` overrides the fault schedule
//! of the `faults` experiment (grammar: `fail:D@T`, `transient:D@A..B`,
//! `slow:DxF@A..B`, comma-separated; see EXPERIMENTS.md); `--method
//! NAME` restricts the `faults` table to one method. `--kernel-cache
//! FILE` persists the compiled count kernels (persist v3): the first
//! run pays the build phase and writes FILE, later runs adopt the
//! stored kernels and reach their first scored query with zero
//! build-phase work — outputs are byte-identical either way.

use decluster::grid::{GridDirectory, IoPlan};
use decluster::methods::KernelCache;
use decluster::obs::{JsonLinesSink, MetricsRecorder, Obs};
use decluster::prelude::*;
use decluster::sim::workload::{all_partial_match_queries, InterArrival, ShapeSweep, SizeSweep};
use decluster::sim::{
    sharded_arrivals, simulate_rebuild_obs, AvailSweep, DbSizePoint, DiskParams, FaultEvent,
    FaultReport, FaultSchedule, LoadPoint, LoopScratch, MultiUserEngine, ReplicaPolicy, Report,
    ReportFormat, RetryPolicy, ServeSpec, ServeSweep, ShareSweep, TextTable,
};
use decluster::theory::{impossibility, partial_match};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

/// Default configuration of the study (see EXPERIMENTS.md).
const GRID_SIDE: u32 = 64;
const DISKS: u32 = 16;
const SEED: u64 = 1994;

/// One experiment the harness can run: CLI name, usage-line description,
/// and whether it runs through the instrumented evaluation engine (the
/// sweep / fault / multi-user paths that feed `--metrics` and
/// `--trace`). This table is the single source of truth for the usage
/// text, name validation, and the metrics/trace gate.
struct ExperimentSpec {
    name: &'static str,
    describe: &'static str,
    engine: bool,
}

const EXPERIMENTS: &[ExperimentSpec] = &[
    ExperimentSpec {
        name: "e1",
        describe: "query-size sweep, 2-D (paper Experiment 1 / Fig 3)",
        engine: true,
    },
    ExperimentSpec {
        name: "e2",
        describe: "query-shape sweep (paper Experiment 2 / Fig 4)",
        engine: true,
    },
    ExperimentSpec {
        name: "e3",
        describe: "query-size sweep, 3 attributes (paper Experiment 3 / Fig 6)",
        engine: true,
    },
    ExperimentSpec {
        name: "e4",
        describe: "disks sweep, small queries (paper Fig 5a)",
        engine: true,
    },
    ExperimentSpec {
        name: "e5",
        describe: "disks sweep, large queries (paper Fig 5b)",
        engine: true,
    },
    ExperimentSpec {
        name: "e6",
        describe: "database-size sweep",
        engine: true,
    },
    ExperimentSpec {
        name: "t1",
        describe: "partial-match optimality-condition table (paper Table 1)",
        engine: false,
    },
    ExperimentSpec {
        name: "t2",
        describe: "partial-match response-time table",
        engine: true,
    },
    ExperimentSpec {
        name: "t3",
        describe: "exact worst/mean/optimal-fraction shape profiles (extension)",
        engine: false,
    },
    ExperimentSpec {
        name: "mix",
        describe: "mixed-workload table: OLTP / OLAP / scan-heavy mixes (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "avail",
        describe:
            "availability: r-way replication x policy x fault schedule serving sweep (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "abl",
        describe: "space-filling-curve ablation for HCAM (extension)",
        engine: false,
    },
    ExperimentSpec {
        name: "thm",
        describe: "the M > 5 impossibility theorem",
        engine: false,
    },
    ExperimentSpec {
        name: "faults",
        describe: "degraded-mode table under an injected fault schedule (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "multiuser",
        describe: "multi-user closed-loop throughput grid + open-loop load sweep (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "serve",
        describe: "event-driven open-loop serving: per-method saturation-knee curves (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "share",
        describe: "shared-scan batching: shared vs unshared serving across overlap x replicas (extension)",
        engine: true,
    },
    ExperimentSpec {
        name: "all",
        describe: "everything above (bench stays opt-in)",
        engine: true,
    },
    ExperimentSpec {
        name: "bench",
        describe:
            "timing snapshots: RT kernel, multi-user engine, serve core, shared scans (writes BENCH_*.json)",
        engine: false,
    },
    ExperimentSpec {
        name: "bench_warm",
        describe:
            "warm-start timing: cold vs kernel-cache startup-to-first-query (writes BENCH_warm.json)",
        engine: false,
    },
    ExperimentSpec {
        name: "bench_parallel",
        describe:
            "sharded-serving scaling: shards x rate events/sec grid, serial-vs-sharded byte-identity (writes BENCH_parallel.json)",
        engine: false,
    },
];

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|e| e.name).collect();
    let mut u = format!(
        "usage: repro <{}>\n       [--csv DIR] [--quick] [--threads N] [--shards S] \
         [--faults SPEC] [--method NAME]\n       [--replicas R] [--policy NAME] [--clients N] \
         [--rate R]\n       [--share F] [--batch-window MS] [--kernel-cache FILE]\n       \
         [--metrics FILE|-] [--trace FILE|-]\n\n\
         experiments:\n",
        names.join("|")
    );
    for e in EXPERIMENTS {
        u.push_str(&format!("  {:<6} {}\n", e.name, e.describe));
    }
    u.push_str(
        "\n--metrics writes the deterministic metrics snapshot (wall-clock timings go\n\
         to stderr); --trace writes JSON-lines trace events; `-` means stdout. Both\n\
         apply only to experiments that run the instrumented engine:\n ",
    );
    for e in EXPERIMENTS.iter().filter(|e| e.engine) {
        u.push(' ');
        u.push_str(e.name);
    }
    u.push('\n');
    u.push_str(&format!(
        "\n--replicas R (1..{DISKS}) sets the r-way chain depth and --policy \
         ({}) the replica routing\nof the faults, avail, and fault-injected serve \
         experiments.\n",
        ReplicaPolicy::ACCEPTED_NAMES
    ));
    u.push_str(
        "\n--share F redirects fraction F (0..=1) of the serve stream to one hot\n\
         scan and --batch-window MS merges arrivals within MS ms into one shared\n\
         scan; either routes `serve` through the shared-scan path (spread policy,\n\
         healthy mode only, so not combinable with --faults). The `share`\n\
         experiment sweeps overlap x replicas and honors --share as one overlap.\n",
    );
    u.push_str(
        "\n--kernel-cache FILE loads/saves a persist-v3 image of the compiled count\n\
         kernels: a warmed run skips the kernel build phase entirely (stale entries\n\
         revalidate and rebuild; outputs are byte-identical with or without it).\n",
    );
    u.push_str(&format!(
        "\n--shards S (1..={DISKS}) splits each healthy open-loop serve run over S\n\
         disk shards; every table, metric, and sample is byte-identical at any\n\
         shard count (the fault-injected path has global feedback and stays\n\
         serial regardless).\n"
    ));
    u
}

/// Shared validation of numeric flag arguments: parses the flag's value
/// and checks it, rendering rejections with the one uniform one-line
/// phrasing `--<flag> needs <what>` used by `--threads`,
/// `--batch-window`, and `--shards`.
fn parse_flag<T: std::str::FromStr>(
    flag: &str,
    what: &str,
    arg: Option<&String>,
    valid: impl Fn(&T) -> bool,
) -> Result<T, String> {
    arg.and_then(|s| s.parse::<T>().ok())
        .filter(|v| valid(v))
        .ok_or_else(|| format!("{flag} needs {what}"))
}

struct Opts {
    csv_dir: Option<String>,
    queries: usize,
    quick: bool,
    threads: usize,
    /// Disk shards each healthy open-loop serve run is split over
    /// (byte-identical at any count); 1 = the serial loop.
    shards: usize,
    /// Arrivals per (rate, method) cell of the `serve` experiment;
    /// `None` = 50,000 (5,000 with `--quick`).
    clients: Option<usize>,
    /// Base arrival rate (queries/s) the `serve` sweep scales around.
    rate: f64,
    /// Fault schedule for the `faults` experiment; `None` = the default
    /// mid-workload single-disk failure.
    faults: Option<FaultSchedule>,
    /// Restrict the `faults` table to one method (validated name).
    method: Option<MethodKind>,
    /// Extra copies per bucket for the replication-aware experiments;
    /// `None` = 1 for `faults`/`serve`, the {1, 2, 3} sweep for `avail`.
    replicas: Option<u32>,
    /// Replica-selection policy; `None` = failover for `faults`/`serve`,
    /// all four policies for `avail`.
    policy: Option<ReplicaPolicy>,
    /// Hot-scan overlap fraction: this share of the `serve` stream is
    /// redirected to one hot scan and the sweep runs through the
    /// shared-scan path; `None` = unshared (0 for the `share` sweep).
    share: Option<f64>,
    /// Shared-scan batch window in ms for the `serve` sweep; `None` =
    /// unshared (0 ms once `--share` routes it through the shared path).
    batch_window: Option<f64>,
    /// Path of the persist-v3 compiled-kernel image (`--kernel-cache`):
    /// loaded before the run when the file exists, consulted by every
    /// engine/context build (a hit skips the kernel build phase), and
    /// written back after the run so a cold start warms the next one.
    kernel_cache_path: Option<String>,
    /// The loaded kernel cache shared with the experiment harness.
    kernel_cache: Option<Arc<Mutex<KernelCache>>>,
    /// Destination for the deterministic metrics snapshot (`-` = stdout).
    metrics: Option<String>,
    /// Destination for JSON-lines trace events (`-` = stdout).
    trace: Option<String>,
    /// The observability handle threaded through the engine; disabled
    /// unless `--metrics` or `--trace` was given.
    obs: Obs,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut opts = Opts {
        csv_dir: None,
        queries: 1000,
        quick: false,
        threads: 1,
        shards: 1,
        clients: None,
        rate: 12.0,
        faults: None,
        method: None,
        replicas: None,
        policy: None,
        share: None,
        batch_window: None,
        kernel_cache_path: None,
        kernel_cache: None,
        metrics: None,
        trace: None,
        obs: Obs::disabled(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => match it.next() {
                Some(dir) => opts.csv_dir = Some(dir.clone()),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => {
                opts.queries = 100;
                opts.quick = true;
            }
            "--threads" => {
                match parse_flag(
                    "--threads",
                    "a positive thread count",
                    it.next(),
                    |&n: &usize| n > 0,
                ) {
                    Ok(n) => opts.threads = n,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shards" => {
                match parse_flag(
                    "--shards",
                    &format!("a shard count in 1..={DISKS} (M = {DISKS} disks)"),
                    it.next(),
                    |&s: &usize| (1..=DISKS as usize).contains(&s),
                ) {
                    Ok(s) => opts.shards = s,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--clients" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(0) | None => {
                    eprintln!("--clients needs a positive client count");
                    return ExitCode::FAILURE;
                }
                Some(n) => opts.clients = Some(n),
            },
            "--rate" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if r > 0.0 && r.is_finite() => opts.rate = r,
                _ => {
                    eprintln!("--rate needs a positive arrival rate");
                    return ExitCode::FAILURE;
                }
            },
            "--faults" => match it.next() {
                Some(spec) => match FaultSchedule::parse(spec, DISKS) {
                    Ok(schedule) => opts.faults = Some(schedule),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--faults needs a schedule spec (e.g. fail:3@50)");
                    return ExitCode::FAILURE;
                }
            },
            "--method" => match it.next() {
                Some(name) => match MethodKind::parse(name) {
                    Ok(kind) => opts.method = Some(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--method needs a method name (e.g. HCAM)");
                    return ExitCode::FAILURE;
                }
            },
            "--replicas" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(r) if (1..DISKS).contains(&r) => opts.replicas = Some(r),
                _ => {
                    eprintln!("--replicas needs a replica count in 1..{DISKS} (M = {DISKS} disks)");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match it.next() {
                Some(name) => match ReplicaPolicy::parse(name) {
                    Ok(policy) => opts.policy = Some(policy),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!(
                        "--policy needs a replica policy ({})",
                        ReplicaPolicy::ACCEPTED_NAMES
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--share" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => opts.share = Some(f),
                _ => {
                    eprintln!("--share needs an overlap fraction in 0..=1");
                    return ExitCode::FAILURE;
                }
            },
            "--batch-window" => {
                match parse_flag(
                    "--batch-window",
                    "a non-negative window in ms",
                    it.next(),
                    |&w: &f64| w.is_finite() && w >= 0.0,
                ) {
                    Ok(w) => opts.batch_window = Some(w),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--kernel-cache" => match it.next() {
                Some(path) => opts.kernel_cache_path = Some(path.clone()),
                None => {
                    eprintln!("--kernel-cache needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => match it.next() {
                Some(dest) => opts.metrics = Some(dest.clone()),
                None => {
                    eprintln!("--metrics needs a destination file (or - for stdout)");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(dest) => opts.trace = Some(dest.clone()),
                None => {
                    eprintln!("--trace needs a destination file (or - for stdout)");
                    return ExitCode::FAILURE;
                }
            },
            other if experiment.is_none() => experiment = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let Some(spec) = EXPERIMENTS.iter().find(|e| e.name == experiment) else {
        eprintln!("unknown experiment {experiment:?}");
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    if (opts.metrics.is_some() || opts.trace.is_some()) && !spec.engine {
        eprintln!(
            "--metrics/--trace do not apply to {experiment}: it computes exact \
             tables without running the instrumented engine"
        );
        return ExitCode::FAILURE;
    }
    let recorder = if opts.metrics.is_some() || opts.trace.is_some() {
        let rec = match opts.trace.as_deref() {
            Some("-") => MetricsRecorder::with_sink(Box::new(JsonLinesSink::new(Box::new(
                std::io::stdout(),
            )
                as Box<dyn std::io::Write + Send>))),
            Some(path) => match std::fs::File::create(path) {
                Ok(f) => MetricsRecorder::with_sink(Box::new(JsonLinesSink::new(
                    Box::new(f) as Box<dyn std::io::Write + Send>
                ))),
                Err(e) => {
                    eprintln!("could not create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => MetricsRecorder::new(),
        };
        let rec = Arc::new(rec);
        opts.obs = Obs::new(rec.clone());
        Some(rec)
    } else {
        None
    };
    if let Some(path) = &opts.kernel_cache_path {
        let cache = match std::fs::read(path) {
            Ok(bytes) => match KernelCache::from_bytes(&bytes) {
                Ok(cache) => cache,
                Err(e) => {
                    eprintln!("could not load kernel cache {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => KernelCache::new(),
            Err(e) => {
                eprintln!("could not read kernel cache {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        opts.kernel_cache = Some(Arc::new(Mutex::new(cache)));
    }
    let run = |name: &str| -> bool { experiment == name || experiment == "all" };
    let mut ran_any = false;
    if run("e1") {
        emit(&opts, "e1", e1(&opts));
        ran_any = true;
    }
    if run("e2") {
        emit(&opts, "e2", e2(&opts));
        ran_any = true;
    }
    if run("e3") {
        emit(&opts, "e3", e3(&opts));
        ran_any = true;
    }
    if run("e4") {
        emit(&opts, "e4", e4(&opts));
        ran_any = true;
    }
    if run("e5") {
        emit(&opts, "e5", e5(&opts));
        ran_any = true;
    }
    if run("e6") {
        emit(&opts, "e6", e6(&opts));
        ran_any = true;
    }
    if run("t1") {
        println!("{}", t1());
        ran_any = true;
    }
    if run("t2") {
        emit(&opts, "t2", t2(&opts));
        ran_any = true;
    }
    if run("t3") {
        println!("{}", t3());
        ran_any = true;
    }
    if run("mix") {
        emit(&opts, "mix", mixes(&opts));
        ran_any = true;
    }
    if run("avail") {
        println!("{}", availability());
        match avail_sweep(&opts) {
            Ok(sweep) => emit_avail(&opts, &sweep),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        ran_any = true;
    }
    if run("abl") {
        println!("{}", ablation());
        ran_any = true;
    }
    if run("thm") {
        println!("{}", thm());
        ran_any = true;
    }
    if run("faults") {
        let schedule = fault_schedule(&opts);
        match faults(&opts, &schedule) {
            Ok(report) => {
                emit_faults(&opts, &report);
                println!("{}", rebuild_summary(&opts, &schedule));
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        ran_any = true;
    }
    if run("multiuser") {
        emit(&opts, "multiuser", multiuser_grid(&opts));
        emit_load_sweep(&opts, load_curve(&opts));
        ran_any = true;
    }
    if run("serve") {
        match serve_sweep(&opts) {
            Ok(sweep) => emit_serve(&opts, &sweep),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        ran_any = true;
    }
    if run("share") {
        match share_sweep_exp(&opts) {
            Ok(sweep) => emit_share(&opts, &sweep),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        ran_any = true;
    }
    // The timing snapshots are opt-in only: their numbers are wall-clock
    // and so not deterministic, unlike everything `all` emits.
    if experiment == "bench" {
        println!("{}", bench(&opts));
        println!("{}", bench_multiuser(&opts));
        println!("{}", bench_serve(&opts));
        println!("{}", bench_avail(&opts));
        println!("{}", bench_share(&opts));
        println!("{}", bench_warm(&opts));
        ran_any = true;
    }
    if experiment == "bench_warm" {
        println!("{}", bench_warm(&opts));
        ran_any = true;
    }
    if experiment == "bench_parallel" {
        println!("{}", bench_parallel(&opts));
        ran_any = true;
    }
    if !ran_any {
        eprintln!("unknown experiment {experiment:?}");
        return ExitCode::FAILURE;
    }
    if let (Some(path), Some(cache)) = (&opts.kernel_cache_path, &opts.kernel_cache) {
        let bytes = cache.lock().expect("kernel cache lock").to_bytes();
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("could not write kernel cache {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(rec) = recorder {
        if let Err(e) = rec.flush() {
            eprintln!("could not flush trace sink: {e}");
            return ExitCode::FAILURE;
        }
        let snapshot = rec.registry().snapshot();
        if let Some(dest) = &opts.metrics {
            // Deterministic sections go to the requested destination (so
            // 1-vs-N-thread diffs stay clean); wall-clock timings always
            // go to stderr.
            let format = metrics_format(dest);
            if dest == "-" {
                print!("{}", snapshot.render(format));
            } else if let Err(e) = std::fs::write(dest, snapshot.render(format)) {
                eprintln!("could not write metrics to {dest}: {e}");
                return ExitCode::FAILURE;
            }
            eprint!("{}", snapshot.render_wall_text());
        }
    }
    ExitCode::SUCCESS
}

/// Picks the metrics report format from the destination name: `.json`
/// and `.csv` extensions select those formats, everything else (incl.
/// `-`) gets the text table.
fn metrics_format(dest: &str) -> ReportFormat {
    if dest.ends_with(".json") {
        ReportFormat::Json
    } else if dest.ends_with(".csv") {
        ReportFormat::Csv
    } else {
        ReportFormat::Table
    }
}

fn emit(opts: &Opts, name: &str, result: SweepResult) {
    println!("{}", result.render(ReportFormat::Table));
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            let mut f = std::fs::File::create(format!("{dir}/{name}.csv"))?;
            f.write_all(result.render(ReportFormat::Csv).as_bytes())
        }) {
            eprintln!("could not write {name}.csv: {e}");
        }
    }
}

fn emit_faults(opts: &Opts, report: &FaultReport) {
    println!("{}", report.render(ReportFormat::Table));
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            let mut f = std::fs::File::create(format!("{dir}/faults.csv"))?;
            f.write_all(report.render(ReportFormat::Csv).as_bytes())
        }) {
            eprintln!("could not write faults.csv: {e}");
        }
    }
}

fn grid_2d() -> GridSpace {
    GridSpace::new_2d(GRID_SIDE, GRID_SIDE).expect("default grid")
}

fn experiment_2d(opts: &Opts) -> Experiment {
    let e = Experiment::new(grid_2d(), DISKS)
        .with_queries_per_point(opts.queries)
        .with_seed(SEED)
        .with_threads(opts.threads)
        .with_shards(opts.shards)
        .with_obs(opts.obs.clone());
    match &opts.kernel_cache {
        Some(cache) => e.with_kernel_cache(cache.clone()),
        None => e,
    }
}

/// E1: query area 1 → 1024 on the 64×64 grid, near-square shapes.
fn e1(opts: &Opts) -> SweepResult {
    let areas = vec![
        1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    ];
    experiment_2d(opts)
        .run_size_sweep(&SizeSweep::explicit(areas))
        .expect("E1 configuration is valid")
}

/// E2: aspect ratio 1:1 → 1:64 at fixed area 64.
fn e2(opts: &Opts) -> SweepResult {
    experiment_2d(opts)
        .run_shape_sweep(&ShapeSweep::new(64, 6))
        .expect("E2 configuration is valid")
}

/// E3: three attributes (16³ grid), query volume sweep.
fn e3(opts: &Opts) -> SweepResult {
    let space = GridSpace::new_cube(3, 16).expect("cube grid");
    Experiment::new(space, DISKS)
        .with_queries_per_point(opts.queries)
        .with_seed(SEED)
        .with_threads(opts.threads)
        .with_obs(opts.obs.clone())
        .run_size_sweep(&SizeSweep::explicit(vec![
            1, 8, 27, 64, 125, 216, 512, 1024,
        ]))
        .expect("E3 configuration is valid")
}

const DISK_SWEEP: [u32; 16] = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32];

/// E4 / Fig 5(a): disks 2 → 32, small queries (area 4).
fn e4(opts: &Opts) -> SweepResult {
    experiment_2d(opts)
        .run_disk_sweep(&DISK_SWEEP, 4)
        .expect("E4 configuration is valid")
}

/// E5 / Fig 5(b): disks 2 → 32, large queries (area 256).
fn e5(opts: &Opts) -> SweepResult {
    experiment_2d(opts)
        .run_disk_sweep(&DISK_SWEEP, 256)
        .expect("E5 configuration is valid")
}

/// E6: database size 16 → 256 per side, query side an eighth of the grid.
fn e6(opts: &Opts) -> SweepResult {
    let points: Vec<DbSizePoint> = [16u32, 32, 64, 128, 256]
        .iter()
        .map(|&side| DbSizePoint {
            side,
            query_side: (side / 8).max(1),
        })
        .collect();
    experiment_2d(opts)
        .run_dbsize_sweep(&points)
        .expect("E6 configuration is valid")
}

/// T1: the optimality-condition table, verified empirically over every
/// partial-match query of the default grid.
fn t1() -> String {
    use decluster::methods::{AllocationMap, DiskModulo, FieldwiseXor};
    let space = grid_2d();
    let queries = all_partial_match_queries(&space);
    let mut out = String::new();
    out.push_str(&format!(
        "T1: partial-match optimality conditions, verified on {}x{} grid, M={} ({} queries)\n",
        GRID_SIDE,
        GRID_SIDE,
        DISKS,
        queries.len()
    ));
    out.push_str("method  predicted  confirmed  violated  bonus-optimal  unpredicted-suboptimal\n");
    let dm = AllocationMap::from_method(&space, &DiskModulo::new(&space, DISKS).unwrap()).unwrap();
    let check = partial_match::check_prediction(&dm, &queries, partial_match::dm_predicts_optimal);
    out.push_str(&format!(
        "{:6}  {:>9}  {:>9}  {:>8}  {:>13}  {:>22}\n",
        "DM",
        check.predicted,
        check.confirmed,
        check.violated,
        check.bonus_optimal,
        check.unpredicted_suboptimal
    ));
    let fx =
        AllocationMap::from_method(&space, &FieldwiseXor::new(&space, DISKS).unwrap()).unwrap();
    let check = partial_match::check_prediction(&fx, &queries, partial_match::fx_predicts_optimal);
    out.push_str(&format!(
        "{:6}  {:>9}  {:>9}  {:>8}  {:>13}  {:>22}\n",
        "FX",
        check.predicted,
        check.confirmed,
        check.violated,
        check.bonus_optimal,
        check.unpredicted_suboptimal
    ));
    // ECC and HCAM carry no exact partial-match guarantee in the paper's
    // table; report their empirical behaviour with a never-predicting
    // predicate (everything lands in the bonus/suboptimal columns).
    let registry = MethodRegistry::default();
    for name in ["ECC", "HCAM"] {
        let method = registry
            .build_by_name(name, &space, DISKS)
            .expect("method applies to default grid");
        let alloc = AllocationMap::from_method(&space, method.as_ref()).unwrap();
        let check = partial_match::check_prediction(&alloc, &queries, |_, _, _| false);
        out.push_str(&format!(
            "{:6}  {:>9}  {:>9}  {:>8}  {:>13}  {:>22}\n",
            name,
            check.predicted,
            check.confirmed,
            check.violated,
            check.bonus_optimal,
            check.unpredicted_suboptimal
        ));
    }
    out
}

/// T2: partial-match response time vs number of unspecified attributes.
fn t2(opts: &Opts) -> SweepResult {
    experiment_2d(opts)
        .run_partial_match()
        .expect("T2 configuration is valid")
}

/// Mixed workloads (extension): mix 0 = OLTP (point-heavy), mix 1 =
/// balanced default, mix 2 = OLAP (large ranges + partial match).
fn mixes(opts: &Opts) -> SweepResult {
    use decluster::sim::workload::WorkloadMix;
    let oltp = WorkloadMix {
        point: 0.7,
        partial_match: 0.1,
        small_range: 0.2,
        small_area: 9,
        large_range: 0.0,
        large_area: 256,
    };
    let balanced = WorkloadMix::default();
    let olap = WorkloadMix {
        point: 0.05,
        partial_match: 0.35,
        small_range: 0.1,
        small_area: 16,
        large_range: 0.5,
        large_area: 1024,
    };
    experiment_2d(opts)
        .run_mix(&[oltp, balanced, olap])
        .expect("mix configuration is valid")
}

/// T3 (extension): exact placement statistics — not sampled — for the
/// paper's methods on characteristic shapes.
fn t3() -> String {
    use decluster::methods::AllocationMap;
    use decluster::theory::bounds::shape_profile;
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 16;
    let registry = MethodRegistry::default();
    let shapes: [[u32; 2]; 4] = [[2, 2], [4, 4], [2, 8], [1, 16]];
    let mut out = format!(
        "T3: exact shape profiles on 32x32 grid, M={m} (all placements enumerated)\n{:<6} {:>7} {:>6} {:>6} {:>8} {:>6} {:>9}\n",
        "method", "shape", "best", "worst", "mean", "OPT", "opt-frac"
    );
    for method in registry.paper_methods(&space, m) {
        let alloc = AllocationMap::from_method(&space, method.as_ref()).expect("materializes");
        for shape in &shapes {
            let p = shape_profile(&alloc, shape).expect("shape fits");
            out.push_str(&format!(
                "{:<6} {:>7} {:>6} {:>6} {:>8.3} {:>6} {:>8.1}%\n",
                method.name(),
                format!("{}x{}", shape[0], shape[1]),
                p.best,
                p.worst,
                p.mean,
                p.optimal,
                p.optimal_fraction * 100.0
            ));
        }
    }
    out
}

/// Availability (extension): fraction of query placements that survive
/// one disk failure (touch no bucket of the failed disk), averaged over
/// which disk fails. The mirror image of response time: spreading a
/// query across disks speeds it up but exposes it to every failure.
fn availability() -> String {
    use decluster::methods::AllocationMap;
    use decluster::theory::bounds::failure_survival_fraction;
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 16u32;
    let registry = MethodRegistry::default();
    let shapes: [[u32; 2]; 3] = [[2, 2], [4, 4], [1, 16]];
    let mut out = format!(
        "Availability: survival under one disk failure (32x32 grid, M={m};\n\
         fraction of placements untouched by the failed disk, averaged over disks)\n{:<6}",
        "method"
    );
    for shape in &shapes {
        out.push_str(&format!(" {:>8}", format!("{}x{}", shape[0], shape[1])));
    }
    out.push('\n');
    for method in registry.paper_methods(&space, m) {
        let alloc = AllocationMap::from_method(&space, method.as_ref()).expect("materializes");
        out.push_str(&format!("{:<6}", method.name()));
        for shape in &shapes {
            let avg: f64 = (0..m)
                .map(|d| {
                    failure_survival_fraction(&alloc, shape, DiskId(d))
                        .expect("shape fits, disk in range")
                })
                .sum::<f64>()
                / f64::from(m);
            out.push_str(&format!(" {:>7.1}%", avg * 100.0));
        }
        out.push('\n');
    }
    out.push_str(
        "\nPer shape, the response-time ranking inverts: whichever method\n\
         spreads that shape best (HCAM/ECC on squares, DM/FX on lines) leaves\n\
         the fewest queries untouched by a failure. Without replication,\n\
         speed and failure-isolation trade off exactly.\n",
    );
    out
}

/// Default chain depths the `avail` sweep explores.
const AVAIL_REPLICAS: [u32; 3] = [1, 2, 3];

/// Availability sweep (extension): the engine-backed
/// `fault schedule × r × policy` table. One method (`--method`, default
/// HCAM) serves `--clients` Poisson arrivals at `--rate` while each
/// schedule fails, slows, and recovers disks mid-run; every cell
/// reports availability, loss/retry/failover volume, and the
/// response-time and storage overhead relative to the fault-free
/// unreplicated baseline (the first row). `--faults` replaces the
/// default light/heavy schedules; `--replicas`/`--policy` narrow the
/// sweep to one chain depth / one routing policy.
fn avail_sweep(opts: &Opts) -> Result<AvailSweep, String> {
    let clients = opts
        .clients
        .unwrap_or(if opts.quick { 2_000 } else { 20_000 });
    // The serve clock is milliseconds, so schedule boundaries scale with
    // the expected run span.
    let span = (clients as f64 * 1000.0 / opts.rate) as u64;
    let schedules: Vec<(String, FaultSchedule)> = match &opts.faults {
        Some(schedule) => vec![
            ("none".to_owned(), FaultSchedule::healthy(DISKS)),
            (schedule.describe(), schedule.clone()),
        ],
        None => {
            let light = FaultSchedule::healthy(DISKS)
                .fail_stop(3, span / 2)
                .expect("disk 3 exists on the default array");
            let heavy = FaultSchedule::healthy(DISKS)
                .fail_stop(3, span / 4)
                .and_then(|s| s.transient(7, span / 2, 3 * span / 4))
                .and_then(|s| s.slow(11, 2.0, span / 8, span / 2))
                .expect("the default chaos schedule is valid");
            vec![
                ("none".to_owned(), FaultSchedule::healthy(DISKS)),
                ("light".to_owned(), light),
                ("heavy".to_owned(), heavy),
            ]
        }
    };
    let replicas: Vec<u32> = opts
        .replicas
        .map_or_else(|| AVAIL_REPLICAS.to_vec(), |r| vec![r]);
    let method = opts.method.map_or("HCAM", MethodKind::name);
    let mut sweep = experiment_2d(opts)
        .with_method_filter(method)
        .run_avail_sweep(
            &DiskParams::default(),
            clients,
            opts.rate,
            MULTIUSER_AREA,
            &schedules,
            &replicas,
            RetryPolicy::default(),
            0,
        )
        .map_err(|e| match e {
            decluster::sim::SimError::EmptySweep => {
                format!("method {method} is not part of the avail sweep (paper methods only)")
            }
            e => e.to_string(),
        })?;
    if let Some(policy) = opts.policy {
        // Overheads were computed against the full sweep's baseline
        // before the filter, so narrowing the table changes no number.
        sweep.points.retain(|p| p.policy == policy);
    }
    Ok(sweep)
}

fn emit_avail(opts: &Opts, sweep: &AvailSweep) {
    println!("{}", sweep.render(ReportFormat::Table));
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::write(format!("{dir}/avail.csv"), sweep.render(ReportFormat::Csv))
        }) {
            eprintln!("could not write avail.csv: {e}");
        }
    }
}

/// The schedule the `faults` experiment runs: the `--faults` spec when
/// given, otherwise a fail-stop of disk 3 halfway through the query
/// stream — the paper-style "one of M disks fails mid-workload" scenario.
fn fault_schedule(opts: &Opts) -> FaultSchedule {
    opts.faults.clone().unwrap_or_else(|| {
        FaultSchedule::healthy(DISKS)
            .fail_stop(3, (opts.queries / 2) as u64)
            .expect("disk 3 exists on the default array")
    })
}

/// Faults (extension): every paper method scored healthy vs degraded
/// under the injected schedule, unreplicated and with r-way
/// chained-declustering failover (`--replicas`, `--policy`), over
/// area-64 queries on the default grid.
fn faults(opts: &Opts, schedule: &FaultSchedule) -> Result<FaultReport, String> {
    let mut report = experiment_2d(opts)
        .run_fault_workload_with(
            64,
            schedule,
            &RetryPolicy::default(),
            opts.replicas.unwrap_or(1),
            opts.policy.unwrap_or(ReplicaPolicy::FailoverOnly),
        )
        .map_err(|e| e.to_string())?;
    if let Some(kind) = opts.method {
        let base = kind.name();
        let chained = format!("{base}+chain");
        report.rows.retain(|r| r.name == base || r.name == chained);
        if report.rows.is_empty() {
            return Err(format!(
                "method {base} is not part of the fault workload (paper methods only)"
            ));
        }
    }
    Ok(report)
}

/// Rebuilds the first faulted disk from its chain replica under a live
/// foreground workload and reports the throughput interference.
fn rebuild_summary(opts: &Opts, schedule: &FaultSchedule) -> String {
    use decluster::sim::workload::random_region;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let failed = schedule.events().iter().find_map(|e| match e {
        FaultEvent::FailStop { disk, .. } | FaultEvent::Transient { disk, .. } => Some(*disk),
        FaultEvent::Slow { .. } => None,
    });
    let Some(failed) = failed else {
        return "Rebuild: the schedule fails no disk; nothing to rebuild.".to_owned();
    };
    let space = grid_2d();
    let method = DiskModulo::new(&space, DISKS).expect("DM applies to the default grid");
    let dir = GridDirectory::build(space.clone(), DISKS, |b| method.disk_of(b.as_slice()));
    let n = (opts.queries / 4).max(25);
    let mut rng = StdRng::seed_from_u64(SEED);
    let queries: Vec<BucketRegion> = (0..n)
        .map(|_| random_region(&mut rng, &space, &[8, 8]).expect("8x8 fits the default grid"))
        .collect();
    let r = simulate_rebuild_obs(&dir, &DiskParams::default(), failed, &queries, 8, &opts.obs)
        .expect("the schedule's disks are in range");
    format!(
        "Rebuild of disk {} from its chain replica (DM, {}x{} grid, {} queries, 8 clients):\n  \
         {} pages replayed in {:.1} ms; foreground {:.1} -> {:.1} qps (interference {:.2}x)\n",
        r.failed_disk,
        GRID_SIDE,
        GRID_SIDE,
        n,
        r.pages_rebuilt,
        r.rebuild_ms,
        r.healthy_qps,
        r.degraded_qps,
        r.interference_factor
    )
}

/// Client counts of the multi-user closed-loop grid.
const MULTIUSER_CLIENTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Offered rates (queries/s) of the open-loop load sweep.
const MULTIUSER_RATES: [f64; 6] = [10.0, 20.0, 50.0, 100.0, 200.0, 400.0];
/// Query area of both multi-user workloads (the paper's mid-size query).
const MULTIUSER_AREA: u64 = 64;

/// Multi-user closed loop (extension): throughput per method as the
/// client count grows, every cell running the kernel-backed engine over
/// the deterministic executor.
fn multiuser_grid(opts: &Opts) -> SweepResult {
    experiment_2d(opts)
        .run_multiuser_grid(&DiskParams::default(), &MULTIUSER_CLIENTS, MULTIUSER_AREA)
        .expect("multiuser configuration is valid")
}

/// Open-loop latency-vs-load curves over the same engines and queries.
fn load_curve(opts: &Opts) -> Vec<LoadPoint> {
    experiment_2d(opts)
        .run_load_sweep(&DiskParams::default(), &MULTIUSER_RATES, MULTIUSER_AREA)
        .expect("load sweep configuration is valid")
}

fn load_sweep_table(points: &[LoadPoint]) -> TextTable {
    let methods: Vec<String> = points
        .first()
        .map(|p| p.methods.iter().map(|m| m.name.clone()).collect())
        .unwrap_or_default();
    TextTable {
        title: format!(
            "Open-loop load sweep: mean latency (ms) vs offered load, area-{MULTIUSER_AREA} \
             queries on {GRID_SIDE}x{GRID_SIDE}, M={DISKS}:"
        ),
        headers: std::iter::once("rate qps".to_owned())
            .chain(methods)
            .collect(),
        rows: points
            .iter()
            .map(|p| {
                std::iter::once(format!("{:.0}", p.rate_qps))
                    .chain(
                        p.methods
                            .iter()
                            .map(|m| format!("{:.2}", m.mean_latency_ms)),
                    )
                    .collect()
            })
            .collect(),
        separator: false,
    }
}

fn emit_load_sweep(opts: &Opts, points: Vec<LoadPoint>) {
    print!("{}", load_sweep_table(&points).render());
    if let Some(dir) = &opts.csv_dir {
        let mut csv =
            String::from("rate_qps,method,mean_latency_ms,utilization,p50_ms,p95_ms,p99_ms\n");
        for p in &points {
            for m in &p.methods {
                csv.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                    p.rate_qps,
                    m.name,
                    m.mean_latency_ms,
                    m.utilization,
                    m.tail_ms.p50,
                    m.tail_ms.p95,
                    m.tail_ms.p99
                ));
            }
        }
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(format!("{dir}/loadsweep.csv"), csv))
        {
            eprintln!("could not write loadsweep.csv: {e}");
        }
    }
}

/// Rate fractions the `serve` sweep applies to `--rate`: the full ladder
/// brackets the expected knee from 30% through 115% of the base rate.
const SERVE_FRACTIONS: [f64; 6] = [0.3, 0.5, 0.7, 0.85, 1.0, 1.15];
const SERVE_FRACTIONS_QUICK: [f64; 4] = [0.5, 0.85, 1.0, 1.15];

/// Serve (extension): open-loop saturation-knee curves from the
/// event-driven serving core, `--clients` arrivals per (rate, method)
/// cell at rates scaled around `--rate`. `--method` restricts the sweep
/// to one method; the surviving column is bit-identical to its column
/// in the unrestricted run.
fn serve_sweep(opts: &Opts) -> Result<ServeSweep, String> {
    let clients = opts
        .clients
        .unwrap_or(if opts.quick { 5_000 } else { 50_000 });
    let fractions: &[f64] = if opts.quick {
        &SERVE_FRACTIONS_QUICK
    } else {
        &SERVE_FRACTIONS
    };
    let rates: Vec<f64> = fractions.iter().map(|f| f * opts.rate).collect();
    let mut exp = experiment_2d(opts);
    if let Some(kind) = opts.method {
        exp = exp.with_method_filter(kind.name());
    }
    // Without --faults this is the exact historical serve path; with a
    // schedule the same sweep runs through the fault-injected engine
    // (chaos mode), serving across failures with `--replicas`/`--policy`.
    // --share/--batch-window route through the shared-scan path instead
    // (healthy mode only — the shared loop has no fault machinery).
    let sharing = opts.share.is_some() || opts.batch_window.is_some();
    if sharing && opts.faults.is_some() {
        return Err(
            "--share/--batch-window cannot combine with --faults (the shared loop is \
             healthy-mode only)"
                .into(),
        );
    }
    let sweep = match &opts.faults {
        None if sharing => exp
            .run_serve_sweep_shared(
                &DiskParams::default(),
                clients,
                &rates,
                MULTIUSER_AREA,
                opts.share.unwrap_or(0.0),
                opts.batch_window.unwrap_or(0.0),
                opts.replicas.unwrap_or(1),
            )
            .map_err(|e| e.to_string())?,
        None => exp
            .run_serve_sweep(&DiskParams::default(), clients, &rates, MULTIUSER_AREA)
            .map_err(|e| e.to_string())?,
        Some(schedule) => exp
            .run_serve_sweep_degraded(
                &DiskParams::default(),
                clients,
                &rates,
                MULTIUSER_AREA,
                schedule,
                opts.replicas.unwrap_or(1),
                opts.policy.unwrap_or(ReplicaPolicy::FailoverOnly),
                RetryPolicy::default(),
            )
            .map_err(|e| e.to_string())?,
    };
    if sweep.curves.is_empty() {
        let name = opts.method.map(MethodKind::name).unwrap_or("?");
        return Err(format!(
            "method {name} is not part of the serve sweep (paper methods only)"
        ));
    }
    Ok(sweep)
}

fn emit_serve(opts: &Opts, sweep: &ServeSweep) {
    println!("{}", sweep.render(ReportFormat::Table));
    if let Some(dir) = &opts.csv_dir {
        let mut samples = String::from(
            "rate_qps,method,at_ms,in_flight,busy_disks,completed,p50_ms,p95_ms,p99_ms\n",
        );
        for curve in &sweep.curves {
            for point in &curve.points {
                for s in &point.samples {
                    samples.push_str(&format!(
                        "{},{},{:.3},{},{},{},{:.6},{:.6},{:.6}\n",
                        point.offered_qps,
                        curve.method,
                        s.at_ms,
                        s.in_flight,
                        s.busy_disks,
                        s.completed,
                        s.tail_ms.p50,
                        s.tail_ms.p95,
                        s.tail_ms.p99
                    ));
                }
            }
        }
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::write(format!("{dir}/serve.csv"), sweep.render(ReportFormat::Csv))?;
            std::fs::write(format!("{dir}/serve_samples.csv"), samples)
        }) {
            eprintln!("could not write serve CSVs: {e}");
        }
    }
}

/// Overlap fractions the `share` sweep walks: from disjoint scans to a
/// fully shared hot scan.
const SHARE_OVERLAPS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const SHARE_OVERLAPS_QUICK: [f64; 3] = [0.0, 0.5, 1.0];

/// Share (extension): shared-scan batching versus plain serving across
/// hot-scan overlap x replica depth, at 1.5x the base rate with an
/// 8-arrival batch window (override with `--batch-window`). `--share F`
/// pins the sweep to one overlap, `--replicas R` to one chain depth.
fn share_sweep_exp(opts: &Opts) -> Result<ShareSweep, String> {
    let clients = opts
        .clients
        .unwrap_or(if opts.quick { 2_000 } else { 20_000 });
    let rate = 1.5 * opts.rate;
    let window_ms = opts.batch_window.unwrap_or(8.0 * 1000.0 / rate);
    let pinned;
    let overlaps: &[f64] = match opts.share {
        Some(f) => {
            pinned = [f];
            &pinned
        }
        None if opts.quick => &SHARE_OVERLAPS_QUICK,
        None => &SHARE_OVERLAPS,
    };
    let replicas: Vec<u32> = match opts.replicas {
        Some(r) => vec![r],
        None => vec![0, 1, 2],
    };
    let mut exp = experiment_2d(opts);
    if let Some(kind) = opts.method {
        exp = exp.with_method_filter(kind.name());
    }
    let sweep = exp
        .run_share_sweep(
            &DiskParams::default(),
            clients,
            rate,
            MULTIUSER_AREA,
            overlaps,
            &replicas,
            window_ms,
        )
        .map_err(|e| e.to_string())?;
    if sweep.points.is_empty() {
        let name = opts.method.map(MethodKind::name).unwrap_or("?");
        return Err(format!(
            "method {name} is not part of the share sweep (paper methods only)"
        ));
    }
    Ok(sweep)
}

fn emit_share(opts: &Opts, sweep: &ShareSweep) {
    println!("{}", sweep.render(ReportFormat::Table));
    if let Some(dir) = &opts.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::write(format!("{dir}/share.csv"), sweep.render(ReportFormat::Csv))
        }) {
            eprintln!("could not write share.csv: {e}");
        }
    }
}

/// Ablation (extension): swap HCAM's Hilbert curve for Z-order and a
/// Gray-coded order; exact mean RT over all placements per shape.
fn ablation() -> String {
    use decluster::methods::AllocationMap;
    use decluster::theory::bounds::shape_profile;
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 16;
    let methods: Vec<Box<dyn DeclusteringMethod>> = vec![
        Box::new(Hcam::new(&space, m).expect("hcam")),
        Box::new(CurveAlloc::new(&space, m, CurveKind::Morton).expect("zcam")),
        Box::new(CurveAlloc::new(&space, m, CurveKind::Gray).expect("graycam")),
    ];
    let shapes: [[u32; 2]; 4] = [[2, 2], [3, 3], [4, 4], [2, 8]];
    let mut out = format!(
        "Ablation: curve choice in curve-allocation methods (32x32 grid, M={m})\nexact mean RT over all placements; lower is better\n{:<8}",
        "curve"
    );
    for shape in &shapes {
        out.push_str(&format!(" {:>8}", format!("{}x{}", shape[0], shape[1])));
    }
    out.push('\n');
    for method in &methods {
        let alloc = AllocationMap::from_method(&space, method.as_ref()).expect("materializes");
        out.push_str(&format!("{:<8}", method.name()));
        for shape in &shapes {
            let p = shape_profile(&alloc, shape).expect("shape fits");
            out.push_str(&format!(" {:>8.3}", p.mean));
        }
        out.push('\n');
    }
    out.push_str(
        "\nFinding: Z-order matches or beats Hilbert for declustering on\n\
         power-of-two grids (aligned blocks are contiguous Z-runs), although\n\
         Hilbert clusters strictly better for storage locality; the Gray\n\
         order trails both. See EXPERIMENTS.md.\n",
    );
    out.push_str(&ecc_code_analysis());
    out
}

/// Code-theoretic view of the ECC instances the experiments actually use:
/// block length, dimension, minimum distance (how far apart same-disk
/// buckets sit in coordinate bits), and covering radius.
fn ecc_code_analysis() -> String {
    use decluster::methods::EccDecluster;
    let mut out = String::from(
        "\nECC code analysis (the binary linear codes behind the ECC instances):\n\
         grid        M    [n,k]   d_min  covering radius\n",
    );
    for (dims, m) in [
        (vec![64u32, 64], 16u32),
        (vec![64, 64], 8),
        (vec![32, 32], 16),
        (vec![16, 16, 16], 16),
    ] {
        let space = GridSpace::new(dims.clone()).expect("grid");
        let ecc = EccDecluster::new(&space, m).expect("ECC applies");
        let code = ecc.code().expect("M > 1");
        let dmin = code
            .min_distance()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        let radius = code
            .covering_radius()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<10} {:>3}   [{},{}]   {:>5}  {:>15}\n",
            format!("{dims:?}"),
            m,
            code.block_length(),
            code.dimension(),
            dmin,
            radius
        ));
    }
    out
}

/// Timing snapshot: the E1-style population (64×64 grid, M=16, 1000
/// placements, all paper methods) evaluated once through the naive
/// per-bucket walk and once through the `DiskCounts` prefix-sum kernel,
/// with the kernel side split into its two stages — table construction
/// (`build_ms`) and planned scoring through a reused `Scratch`
/// (`score_ms`); `kernel_ms` stays their sum so older snapshots remain
/// comparable. Writes `BENCH_rt.json` next to the working directory so
/// later revisions can track the trajectory.
fn bench(opts: &Opts) -> String {
    use decluster::methods::{AllocationMap, Scratch};
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    const PLACEMENTS: usize = 1000;
    let space = grid_2d();
    let registry = MethodRegistry::with_seed(SEED);
    let maps: Vec<AllocationMap> = registry
        .paper_methods(&space, DISKS)
        .iter()
        .map(|m| AllocationMap::from_method(&space, m.as_ref()).expect("materializes"))
        .collect();

    // The E1 area ladder, cycled over the placement budget.
    let areas = [
        1u64, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    ];
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..PLACEMENTS)
        .map(|i| {
            let sides =
                rect_sides_for_area(areas[i % areas.len()], space.dims()).expect("area fits");
            random_region(&mut rng, &space, &sides).expect("placement fits")
        })
        .collect();

    let mut out = format!(
        "RT bench: {} placements (E1 areas) on {}x{}, M={}\n\
         {:<6} {:>12} {:>10} {:>10} {:>12} {:>9}\n",
        PLACEMENTS,
        GRID_SIDE,
        GRID_SIDE,
        DISKS,
        "method",
        "naive ms",
        "build ms",
        "score ms",
        "kernel ms",
        "speedup"
    );
    let mut per_method = Vec::new();
    let mut naive_total = 0.0f64;
    let mut build_total = 0.0f64;
    let mut score_total = 0.0f64;
    let mut scratch = Scratch::new();
    let mut lane_bits = 0u32;
    for map in &maps {
        let t = Instant::now();
        let naive_sum: u64 = regions.iter().map(|r| map.response_time(r)).sum();
        let naive_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let kernel = map.disk_counts().expect("default grid admits a kernel");
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        lane_bits = kernel.lane_bits();

        let t = Instant::now();
        let kernel_sum: u64 = regions
            .iter()
            .map(|r| kernel.response_time_with(r, &mut scratch))
            .sum();
        let score_ms = t.elapsed().as_secs_f64() * 1e3;
        let kernel_ms = build_ms + score_ms;

        assert_eq!(naive_sum, kernel_sum, "kernel disagrees with naive walk");
        let speedup = naive_ms / kernel_ms.max(1e-9);
        out.push_str(&format!(
            "{:<6} {:>12.3} {:>10.3} {:>10.3} {:>12.3} {:>8.1}x\n",
            map.name(),
            naive_ms,
            build_ms,
            score_ms,
            kernel_ms,
            speedup
        ));
        per_method.push(format!(
            "    {{\"method\": \"{}\", \"naive_ms\": {naive_ms:.3}, \"build_ms\": {build_ms:.3}, \
             \"score_ms\": {score_ms:.3}, \"kernel_ms\": {kernel_ms:.3}, \"speedup\": {speedup:.2}}}",
            map.name()
        ));
        naive_total += naive_ms;
        build_total += build_ms;
        score_total += score_ms;
    }
    let kernel_total = build_total + score_total;
    let speedup = naive_total / kernel_total.max(1e-9);
    out.push_str(&format!(
        "{:<6} {:>12.3} {:>10.3} {:>10.3} {:>12.3} {:>8.1}x\n",
        "TOTAL", naive_total, build_total, score_total, kernel_total, speedup
    ));

    let json = format!(
        "{{\n  \"name\": \"rt_kernel_vs_naive\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"placements\": {PLACEMENTS},\n  \"lane_bits\": {lane_bits},\n  \
         \"naive_ms\": {naive_total:.3},\n  \"build_ms\": {build_total:.3},\n  \
         \"score_ms\": {score_total:.3},\n  \"kernel_ms\": {kernel_total:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"per_method\": [\n{}\n  ]\n}}\n",
        per_method.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_rt.json")
        }
        None => "BENCH_rt.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Timing snapshot of the multi-user rewire: the closed loop at paper
/// scale (64×64 grid, M=16, 1000 queries on the E1 area ladder, 8
/// clients) run once through the pre-rewire data path — one nested
/// `io_plan` materialization per query, counts taken as group lengths —
/// and once through the kernel-backed [`MultiUserEngine`]. Both paths
/// compute the identical service model, so their makespans are asserted
/// bit-identical and the speedup is a pure data-path win. The kernel
/// side is split into engine construction (`build_ms`, one grid walk +
/// prefix-sum table) and the allocation-free loop (`loop_ms`). Writes
/// `BENCH_multiuser.json` beside `BENCH_rt.json`.
fn bench_multiuser(opts: &Opts) -> String {
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    const QUERIES: usize = 1000;
    const CLIENTS: usize = 8;
    let space = grid_2d();
    let params = DiskParams::default();
    let registry = MethodRegistry::with_seed(SEED);
    let methods = registry.paper_methods(&space, DISKS);

    let areas = [
        1u64, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    ];
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..QUERIES)
        .map(|i| {
            let sides =
                rect_sides_for_area(areas[i % areas.len()], space.dims()).expect("area fits");
            random_region(&mut rng, &space, &sides).expect("placement fits")
        })
        .collect();

    // The pre-rewire hot loop: one nested Vec<Vec<u64>> plan materialized
    // per query (rebuilt from the flat arena, preserving the per-query
    // allocation cost being benchmarked), counts read off as group
    // lengths. Same queueing and service model as the engine, so the
    // outputs must match exactly.
    let naive_closed_loop = |dir: &GridDirectory| -> f64 {
        let loads = dir.load_vector();
        let mut flat = IoPlan::new();
        let mut disk_free_at = vec![0.0f64; DISKS as usize];
        let mut clients_ready = [0.0f64; CLIENTS];
        let mut makespan = 0.0f64;
        for region in &regions {
            let (slot, _) = clients_ready
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("clients > 0");
            let issue_at = clients_ready[slot];
            dir.io_plan_into(region, &mut flat);
            let plan: Vec<Vec<u64>> = flat.iter().map(<[u64]>::to_vec).collect();
            let mut completion = issue_at;
            for (d, pages) in plan.iter().enumerate() {
                if pages.is_empty() {
                    continue;
                }
                let start = issue_at.max(disk_free_at[d]);
                let service = params.batch_ms_counts(pages.len() as u64, loads[d]);
                disk_free_at[d] = start + service;
                completion = completion.max(start + service);
            }
            makespan = makespan.max(completion);
            clients_ready[slot] = completion;
        }
        makespan
    };

    let mut out = format!(
        "Multi-user bench: closed loop, {QUERIES} queries (E1 areas) on {GRID_SIDE}x{GRID_SIDE}, \
         M={DISKS}, {CLIENTS} clients\n\
         {:<6} {:>12} {:>10} {:>10} {:>12} {:>9}\n",
        "method", "naive ms", "build ms", "loop ms", "kernel ms", "speedup"
    );
    let mut per_method = Vec::new();
    let (mut naive_total, mut build_total, mut loop_total) = (0.0f64, 0.0f64, 0.0f64);
    let obs = Obs::disabled();
    let mut ls = LoopScratch::new();
    for method in &methods {
        let dir = GridDirectory::build(space.clone(), DISKS, |b| method.disk_of(b.as_slice()));

        let t = Instant::now();
        let naive_makespan = naive_closed_loop(&dir);
        let naive_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let engine = MultiUserEngine::new(&dir);
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(engine.kernel_backed(), "paper scale admits a kernel");

        let t = Instant::now();
        let report = engine.closed_loop_obs(&params, &regions, CLIENTS, &obs, &mut ls);
        let loop_ms = t.elapsed().as_secs_f64() * 1e3;
        let kernel_ms = build_ms + loop_ms;

        assert_eq!(
            naive_makespan.to_bits(),
            report.makespan_ms.to_bits(),
            "engine disagrees with the materialized-plan loop"
        );
        let speedup = naive_ms / kernel_ms.max(1e-9);
        out.push_str(&format!(
            "{:<6} {:>12.3} {:>10.3} {:>10.3} {:>12.3} {:>8.1}x\n",
            method.name(),
            naive_ms,
            build_ms,
            loop_ms,
            kernel_ms,
            speedup
        ));
        per_method.push(format!(
            "    {{\"method\": \"{}\", \"naive_ms\": {naive_ms:.3}, \"build_ms\": {build_ms:.3}, \
             \"loop_ms\": {loop_ms:.3}, \"kernel_ms\": {kernel_ms:.3}, \"speedup\": {speedup:.2}}}",
            method.name()
        ));
        naive_total += naive_ms;
        build_total += build_ms;
        loop_total += loop_ms;
    }
    let kernel_total = build_total + loop_total;
    let speedup = naive_total / kernel_total.max(1e-9);
    out.push_str(&format!(
        "{:<6} {:>12.3} {:>10.3} {:>10.3} {:>12.3} {:>8.1}x\n",
        "TOTAL", naive_total, build_total, loop_total, kernel_total, speedup
    ));

    let json = format!(
        "{{\n  \"name\": \"multiuser_closed_loop\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"queries\": {QUERIES},\n  \"clients\": {CLIENTS},\n  \
         \"naive_ms\": {naive_total:.3},\n  \"build_ms\": {build_total:.3},\n  \
         \"loop_ms\": {loop_total:.3},\n  \"kernel_ms\": {kernel_total:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"per_method\": [\n{}\n  ]\n}}\n",
        per_method.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_multiuser.json")
        }
        None => "BENCH_multiuser.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Timing snapshot of the event-driven serving core: for each paper
/// method, the serve rate ladder around the default base rate streams
/// 20,000 Poisson arrivals per rate through the serving engine
/// (sampling off) and is timed as one batch. Reports sustained
/// events/sec, the event heap's peak occupancy, and the measured
/// saturation knee per method; writes `BENCH_serve.json` beside the
/// other snapshots.
fn bench_serve(opts: &Opts) -> String {
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    const ARRIVALS: usize = 20_000;
    let space = grid_2d();
    let params = DiskParams::default();
    let registry = MethodRegistry::with_seed(SEED);
    let methods = registry.paper_methods(&space, DISKS);
    let sides = rect_sides_for_area(MULTIUSER_AREA, space.dims()).expect("area fits");
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..1000)
        .map(|_| random_region(&mut rng, &space, &sides).expect("placement fits"))
        .collect();
    let obs = Obs::disabled();
    let rates: Vec<f64> = SERVE_FRACTIONS.iter().map(|f| f * opts.rate).collect();
    let arrivals: Vec<Vec<f64>> = rates
        .iter()
        .map(|&r| {
            sharded_arrivals(
                SEED,
                ARRIVALS,
                InterArrival::Poisson { rate_qps: r },
                opts.threads,
                &obs,
            )
        })
        .collect();

    let mut out = format!(
        "Serve bench: {} arrivals per rate, {} rates around {:.1} q/s, area-{MULTIUSER_AREA} \
         queries on {GRID_SIDE}x{GRID_SIDE}, M={DISKS}\n\
         {:<6} {:>10} {:>10} {:>13} {:>10} {:>10}\n",
        ARRIVALS,
        rates.len(),
        opts.rate,
        "method",
        "events",
        "loop ms",
        "events/sec",
        "peak heap",
        "knee q/s"
    );
    let mut per_method = Vec::new();
    let mut ls = LoopScratch::new();
    let (mut events_total, mut secs_total) = (0u64, 0.0f64);
    for method in &methods {
        let dir = GridDirectory::build(space.clone(), DISKS, |b| method.disk_of(b.as_slice()));
        let engine = MultiUserEngine::new(&dir);
        let (mut events, mut peak, mut knee) = (0u64, 0usize, 0.0f64);
        let t = Instant::now();
        for (ri, &rate) in rates.iter().enumerate() {
            let rep = ServeSpec::open(rate)
                .seed(SEED)
                .run_with_arrivals(&engine, &params, &regions, &arrivals[ri], &obs, &mut ls)
                .expect("the bench serve spec is valid");
            events += rep.events;
            peak = peak.max(rep.peak_in_flight);
            if rep.report.throughput_qps >= 0.95 * rate {
                knee = knee.max(rate);
            }
        }
        let secs = t.elapsed().as_secs_f64();
        let events_per_sec = events as f64 / secs.max(1e-9);
        out.push_str(&format!(
            "{:<6} {:>10} {:>10.3} {:>13.0} {:>10} {:>10.2}\n",
            method.name(),
            events,
            secs * 1e3,
            events_per_sec,
            peak,
            knee
        ));
        per_method.push(format!(
            "    {{\"method\": \"{}\", \"events\": {events}, \"loop_ms\": {:.3}, \
             \"events_per_sec\": {events_per_sec:.0}, \"peak_heap\": {peak}, \
             \"knee_qps\": {knee:.3}}}",
            method.name(),
            secs * 1e3
        ));
        events_total += events;
        secs_total += secs;
    }
    let total_eps = events_total as f64 / secs_total.max(1e-9);
    out.push_str(&format!(
        "{:<6} {:>10} {:>10.3} {:>13.0}\n",
        "TOTAL",
        events_total,
        secs_total * 1e3,
        total_eps
    ));

    let json = format!(
        "{{\n  \"name\": \"serve_core\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"arrivals_per_rate\": {ARRIVALS},\n  \
         \"base_rate_qps\": {:.3},\n  \"events\": {events_total},\n  \
         \"loop_ms\": {:.3},\n  \"events_per_sec\": {total_eps:.0},\n  \
         \"per_method\": [\n{}\n  ]\n}}\n",
        opts.rate,
        secs_total * 1e3,
        per_method.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_serve.json")
        }
        None => "BENCH_serve.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Timing snapshot of the fault-injected serving path: 20,000 Poisson
/// arrivals at the base rate stream through HCAM's serving engine under
/// a mid-run fail-stop plus a transient outage, once per replica
/// policy at chain depth r = 2. Reports sustained events/sec, the
/// availability each policy holds, and its failover volume; writes
/// `BENCH_avail.json` beside the other snapshots.
fn bench_avail(opts: &Opts) -> String {
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    const ARRIVALS: usize = 20_000;
    const REPLICAS: u32 = 2;
    let space = grid_2d();
    let params = DiskParams::default();
    let method = Hcam::new(&space, DISKS).expect("HCAM applies to the default grid");
    let dir = GridDirectory::build(space.clone(), DISKS, |b| method.disk_of(b.as_slice()));
    let engine = MultiUserEngine::new(&dir);
    let sides = rect_sides_for_area(MULTIUSER_AREA, space.dims()).expect("area fits");
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..1000)
        .map(|_| random_region(&mut rng, &space, &sides).expect("placement fits"))
        .collect();
    let obs = Obs::disabled();
    let arrivals = sharded_arrivals(
        SEED,
        ARRIVALS,
        InterArrival::Poisson {
            rate_qps: opts.rate,
        },
        opts.threads,
        &obs,
    );
    let span = (ARRIVALS as f64 * 1000.0 / opts.rate) as u64;
    let schedule = FaultSchedule::healthy(DISKS)
        .fail_stop(3, span / 3)
        .and_then(|s| s.transient(7, span / 2, 3 * span / 4))
        .expect("the bench schedule is valid");

    let mut out = format!(
        "Avail bench: {ARRIVALS} arrivals at {:.1} q/s through HCAM, r={REPLICAS}, \
         faults: {} ({GRID_SIDE}x{GRID_SIDE}, M={DISKS})\n\
         {:<10} {:>10} {:>10} {:>13} {:>8} {:>9}\n",
        opts.rate,
        schedule.describe(),
        "policy",
        "events",
        "loop ms",
        "events/sec",
        "avail %",
        "failovers"
    );
    let mut per_policy = Vec::new();
    let mut ls = LoopScratch::new();
    let (mut events_total, mut secs_total) = (0u64, 0.0f64);
    for policy in ReplicaPolicy::ALL {
        let t = Instant::now();
        let rep = ServeSpec::open(opts.rate)
            .replicas(REPLICAS)
            .policy(policy)
            .faults(schedule.clone())
            .seed(SEED)
            .run_with_arrivals(&engine, &params, &regions, &arrivals, &obs, &mut ls)
            .expect("the bench schedule covers the default array");
        let secs = t.elapsed().as_secs_f64();
        let stats = rep.availability.expect("degraded run reports availability");
        let events_per_sec = rep.events as f64 / secs.max(1e-9);
        let avail = stats.availability();
        out.push_str(&format!(
            "{:<10} {:>10} {:>10.3} {:>13.0} {:>8.2} {:>9}\n",
            policy.name(),
            rep.events,
            secs * 1e3,
            events_per_sec,
            avail * 100.0,
            stats.failovers
        ));
        per_policy.push(format!(
            "    {{\"policy\": \"{}\", \"events\": {}, \"loop_ms\": {:.3}, \
             \"events_per_sec\": {events_per_sec:.0}, \"availability\": {avail:.6}, \
             \"failovers\": {}, \"retries\": {}, \"lost\": {}}}",
            policy.name(),
            rep.events,
            secs * 1e3,
            stats.failovers,
            stats.retries,
            stats.lost
        ));
        events_total += rep.events;
        secs_total += secs;
    }
    let total_eps = events_total as f64 / secs_total.max(1e-9);
    out.push_str(&format!(
        "{:<10} {:>10} {:>10.3} {:>13.0}\n",
        "TOTAL",
        events_total,
        secs_total * 1e3,
        total_eps
    ));

    let json = format!(
        "{{\n  \"name\": \"avail_degraded_serve\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"arrivals\": {ARRIVALS},\n  \"replicas\": {REPLICAS},\n  \
         \"base_rate_qps\": {:.3},\n  \"schedule\": \"{}\",\n  \"events\": {events_total},\n  \
         \"loop_ms\": {:.3},\n  \"events_per_sec\": {total_eps:.0},\n  \
         \"per_policy\": [\n{}\n  ]\n}}\n",
        opts.rate,
        schedule.describe(),
        secs_total * 1e3,
        per_policy.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_avail.json")
        }
        None => "BENCH_avail.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Timing snapshot of the shared-scan serving path: a high-overlap
/// stream (90% of arrivals hit one hot scan) runs through HCAM's engine
/// twice per rate — once plain, once with an 8-arrival batch window
/// spread over r = 1 chain replicas — over the same rate ladder as the
/// serve bench. Reports shared vs unshared events/sec, the effective
/// saturation knee each side holds, and the achieved throughput of both
/// at the top of the ladder; writes `BENCH_share.json` beside the other
/// snapshots.
fn bench_share(opts: &Opts) -> String {
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    const ARRIVALS: usize = 20_000;
    const OVERLAP_PCT: usize = 90;
    const REPLICAS: u32 = 1;
    let space = grid_2d();
    let params = DiskParams::default();
    let method = Hcam::new(&space, DISKS).expect("HCAM applies to the default grid");
    let dir = GridDirectory::build(space.clone(), DISKS, |b| method.disk_of(b.as_slice()));
    let engine = MultiUserEngine::new(&dir);
    let sides = rect_sides_for_area(MULTIUSER_AREA, space.dims()).expect("area fits");
    let mut rng = StdRng::seed_from_u64(SEED);
    let base: Vec<BucketRegion> = (0..1000)
        .map(|_| random_region(&mut rng, &space, &sides).expect("placement fits"))
        .collect();
    // Redirect OVERLAP_PCT% of the stream onto one hot scan so merged
    // windows actually dedup pages (a uniform stream shares almost none).
    let hot = base[0].clone();
    let regions: Vec<BucketRegion> = base
        .iter()
        .enumerate()
        .map(|(i, region)| {
            if i % 100 < OVERLAP_PCT {
                hot.clone()
            } else {
                region.clone()
            }
        })
        .collect();
    let obs = Obs::disabled();
    let rates: Vec<f64> = SERVE_FRACTIONS.iter().map(|f| f * opts.rate).collect();
    let arrivals: Vec<Vec<f64>> = rates
        .iter()
        .map(|&r| {
            sharded_arrivals(
                SEED,
                ARRIVALS,
                InterArrival::Poisson { rate_qps: r },
                opts.threads,
                &obs,
            )
        })
        .collect();

    let mut out = format!(
        "Share bench: {ARRIVALS} arrivals per rate through HCAM, {OVERLAP_PCT}% hot overlap, \
         r={REPLICAS} spread ({GRID_SIDE}x{GRID_SIDE}, M={DISKS})\n\
         {:<9} {:>12} {:>12} {:>14} {:>14} {:>12}\n",
        "rate q/s", "unshared q/s", "shared q/s", "unshared ev/s", "shared ev/s", "pages saved"
    );
    let mut per_rate = Vec::new();
    let mut ls = LoopScratch::new();
    let (mut un_events, mut un_secs, mut un_knee) = (0u64, 0.0f64, 0.0f64);
    let (mut sh_events, mut sh_secs, mut sh_knee) = (0u64, 0.0f64, 0.0f64);
    let (mut saved_total, mut last_un_qps, mut last_sh_qps) = (0u64, 0.0f64, 0.0f64);
    for (ri, &rate) in rates.iter().enumerate() {
        let t = Instant::now();
        let plain = ServeSpec::open(rate)
            .seed(SEED)
            .run_with_arrivals(&engine, &params, &regions, &arrivals[ri], &obs, &mut ls)
            .expect("the bench share spec is valid");
        let plain_secs = t.elapsed().as_secs_f64();
        let window_ms = 8.0 * 1000.0 / rate;
        let t = Instant::now();
        let shared = ServeSpec::open(rate)
            .seed(SEED)
            .share(window_ms)
            .replicas(REPLICAS)
            .policy(ReplicaPolicy::Spread)
            .run_with_arrivals(&engine, &params, &regions, &arrivals[ri], &obs, &mut ls)
            .expect("the bench share spec is valid");
        let shared_secs = t.elapsed().as_secs_f64();
        let sharing = shared.sharing.expect("shared run reports sharing stats");
        let (un_eps, sh_eps) = (
            plain.events as f64 / plain_secs.max(1e-9),
            shared.events as f64 / shared_secs.max(1e-9),
        );
        if plain.report.throughput_qps >= 0.95 * rate {
            un_knee = un_knee.max(rate);
        }
        if shared.report.throughput_qps >= 0.95 * rate {
            sh_knee = sh_knee.max(rate);
        }
        out.push_str(&format!(
            "{:<9.2} {:>12.3} {:>12.3} {:>14.0} {:>14.0} {:>12}\n",
            rate,
            plain.report.throughput_qps,
            shared.report.throughput_qps,
            un_eps,
            sh_eps,
            sharing.pages_saved
        ));
        per_rate.push(format!(
            "    {{\"rate_qps\": {rate:.3}, \"unshared_qps\": {:.6}, \"shared_qps\": {:.6}, \
             \"unshared_events_per_sec\": {un_eps:.0}, \"shared_events_per_sec\": {sh_eps:.0}, \
             \"windows\": {}, \"merged_queries\": {}, \"pages_saved\": {}}}",
            plain.report.throughput_qps,
            shared.report.throughput_qps,
            sharing.windows,
            sharing.merged_queries,
            sharing.pages_saved
        ));
        un_events += plain.events;
        un_secs += plain_secs;
        sh_events += shared.events;
        sh_secs += shared_secs;
        saved_total += sharing.pages_saved;
        last_un_qps = plain.report.throughput_qps;
        last_sh_qps = shared.report.throughput_qps;
    }
    let (un_eps, sh_eps) = (
        un_events as f64 / un_secs.max(1e-9),
        sh_events as f64 / sh_secs.max(1e-9),
    );
    out.push_str(&format!(
        "knee: unshared {un_knee:.2} q/s, shared {sh_knee:.2} q/s; at the top rate shared \
         serves {last_sh_qps:.3} q/s vs {last_un_qps:.3} unshared ({saved_total} pages saved)\n"
    ));

    let json = format!(
        "{{\n  \"name\": \"shared_scan_serve\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"arrivals_per_rate\": {ARRIVALS},\n  \
         \"hot_overlap\": 0.{OVERLAP_PCT},\n  \"replicas\": {REPLICAS},\n  \
         \"base_rate_qps\": {:.3},\n  \
         \"unshared\": {{\"events\": {un_events}, \"loop_ms\": {:.3}, \
         \"events_per_sec\": {un_eps:.0}, \"knee_qps\": {un_knee:.3}, \
         \"qps_at_peak\": {last_un_qps:.6}}},\n  \
         \"shared\": {{\"events\": {sh_events}, \"loop_ms\": {:.3}, \
         \"events_per_sec\": {sh_eps:.0}, \"knee_qps\": {sh_knee:.3}, \
         \"qps_at_peak\": {last_sh_qps:.6}, \"pages_saved\": {saved_total}}},\n  \
         \"shared_over_unshared_at_peak\": {:.6},\n  \
         \"per_rate\": [\n{}\n  ]\n}}\n",
        opts.rate,
        un_secs * 1e3,
        sh_secs * 1e3,
        last_sh_qps / last_un_qps.max(1e-9),
        per_rate.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_share.json")
        }
        None => "BENCH_share.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Warm-start timing: builds the paper-method serving engines cold
/// (running every declustering method and compiling every count
/// kernel), persists the allocations as v2 images and the compiled
/// kernels as one persist-v3 image, then starts again warm from those
/// images alone — the directories are reconstructed by table lookup and
/// every kernel is adopted after identity revalidation, so the warm
/// path does zero method evaluation and zero kernel compilation.
/// Reports startup-to-first-scored-query latency for both paths, the
/// kernel build counts (zero on the warm path), the image sizes, the
/// serve loop's cross-query shape-cache hit rate, and cold-vs-warm
/// report byte-identity. Writes `BENCH_warm.json`.
fn bench_warm(opts: &Opts) -> String {
    use decluster::methods::kernel_build_count;
    use decluster::obs::Recorder;
    use decluster::sim::workload::{random_region, rect_sides_for_area};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    let arrivals_n: usize = if opts.quick { 2_000 } else { 20_000 };
    let space = grid_2d();
    let params = DiskParams::default();
    let registry = MethodRegistry::with_seed(SEED);
    let methods = registry.paper_methods(&space, DISKS);
    let sides = rect_sides_for_area(MULTIUSER_AREA, space.dims()).expect("area fits");
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..1000)
        .map(|_| random_region(&mut rng, &space, &sides).expect("placement fits"))
        .collect();
    let obs = Obs::disabled();
    let arrivals = sharded_arrivals(
        SEED,
        arrivals_n,
        InterArrival::Poisson {
            rate_qps: opts.rate,
        },
        1,
        &obs,
    );
    let first_query = &regions[..1];
    let first_arrival = [0.0];
    let build_dirs = || -> Vec<(String, GridDirectory)> {
        methods
            .iter()
            .map(|m| {
                let dir = GridDirectory::build(space.clone(), DISKS, |b| m.disk_of(b.as_slice()));
                (m.name().to_owned(), dir)
            })
            .collect()
    };

    // Cold start: directory + kernel build for every method, then the
    // first scored query.
    let builds_before = kernel_build_count();
    let t = Instant::now();
    let dirs = build_dirs();
    let cold_engines: Vec<MultiUserEngine> =
        dirs.iter().map(|(_, d)| MultiUserEngine::new(d)).collect();
    let cold_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut ls = LoopScratch::new();
    let t = Instant::now();
    let _ = ServeSpec::open(opts.rate)
        .seed(SEED)
        .run_with_arrivals(
            &cold_engines[0],
            &params,
            first_query,
            &first_arrival,
            &obs,
            &mut ls,
        )
        .expect("the warm bench spec is valid");
    let cold_first_ms = cold_build_ms + t.elapsed().as_secs_f64() * 1e3;
    let cold_builds = kernel_build_count() - builds_before;

    // Persist the full warm-start state: every allocation as a v2
    // image, every compiled kernel in one v3 image.
    let t = Instant::now();
    let mut cache = KernelCache::new();
    let mut alloc_images: Vec<(String, Vec<u8>)> = Vec::with_capacity(dirs.len());
    for ((name, _), engine) in dirs.iter().zip(&cold_engines) {
        let counts = engine.serving().counts();
        if let Some(kernel) = counts.kernel() {
            cache.insert(name, counts.allocation(), kernel);
        }
        alloc_images.push((name.clone(), counts.allocation().to_bytes().to_vec()));
    }
    let image = cache.to_bytes();
    let alloc_bytes: usize = alloc_images.iter().map(|(_, b)| b.len()).sum();
    let save_ms = t.elapsed().as_secs_f64() * 1e3;

    // Warm start from the images alone: allocations are reloaded, each
    // directory is rebuilt by table lookup (no method evaluation), and
    // every kernel is adopted after identity revalidation.
    let builds_before = kernel_build_count();
    let t = Instant::now();
    let loaded = KernelCache::from_bytes(&image).expect("a just-written image loads");
    let warm_engines: Vec<MultiUserEngine> = alloc_images
        .iter()
        .map(|(name, bytes)| {
            let map = AllocationMap::from_bytes(bytes).expect("a just-written image loads");
            let dir = GridDirectory::from_table(space.clone(), DISKS, map.table())
                .expect("a persisted allocation is grid-shaped");
            MultiUserEngine::with_kernel(&dir, loaded.lookup(name, &map))
        })
        .collect();
    let warm_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _ = ServeSpec::open(opts.rate)
        .seed(SEED)
        .run_with_arrivals(
            &warm_engines[0],
            &params,
            first_query,
            &first_arrival,
            &obs,
            &mut ls,
        )
        .expect("the warm bench spec is valid");
    let warm_first_ms = warm_build_ms + t.elapsed().as_secs_f64() * 1e3;
    let warm_builds = kernel_build_count() - builds_before;

    // Full serve run on both paths: throughput, cold-vs-warm
    // byte-identity, and the shape-cache hit rate (via the metrics
    // recorder — the counters are deterministic, see decluster-obs).
    let rec = Arc::new(MetricsRecorder::new());
    let obs_metrics = Obs::new(rec.clone());
    let run = |engine: &MultiUserEngine, obs: &Obs, ls: &mut LoopScratch| {
        ServeSpec::open(opts.rate)
            .seed(SEED)
            .run_with_arrivals(engine, &params, &regions, &arrivals, obs, ls)
            .expect("the warm bench spec is valid")
    };
    let t = Instant::now();
    let cold_run = run(&cold_engines[0], &obs_metrics, &mut ls);
    let cold_loop_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let warm_run = run(&warm_engines[0], &obs, &mut ls);
    let warm_loop_ms = t.elapsed().as_secs_f64() * 1e3;
    let identical = cold_run.report.makespan_ms.to_bits() == warm_run.report.makespan_ms.to_bits()
        && cold_run.report.throughput_qps.to_bits() == warm_run.report.throughput_qps.to_bits()
        && cold_run.pages == warm_run.pages
        && cold_run.events == warm_run.events;
    let snap = rec.snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let (hits, misses) = (
        get("kernel.shape_cache_hits"),
        get("kernel.shape_cache_misses"),
    );
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    let speedup = cold_first_ms / warm_first_ms.max(1e-9);

    let mut out = format!(
        "Warm-start bench: {} paper methods, {arrivals_n} arrivals through HCAM \
         ({GRID_SIDE}x{GRID_SIDE}, M={DISKS})\n\
         {:<22} {:>12} {:>12}\n",
        methods.len(),
        "",
        "cold",
        "warm"
    );
    out.push_str(&format!(
        "{:<22} {:>12.3} {:>12.3}\n",
        "build phase ms", cold_build_ms, warm_build_ms
    ));
    out.push_str(&format!(
        "{:<22} {:>12.3} {:>12.3}\n",
        "first query ms", cold_first_ms, warm_first_ms
    ));
    out.push_str(&format!(
        "{:<22} {:>12} {:>12}\n",
        "kernel builds", cold_builds, warm_builds
    ));
    out.push_str(&format!(
        "{:<22} {:>12.3} {:>12.3}\n",
        "serve loop ms", cold_loop_ms, warm_loop_ms
    ));
    out.push_str(&format!(
        "images: {} kernel + {alloc_bytes} allocation bytes ({save_ms:.3} ms to serialize); \
         startup speedup {speedup:.2}x; \
         shape cache {hits} hits / {misses} misses ({:.1}% hit rate); \
         cold-vs-warm reports identical: {identical}\n",
        image.len(),
        hit_rate * 100.0
    ));

    let json = format!(
        "{{\n  \"name\": \"warm_start_serve\",\n  \"grid\": [{GRID_SIDE}, {GRID_SIDE}],\n  \
         \"disks\": {DISKS},\n  \"methods\": {},\n  \"arrivals\": {arrivals_n},\n  \
         \"kernel_image_bytes\": {},\n  \"alloc_image_bytes\": {alloc_bytes},\n  \
         \"image_save_ms\": {save_ms:.3},\n  \
         \"cold\": {{\"build_ms\": {cold_build_ms:.3}, \"first_query_ms\": {cold_first_ms:.3}, \
         \"kernel_builds\": {cold_builds}, \"serve_loop_ms\": {cold_loop_ms:.3}}},\n  \
         \"warm\": {{\"build_ms\": {warm_build_ms:.3}, \"first_query_ms\": {warm_first_ms:.3}, \
         \"kernel_builds\": {warm_builds}, \"serve_loop_ms\": {warm_loop_ms:.3}}},\n  \
         \"startup_speedup\": {speedup:.3},\n  \
         \"shape_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"hit_rate\": {hit_rate:.6}}},\n  \
         \"cold_warm_reports_identical\": {identical}\n}}\n",
        methods.len(),
        image.len()
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_warm.json")
        }
        None => "BENCH_warm.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// Timing snapshot of sharded parallel serving: one million open-loop
/// Poisson arrivals stream through HCAM's serving engine at each rate of
/// a small ladder, once per shard count in {1, 2, 4, 8, 16}. Every
/// sharded run's report is asserted bit-identical to the 1-shard serial
/// baseline before its cell is accepted, so the grid measures pure
/// mechanism cost. Reports events/sec per (shards, rate) cell and the
/// 8-shard speedup; writes `BENCH_parallel.json` beside the other
/// snapshots.
///
/// The workload is the paper's multi-attribute setting at serving
/// scale: a 4-attribute 16^4 grid on 64 disks with small mixed-shape
/// range queries. That shape stresses exactly what sharding amortizes —
/// the serial loop pays the `O(M · 2^k)` per-disk count kernel on every
/// arrival, while the sharded pipeline plans each *distinct* query once
/// per run (Stage A) and streams the remaining per-arrival work through
/// the shard walk, so the speedup is algorithmic and holds even on a
/// single core.
fn bench_parallel(opts: &Opts) -> String {
    use decluster::sim::workload::random_region;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    let arrivals_n: usize = if opts.quick { 100_000 } else { 1_000_000 };
    const SHARDS: [usize; 5] = [1, 2, 4, 8, 16];
    const BENCH_SIDE: u32 = 16;
    const BENCH_DIMS: usize = 4;
    const BENCH_DISKS: u32 = 64;
    let space = GridSpace::new(vec![BENCH_SIDE; BENCH_DIMS]).expect("bench grid is valid");
    let params = DiskParams::default();
    let method = Hcam::new(&space, BENCH_DISKS).expect("HCAM builds on the bench grid");
    let dir = GridDirectory::build(space.clone(), BENCH_DISKS, |b| method.disk_of(b.as_slice()));
    let engine = MultiUserEngine::new(&dir);
    let mut rng = StdRng::seed_from_u64(SEED);
    let regions: Vec<BucketRegion> = (0..1000)
        .map(|_| {
            // Per-dimension extents 1..=2: sixteen distinct shapes, up
            // to 16 buckets per query spread over up to 16 of 64 disks.
            let sides: Vec<u32> = (0..BENCH_DIMS).map(|_| rng.gen_range(1..=2)).collect();
            random_region(&mut rng, &space, &sides).expect("placement fits")
        })
        .collect();
    let obs = Obs::disabled();
    let rates: Vec<f64> = [0.5, 1.0, 2.0].iter().map(|f| f * opts.rate).collect();
    let arrivals: Vec<Vec<f64>> = rates
        .iter()
        .map(|&r| {
            sharded_arrivals(
                SEED,
                arrivals_n,
                InterArrival::Poisson { rate_qps: r },
                opts.threads,
                &obs,
            )
        })
        .collect();

    let mut out = format!(
        "Parallel serve bench: {arrivals_n} open-loop arrivals per cell, HCAM, \
         mixed 1..2-extent queries on a {BENCH_SIDE}^{BENCH_DIMS} grid, M={BENCH_DISKS}\n\
         {:<7} {:>10} {:>10} {:>10} {:>13} {:>10}\n",
        "shards", "rate q/s", "events", "loop ms", "events/sec", "identical"
    );
    let mut ls = LoopScratch::new();
    // The 1-shard serial baseline per rate, captured for the
    // byte-identity assertion every sharded cell must pass.
    let mut baselines: Vec<Option<decluster::sim::ServeRun>> = vec![None; rates.len()];
    let mut cells = Vec::new();
    // events/sec summed over rates, per shard count, for the speedup line.
    let mut eps_by_shards: Vec<f64> = Vec::new();
    for &shards in &SHARDS {
        let (mut events, mut secs_total) = (0u64, 0.0f64);
        for (ri, &rate) in rates.iter().enumerate() {
            let spec = ServeSpec::open(rate)
                .seed(SEED)
                .shards(shards)
                .threads(shards);
            // Warm pass: size every shard buffer so the timed pass runs
            // allocation-free, exactly like the serial loop's steady state.
            let _ = spec
                .run_with_arrivals(&engine, &params, &regions, &arrivals[ri], &obs, &mut ls)
                .expect("the bench serve spec is valid");
            let t = Instant::now();
            let run = spec
                .run_with_arrivals(&engine, &params, &regions, &arrivals[ri], &obs, &mut ls)
                .expect("the bench serve spec is valid");
            let secs = t.elapsed().as_secs_f64();
            let identical = match &baselines[ri] {
                None => {
                    baselines[ri] = Some(run.clone());
                    true
                }
                Some(base) => {
                    let b = &base.report;
                    let r = &run.report;
                    assert_eq!(b.makespan_ms.to_bits(), r.makespan_ms.to_bits());
                    assert_eq!(b.throughput_qps.to_bits(), r.throughput_qps.to_bits());
                    assert_eq!(b.latency.mean.to_bits(), r.latency.mean.to_bits());
                    assert_eq!(b.utilization.to_bits(), r.utilization.to_bits());
                    assert_eq!(base.events, run.events);
                    assert_eq!(base.pages, run.pages);
                    assert_eq!(base.peak_in_flight, run.peak_in_flight);
                    assert_eq!(base.samples, run.samples);
                    true
                }
            };
            let eps = run.events as f64 / secs.max(1e-9);
            out.push_str(&format!(
                "{:<7} {:>10.2} {:>10} {:>10.3} {:>13.0} {:>10}\n",
                shards,
                rate,
                run.events,
                secs * 1e3,
                eps,
                identical
            ));
            cells.push(format!(
                "    {{\"shards\": {shards}, \"rate_qps\": {rate:.3}, \"events\": {}, \
                 \"loop_ms\": {:.3}, \"events_per_sec\": {eps:.0}, \"identical\": {identical}}}",
                run.events,
                secs * 1e3
            ));
            events += run.events;
            secs_total += secs;
        }
        eps_by_shards.push(events as f64 / secs_total.max(1e-9));
    }
    let base_eps = eps_by_shards[0];
    let speedup_8 =
        eps_by_shards[SHARDS.iter().position(|&s| s == 8).expect("8 in grid")] / base_eps.max(1e-9);
    out.push_str(&format!(
        "\n8-shard speedup over the serial loop: {speedup_8:.2}x \
         (all sharded reports byte-identical to 1 shard)\n"
    ));

    let json = format!(
        "{{\n  \"name\": \"serve_parallel\",\n  \
         \"grid\": [{BENCH_SIDE}, {BENCH_SIDE}, {BENCH_SIDE}, {BENCH_SIDE}],\n  \
         \"disks\": {BENCH_DISKS},\n  \"method\": \"HCAM\",\n  \"arrivals_per_cell\": {arrivals_n},\n  \
         \"base_rate_qps\": {:.3},\n  \"serial_events_per_sec\": {base_eps:.0},\n  \
         \"speedup_8_shards\": {speedup_8:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        opts.rate,
        cells.join(",\n")
    );
    let path = match opts.csv_dir.as_deref() {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                out.push_str(&format!("\ncould not create {dir}: {e}\n"));
            }
            format!("{dir}/BENCH_parallel.json")
        }
        None => "BENCH_parallel.json".into(),
    };
    match std::fs::write(&path, json) {
        Ok(()) => out.push_str(&format!("\nsnapshot written to {path}\n")),
        Err(e) => out.push_str(&format!("\ncould not write {path}: {e}\n")),
    }
    out
}

/// The impossibility theorem as a table.
fn thm() -> String {
    let mut out = String::from(
        "Theorem: no strictly optimal declustering for range queries when M > 5\n\
         (machine-checked by exhaustive search; UNSAT on a window proves\n\
         impossibility for every grid containing it)\n",
    );
    for d in impossibility::theorem_table(8, 500_000_000) {
        out.push_str(&d.summary());
        out.push('\n');
    }
    out
}
