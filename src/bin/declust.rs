//! `declust` — command-line front end for the declustering toolkit.
//!
//! ```text
//! declust methods
//! declust evaluate  --grid 64x64 --disks 16 --method HCAM --shape 4x4 [--queries 1000] [--seed 1994]
//! declust advise    --grid 64x64 --disks 16 --shape 4x4 [--queries 500] [--seed 1994]
//! declust profile   --grid 32x32 --disks 16 --method FX --shape 2x8
//! declust loadcurve --grid 32x32 --disks 8 --shape 3x3 [--rates 1,10,100] [--queries 200]
//! declust theorem   [--max-m 8]
//! ```
//!
//! Grids and shapes are `ROWSxCOLS` (2-D). All runs are deterministic per
//! `--seed`.

use decluster::grid::GridDirectory;
use decluster::prelude::*;
use decluster::sim::workload::random_region;
use decluster::sim::{load_sweep, DiskParams, TextTable};
use decluster::theory::bounds::shape_profile;
use decluster::theory::impossibility::theorem_table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "methods" => cmd_methods(),
        "evaluate" => cmd_evaluate(&flags),
        "advise" => cmd_advise(&flags),
        "profile" => cmd_profile(&flags),
        "loadcurve" => cmd_loadcurve(&flags),
        "theorem" => cmd_theorem(&flags),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  declust methods
  declust evaluate  --grid RxC --disks M --method NAME --shape RxC [--queries N] [--seed S]
  declust advise    --grid RxC --disks M --shape RxC [--queries N] [--seed S]
  declust profile   --grid RxC --disks M --method NAME --shape RxC
  declust loadcurve --grid RxC --disks M --shape RxC [--rates R1,R2,..] [--queries N] [--seed S]
  declust theorem   [--max-m M]";

type Flags = HashMap<String, String>;

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got {flag:?}"));
        };
        let Some(value) = args.next() else {
            return Err(format!("--{name} needs a value"));
        };
        flags.insert(name.to_owned(), value);
    }
    Ok(flags)
}

fn parse_pair(s: &str, what: &str) -> Result<(u32, u32), String> {
    let (a, b) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("{what} must look like 64x64, got {s:?}"))?;
    let a = a.parse().map_err(|_| format!("bad {what} rows {a:?}"))?;
    let b = b.parse().map_err(|_| format!("bad {what} cols {b:?}"))?;
    Ok((a, b))
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}"))
}

fn grid_of(flags: &Flags) -> Result<GridSpace, String> {
    let (r, c) = parse_pair(required(flags, "grid")?, "grid")?;
    GridSpace::new_2d(r, c).map_err(|e| e.to_string())
}

fn disks_of(flags: &Flags) -> Result<u32, String> {
    required(flags, "disks")?
        .parse()
        .map_err(|_| "bad --disks".to_owned())
}

fn shape_of(flags: &Flags) -> Result<(u32, u32), String> {
    parse_pair(required(flags, "shape")?, "shape")
}

fn seed_of(flags: &Flags) -> u64 {
    flags
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1994)
}

fn queries_of(flags: &Flags, default: usize) -> usize {
    flags
        .get("queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn sample_regions(
    space: &GridSpace,
    shape: (u32, u32),
    n: usize,
    seed: u64,
) -> Result<Vec<BucketRegion>, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| random_region(&mut rng, space, &[shape.0, shape.1]).map_err(|e| e.to_string()))
        .collect()
}

fn cmd_methods() -> Result<(), String> {
    println!("available declustering methods:");
    for kind in MethodKind::ALL {
        println!("  {}", kind.name());
    }
    println!("aliases: CMD -> DM, ExFX -> FX, round-robin -> RR, random -> RND");
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let space = grid_of(flags)?;
    let m = disks_of(flags)?;
    let shape = shape_of(flags)?;
    let n = queries_of(flags, 1000);
    let method = MethodRegistry::with_seed(seed_of(flags))
        .build_by_name(required(flags, "method")?, &space, m)
        .map_err(|e| e.to_string())?;
    let map = AllocationMap::from_method(&space, method.as_ref()).map_err(|e| e.to_string())?;
    let regions = sample_regions(&space, shape, n, seed_of(flags))?;
    let rts: Vec<u64> = regions.iter().map(|r| map.response_time(r)).collect();
    let mean = rts.iter().sum::<u64>() as f64 / n as f64;
    let worst = rts.iter().copied().max().unwrap_or(0);
    let opt = optimal_response_time(u64::from(shape.0) * u64::from(shape.1), m);
    println!(
        "{} on {:?} with M={m}: {n} random {}x{} queries",
        map.name(),
        space.dims(),
        shape.0,
        shape.1
    );
    println!(
        "  mean RT {mean:.3}  worst RT {worst}  optimal {opt}  mean/opt {:.3}",
        mean / opt as f64
    );
    let stats = map.load_stats();
    println!(
        "  static load {}..{} buckets/disk (stddev {:.2})",
        stats.min, stats.max, stats.stddev
    );
    Ok(())
}

fn cmd_advise(flags: &Flags) -> Result<(), String> {
    let space = grid_of(flags)?;
    let m = disks_of(flags)?;
    let shape = shape_of(flags)?;
    let n = queries_of(flags, 500);
    let regions = sample_regions(&space, shape, n, seed_of(flags))?;
    let advice = decluster::methods::advise(&space, m, &regions).map_err(|e| e.to_string())?;
    println!(
        "workload: {n} random {}x{} queries on {:?}, M={m}",
        shape.0,
        shape.1,
        space.dims()
    );
    for (name, rt) in &advice.ranking {
        let marker = if *name == advice.winner { "->" } else { "  " };
        println!("  {marker} {name:<5} mean RT {rt:.3}");
    }
    Ok(())
}

fn cmd_profile(flags: &Flags) -> Result<(), String> {
    let space = grid_of(flags)?;
    let m = disks_of(flags)?;
    let shape = shape_of(flags)?;
    let method = MethodRegistry::default()
        .build_by_name(required(flags, "method")?, &space, m)
        .map_err(|e| e.to_string())?;
    let map = AllocationMap::from_method(&space, method.as_ref()).map_err(|e| e.to_string())?;
    let profile = shape_profile(&map, &[shape.0, shape.1])
        .ok_or_else(|| "shape does not fit the grid".to_owned())?;
    println!(
        "{} on {:?} with M={m}: exact profile of {}x{} ({} placements)",
        map.name(),
        space.dims(),
        shape.0,
        shape.1,
        profile.placements
    );
    println!(
        "  best {}  worst {}  mean {:.3}  optimal {}  optimal on {:.1}% of placements",
        profile.best,
        profile.worst,
        profile.mean,
        profile.optimal,
        profile.optimal_fraction * 100.0
    );
    println!(
        "  worst placement: {:?}..{:?}",
        profile.worst_witness.lo(),
        profile.worst_witness.hi()
    );
    Ok(())
}

fn cmd_loadcurve(flags: &Flags) -> Result<(), String> {
    let space = grid_of(flags)?;
    let m = disks_of(flags)?;
    let shape = shape_of(flags)?;
    let n = queries_of(flags, 200);
    let rates: Vec<f64> = flags
        .get("rates")
        .map(String::as_str)
        .unwrap_or("1,10,100")
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad rate {s:?}")))
        .collect::<Result<_, _>>()?;
    let regions = sample_regions(&space, shape, n, seed_of(flags))?;
    let registry = MethodRegistry::default();
    let methods = registry.paper_methods(&space, m);
    let dirs: Vec<(&str, GridDirectory)> = methods
        .iter()
        .map(|method| {
            (
                method.name(),
                GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice())),
            )
        })
        .collect();
    let dir_refs: Vec<(&str, &GridDirectory)> = dirs.iter().map(|(name, d)| (*name, d)).collect();
    let points = load_sweep(
        &dir_refs,
        &DiskParams::default(),
        &regions,
        &rates,
        seed_of(flags),
    );
    let table = TextTable {
        title: format!(
            "mean latency (ms) vs offered load, {n} {}x{} queries on {:?} with M={m}:",
            shape.0,
            shape.1,
            space.dims()
        ),
        headers: std::iter::once("rate qps".to_owned())
            .chain(dir_refs.iter().map(|(name, _)| (*name).to_owned()))
            .collect(),
        rows: points
            .iter()
            .map(|p| {
                std::iter::once(p.rate_qps.to_string())
                    .chain(
                        p.methods
                            .iter()
                            .map(|m| format!("{:.2}", m.mean_latency_ms)),
                    )
                    .collect()
            })
            .collect(),
        separator: false,
    };
    print!("{}", table.render());
    Ok(())
}

fn cmd_theorem(flags: &Flags) -> Result<(), String> {
    let max_m: u32 = flags
        .get("max-m")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .clamp(1, 12);
    for d in theorem_table(max_m, 500_000_000) {
        println!("{}", d.summary());
    }
    Ok(())
}
