//! # decluster — grid-based multi-attribute record declustering
//!
//! Facade crate for the reproduction of *Performance Evaluation of Grid
//! Based Multi-Attribute Record Declustering Methods* (Himatsingka &
//! Srivastava, ICDE 1994).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`grid`] — data-space partitioning: domains, buckets, queries.
//! * [`hilbert`] — k-dimensional Hilbert curve, Z-order, Gray order.
//! * [`ecc`] — GF(2) linear algebra and binary linear codes.
//! * [`methods`] — the declustering methods (DM/CMD, GDM, BDM, FX/ExFX,
//!   ECC, HCAM), curve ablations, baselines, the advisor and GDM tuner.
//! * `file` ([`decluster_file`]) — a declustered multi-attribute file
//!   (records in, parallel scans out).
//! * [`obs`] — the observability layer: metrics registry, trace sinks,
//!   and the `Obs` recorder handle the simulator threads through its
//!   hot paths.
//! * [`sim`] — the parallel-I/O simulator, workloads, multi-user runs,
//!   and the experiment harness.
//! * [`theory`] — strict-optimality verification, exact shape profiles,
//!   and the `M > 5` impossibility result.
//!
//! The [`prelude`] pulls in the types needed for the common path
//! (grid → method → response time).
//!
//! ```
//! use decluster::prelude::*;
//!
//! let space = GridSpace::new_2d(16, 16).unwrap();
//! let method = Hcam::new(&space, 4).unwrap();
//! let region = RangeQuery::new([2, 3], [5, 9]).unwrap().region(&space).unwrap();
//! let rt = response_time(&method, &region);
//! assert!(rt >= optimal_response_time(region.num_buckets(), 4));
//! ```

pub use decluster_ecc as ecc;
pub use decluster_file as file;
pub use decluster_grid as grid;
pub use decluster_hilbert as hilbert;
pub use decluster_methods as methods;
pub use decluster_obs as obs;
pub use decluster_sim as sim;
pub use decluster_theory as theory;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use decluster_file::{DeclusteredFile, IoReport, ScanResult};
    pub use decluster_grid::{
        AttributeDomain, BucketCoord, BucketRegion, DiskId, GridSchema, GridSpace,
        PartialMatchQuery, Partitioning, PointQuery, Query, RangeQuery, Record, Value,
        ValueRangeQuery,
    };
    pub use decluster_methods::{
        advise, tune_gdm_coefficients, AllocationMap, CurveAlloc, CurveKind, DeclusteringMethod,
        DiskModulo, EccDecluster, FieldwiseXor, GeneralizedDiskModulo, Hcam, MethodKind,
        MethodRegistry, RandomAlloc, RoundRobin,
    };
    pub use decluster_sim::{
        deviation_from_optimal, optimal_response_time, response_time, DiskParams, Experiment,
        IoSimulator, Quantiles, ServeConfig, ServeSweep, ServingEngine, SweepResult,
    };
}
