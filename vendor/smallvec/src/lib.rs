//! Offline stand-in for the `smallvec` crate (API subset).
//!
//! Stores up to `N` elements inline (no heap allocation) and spills to a
//! `Vec` beyond that. Only the operations this workspace uses are
//! implemented; element types must be `Copy + Default` (the workspace
//! stores `u32` coordinates).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing-array abstraction: ties `SmallVec<[T; N]>` to its inline
/// storage. Implemented for all `[T; N]` with `T: Copy + Default`.
pub trait Array {
    /// Element type.
    type Item: Copy + Default;
    /// Inline capacity.
    const CAP: usize;
    /// A zero-initialized backing array.
    fn default_array() -> Self;
    /// The array as a slice.
    fn array_slice(&self) -> &[Self::Item];
    /// The array as a mutable slice.
    fn array_slice_mut(&mut self) -> &mut [Self::Item];
}

impl<T: Copy + Default, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
    fn default_array() -> Self {
        [T::default(); N]
    }
    fn array_slice(&self) -> &[T] {
        self
    }
    fn array_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

enum Repr<A: Array> {
    Inline { buf: A, len: usize },
    Heap(Vec<A::Item>),
}

/// A vector that stores small lengths inline, heap-allocating only when
/// the length exceeds the array parameter's capacity.
pub struct SmallVec<A: Array> {
    repr: Repr<A>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector (inline).
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                buf: A::default_array(),
                len: 0,
            },
        }
    }

    /// `n` copies of `elem`.
    pub fn from_elem(elem: A::Item, n: usize) -> Self {
        if n <= A::CAP {
            let mut buf = A::default_array();
            buf.array_slice_mut()[..n].fill(elem);
            SmallVec {
                repr: Repr::Inline { buf, len: n },
            }
        } else {
            SmallVec {
                repr: Repr::Heap(vec![elem; n]),
            }
        }
    }

    /// Takes ownership of `v`, keeping it inline when short enough.
    pub fn from_vec(v: Vec<A::Item>) -> Self {
        if v.len() <= A::CAP {
            Self::from_slice(&v)
        } else {
            SmallVec {
                repr: Repr::Heap(v),
            }
        }
    }

    /// Copies `s`.
    pub fn from_slice(s: &[A::Item]) -> Self {
        if s.len() <= A::CAP {
            let mut buf = A::default_array();
            buf.array_slice_mut()[..s.len()].copy_from_slice(s);
            SmallVec {
                repr: Repr::Inline { buf, len: s.len() },
            }
        } else {
            SmallVec {
                repr: Repr::Heap(s.to_vec()),
            }
        }
    }

    /// Appends an element, spilling to the heap if inline capacity is full.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < A::CAP {
                    buf.array_slice_mut()[*len] = value;
                    *len += 1;
                } else {
                    let mut v = buf.array_slice()[..*len].to_vec();
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Whether the contents live on the heap rather than inline.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[A::Item] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf.array_slice()[..*len],
            Repr::Heap(v) => v,
        }
    }

    /// The contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        match &mut self.repr {
            Repr::Inline { buf, len } => &mut buf.array_slice_mut()[..*len],
            Repr::Heap(v) => v,
        }
    }

    /// Copies the contents into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<A::Item> {
        self.as_slice().to_vec()
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Clone for SmallVec<A> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(v: Vec<A::Item>) -> Self {
        Self::from_vec(v)
    }
}

impl<A: Array> From<&[A::Item]> for SmallVec<A> {
    fn from(s: &[A::Item]) -> Self {
        Self::from_slice(s)
    }
}

impl<T: Copy + Default, const N: usize, const M: usize> From<[T; M]> for SmallVec<[T; N]> {
    fn from(a: [T; M]) -> Self {
        Self::from_slice(&a)
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type SV = SmallVec<[u32; 4]>;

    #[test]
    fn stays_inline_up_to_cap() {
        let v = SV::from_slice(&[1, 2, 3, 4]);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn spills_beyond_cap() {
        let v = SV::from_slice(&[1, 2, 3, 4, 5]);
        assert!(v.spilled());
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn push_spills_at_boundary() {
        let mut v = SV::from_slice(&[1, 2, 3, 4]);
        v.push(5);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_vec_roundtrips() {
        let v = SV::from_vec(vec![9, 8, 7]);
        assert!(!v.spilled());
        assert_eq!(v.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = SV::from_slice(&[0, 5]);
        let b = SV::from_slice(&[1, 0]);
        assert!(a < b);
        assert_eq!(a, a.clone());
    }
}
