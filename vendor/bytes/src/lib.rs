//! Offline stand-in for the `bytes` crate (API subset).
//!
//! `Bytes`/`BytesMut` are thin wrappers over `Vec<u8>`; `Buf` is
//! implemented for byte slices with the little-endian accessors the
//! workspace's persistence format uses. No zero-copy sharing — the
//! workspace only round-trips small allocation tables.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (little-endian where sized).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations: a cursor that consumes from the front.
///
/// # Panics
/// All `get_*`/`copy_*` methods panic if the buffer holds fewer bytes
/// than requested, mirroring upstream `bytes`. Check [`Buf::remaining`]
/// first when parsing untrusted input.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(len);
        let out = Bytes::copy_from_slice(head);
        *self = tail;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        let head = r.copy_to_bytes(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
