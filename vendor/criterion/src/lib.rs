//! Offline stand-in for the `criterion` crate (API subset).
//!
//! A real wall-clock benchmarking harness: each benchmark is warmed up,
//! auto-scaled to a target batch duration, then timed for a configurable
//! number of samples; the median per-iteration time is reported to
//! stdout (and throughput when configured). No statistical regression
//! analysis, plots, or baselines.
//!
//! CLI: the first non-flag argument filters benchmarks by substring;
//! `--bench`/`--test` (as passed by cargo) are accepted and ignored,
//! except that `--test` switches to a single-iteration smoke run.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Median seconds per iteration of the last `iter` call.
    last_secs_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            self.last_secs_per_iter = 0.0;
            return;
        }
        // Warm up and estimate a batch size targeting ~5 ms per sample.
        let start = Instant::now();
        std::hint::black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_secs_per_iter = per_iter[per_iter.len() / 2];
    }

    /// Times `f(setup())`, excluding `setup` from the measurement as far
    /// as this harness can (setup runs inside the batch but its cost is
    /// not separated; keep setups cheap).
    pub fn iter_with_setup<S, O, FS: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: FS,
        mut f: F,
    ) {
        if self.smoke {
            std::hint::black_box(f(setup()));
            self.last_secs_per_iter = 0.0;
            return;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            per_iter.push(t.elapsed().as_secs_f64());
        }
        per_iter.sort_by(f64::total_cmp);
        self.last_secs_per_iter = per_iter[per_iter.len() / 2];
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut smoke = false;
        for a in &args {
            match a.as_str() {
                "--bench" => {}
                "--test" => smoke = true,
                flag if flag.starts_with("--") => {}
                needle if filter.is_none() => filter = Some(needle.to_owned()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 20,
            filter,
            smoke,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            last_secs_per_iter: 0.0,
        };
        f(&mut b);
        if self.smoke {
            println!("{name}: ok (smoke)");
            return;
        }
        let secs = b.last_secs_per_iter;
        let mut line = format!("{name:<50} time: [{}]", format_time(secs));
        if secs > 0.0 {
            match throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!("  thrpt: [{:.3} Melem/s]", n as f64 / secs / 1e6));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(
                        "  thrpt: [{:.3} MiB/s]",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
                None => {}
            }
        }
        println!("{line}");
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.name, None, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    fn full_name(&self, id: &BenchmarkId) -> String {
        format!("{}/{}", self.name, id.name)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        f: F,
    ) -> &mut Self {
        let name = self.full_name(&id.into());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(&name, self.throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, upstream-compatible in both
/// the plain and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
