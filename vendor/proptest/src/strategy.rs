//! Strategies: composable generators of pseudo-random values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG threaded through strategy generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }
}

/// A generator of values of one type. Unlike upstream proptest there is
/// no value tree / shrinking; `generate` directly produces a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// A strategy generating from the strategy `f` builds out of each
    /// source value (dependent generation).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// A strategy that rejects values failing `f`, retrying (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy choosing uniformly among boxed alternatives — the
/// engine behind [`crate::prop_oneof!`] (uniform subset of upstream's
/// weighted union).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics when empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

/// Boxes one [`crate::prop_oneof!`] alternative (a free function so
/// the macro can unify arm types by inference instead of an `as` cast,
/// which rejects `_`).
pub fn boxed_alternative<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.inner.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (0i64..=5).generate(&mut rng);
            assert!((0..=5).contains(&w));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1u32..5).prop_flat_map(|a| (0u32..a).prop_map(move |b| (a, b)));
        for _ in 0..1000 {
            let (a, b) = strat.generate(&mut rng);
            assert!(b < a);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(3);
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
