//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Runs each property over a configurable number of pseudo-random cases
//! drawn from composable [`strategy::Strategy`] values. Deterministic:
//! the case stream is derived from the property function's name, so a
//! failing case reproduces on every run. No shrinking — the failing
//! inputs are printed as-is via the panic message of the underlying
//! `assert!`.

pub mod strategy;

/// Runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases [`crate::proptest!`] executes per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategy modules (`proptest::num`): re-exported range support
/// lives in [`strategy`]; this module exists for path compatibility.
pub mod num {}

/// Option strategies (`proptest::option`).
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `None` roughly a quarter of the time and
    /// `Some(inner)` otherwise (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if (0u32..4).generate(rng) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// `prop::collection::vec` etc. under the conventional alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}

/// Seed for a property's case stream: FNV-1a of the property name, so
/// each property gets a distinct but reproducible stream.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. See the crate docs; supports the upstream
/// form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::strategy::TestRng::new(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..__config.cases {
                    let mut __one_case = || {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                    };
                    __one_case();
                }
            }
        )*
    };
}

/// Chooses uniformly among alternative strategies producing one value
/// type (the unweighted subset of upstream's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_alternative($strat),)+
        ])
    };
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// (Expands to an early return from the per-case closure.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
