//! Offline stand-in for the `rand` crate (API subset).
//!
//! Provides `Rng::gen_range` over integer and float ranges,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` backed by
//! xoshiro256++ seeded via SplitMix64. Streams are deterministic per
//! seed but differ from upstream `rand`'s ChaCha-based `StdRng` — the
//! workspace's reproducibility contracts are per-seed, not
//! per-implementation, so only self-consistency matters.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float element types).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A sample from the type's full/standard distribution: every value
    /// for integers, `[0, 1)` for floats, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it through
    /// SplitMix64 (distinct seeds give uncorrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

// Unbiased bounded integer sampling via 128-bit widening multiply with
// rejection (Lemire's method).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bin count {c} implausible");
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} implausible");
    }
}
