//! Criterion benchmark harnesses for the paper reproduction; see `benches/`.
