//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Curve choice in HCAM** — Hilbert vs Z-order vs Gray-coded order,
//!   measured as *quality* (total response time of exhaustive small-square
//!   placements, reported via Criterion's time for computing it) and as
//!   construction cost.
//! * **ECC parity-check construction** — shortened Hamming vs the
//!   repeated-column fallback.
//! * **Search symmetry breaking** — the strict search with and without
//!   disk-relabelling symmetry breaking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decluster_ecc::BitMatrix;
use decluster_grid::{GridSpace, RangeQuery};
use decluster_methods::{AllocationMap, CurveAlloc, CurveKind, DeclusteringMethod, Hcam};
use decluster_theory::search::StrictSearch;
use std::hint::black_box;

fn total_small_square_rt(space: &GridSpace, method: &dyn DeclusteringMethod) -> u64 {
    let map = AllocationMap::from_method(space, method).expect("materializes");
    let mut total = 0;
    for r in 0..space.dim(0) - 1 {
        for c in 0..space.dim(1) - 1 {
            let region = RangeQuery::new([r, c], [r + 1, c + 1])
                .expect("query")
                .region(space)
                .expect("fits");
            total += map.response_time(&region);
        }
    }
    total
}

fn bench_curve_choice_quality(c: &mut Criterion) {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 8;
    let mut group = c.benchmark_group("ablation_curve_quality_2x2_sweep");
    group.bench_function("hilbert", |b| {
        let method = Hcam::new(&space, m).expect("hcam");
        b.iter(|| black_box(total_small_square_rt(&space, &method)))
    });
    group.bench_function("morton", |b| {
        let method = CurveAlloc::new(&space, m, CurveKind::Morton).expect("zcam");
        b.iter(|| black_box(total_small_square_rt(&space, &method)))
    });
    group.bench_function("gray", |b| {
        let method = CurveAlloc::new(&space, m, CurveKind::Gray).expect("graycam");
        b.iter(|| black_box(total_small_square_rt(&space, &method)))
    });
    group.finish();
}

fn bench_curve_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_curve_construction_128x128");
    group.sample_size(10);
    for (label, kind) in [("morton", CurveKind::Morton), ("gray", CurveKind::Gray)] {
        group.bench_function(label, |b| {
            b.iter_with_setup(
                || GridSpace::new_2d(128, 128).expect("grid"),
                |space| black_box(CurveAlloc::new(&space, 16, kind).expect("builds")),
            )
        });
    }
    group.bench_function("hilbert", |b| {
        b.iter_with_setup(
            || GridSpace::new_2d(128, 128).expect("grid"),
            |space| black_box(Hcam::new(&space, 16).expect("builds")),
        )
    });
    group.finish();
}

fn bench_ecc_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ecc_parity_check");
    // Hamming applies when n <= 2^r - 1; the cyclic fallback always does.
    group.bench_with_input(BenchmarkId::new("hamming", "r4_n12"), &(), |b, ()| {
        b.iter(|| black_box(BitMatrix::hamming_parity_check(4, 12).expect("shape ok")))
    });
    group.bench_with_input(BenchmarkId::new("cyclic", "r4_n12"), &(), |b, ()| {
        b.iter(|| black_box(BitMatrix::cyclic_parity_check(4, 12).expect("shape ok")))
    });
    group.bench_with_input(BenchmarkId::new("cyclic", "r2_n12"), &(), |b, ()| {
        b.iter(|| black_box(BitMatrix::cyclic_parity_check(2, 12).expect("shape ok")))
    });
    group.finish();
}

fn bench_search_symmetry_breaking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_search_symmetry");
    group.sample_size(10);
    for m in [4u32, 5] {
        let window = m + 1;
        group.bench_with_input(BenchmarkId::new("with", m), &m, |b, &m| {
            b.iter(|| black_box(StrictSearch::new(window, window, m).run()))
        });
        group.bench_with_input(BenchmarkId::new("without", m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    StrictSearch::new(window, window, m)
                        .without_symmetry_breaking()
                        .run(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(20);
    targets =
        bench_curve_choice_quality,
        bench_curve_construction,
        bench_ecc_construction,
        bench_search_symmetry_breaking,
);
criterion_main!(ablation);
