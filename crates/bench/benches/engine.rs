//! Storage-engine benchmarks: record routing and insertion, sequential
//! vs per-disk-parallel scans, dynamic grid-file loading, the multi-user
//! loop, and the local-search optimizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decluster_file::DeclusteredFile;
use decluster_grid::{
    AttributeDomain, GridDirectory, GridFile, GridSchema, GridSpace, Record, Value, ValueRangeQuery,
};
use decluster_methods::{
    optimize_allocation, AllocationMap, DeclusteringMethod, DiskModulo, Hcam, LocalSearchConfig,
    MethodKind,
};
use decluster_sim::workload::random_region;
use decluster_sim::{DiskParams, ServeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn schema() -> GridSchema {
    GridSchema::uniform(
        vec![
            AttributeDomain::int("x", 0, 9_999),
            AttributeDomain::int("y", 0, 9_999),
        ],
        32,
    )
    .expect("schema builds")
}

fn records(n: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(4);
    (0..n)
        .map(|_| {
            Record::new(vec![
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..10_000)),
            ])
        })
        .collect()
}

fn bench_insert_throughput(c: &mut Criterion) {
    let data = records(10_000);
    let mut group = c.benchmark_group("engine_insert_10k");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(10);
    group.bench_function("declustered_file_hcam", |b| {
        b.iter_with_setup(
            || DeclusteredFile::create(schema(), MethodKind::Hcam, 8).expect("file builds"),
            |mut file| {
                for r in &data {
                    file.insert(r.clone()).expect("in domain");
                }
                black_box(file.len())
            },
        )
    });
    group.bench_function("grid_file_dynamic", |b| {
        b.iter_with_setup(
            || {
                GridFile::new(
                    vec![
                        AttributeDomain::int("x", 0, 9_999),
                        AttributeDomain::int("y", 0, 9_999),
                    ],
                    64,
                )
                .expect("grid file builds")
            },
            |mut gf| {
                for r in &data {
                    gf.insert(r.clone()).expect("in domain");
                }
                black_box(gf.len())
            },
        )
    });
    group.finish();
}

fn bench_scan_modes(c: &mut Criterion) {
    let mut file = DeclusteredFile::create(schema(), MethodKind::Hcam, 8).expect("file builds");
    for r in records(50_000) {
        file.insert(r).expect("in domain");
    }
    let query = ValueRangeQuery::new(vec![
        Some((Value::Int(1_000), Value::Int(6_000))),
        Some((Value::Int(2_000), Value::Int(8_000))),
    ])
    .expect("query builds");
    let mut group = c.benchmark_group("engine_scan_50k_records");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(file.scan(&query).expect("scans").records.len()))
    });
    group.bench_function("parallel_per_disk", |b| {
        b.iter(|| black_box(file.scan_parallel(&query).expect("scans").records.len()))
    });
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let hcam = Hcam::new(&space, 8).expect("hcam builds");
    let dir = GridDirectory::build(space.clone(), 8, |b| hcam.disk_of(b.as_slice()));
    let params = DiskParams::default();
    let mut rng = StdRng::seed_from_u64(6);
    let queries: Vec<_> = (0..200)
        .map(|_| random_region(&mut rng, &space, &[3, 3]).expect("fits"))
        .collect();
    let mut group = c.benchmark_group("engine_closed_loop_200q");
    for clients in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    black_box(
                        ServeSpec::closed(clients)
                            .run_on(&dir, &params, &queries)
                            .expect("the closed spec is valid"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let space = GridSpace::new_2d(16, 16).expect("grid");
    let start =
        AllocationMap::from_method(&space, &DiskModulo::new(&space, 8).expect("dm")).expect("map");
    let mut rng = StdRng::seed_from_u64(2);
    let sample: Vec<_> = (0..100)
        .map(|_| random_region(&mut rng, &space, &[2, 2]).expect("fits"))
        .collect();
    c.bench_function("engine_local_search_20k_moves", |b| {
        b.iter(|| {
            black_box(
                optimize_allocation(
                    &space,
                    &start,
                    &sample,
                    LocalSearchConfig {
                        iterations: 20_000,
                        seed: 3,
                    },
                )
                .expect("search runs"),
            )
        })
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default().sample_size(20);
    targets = bench_insert_throughput, bench_scan_modes, bench_closed_loop, bench_optimizer,
);
criterion_main!(engine);
