//! Benchmarks for the impossibility machinery: the exhaustive strict
//! search (per disk count) and the strict-optimality verifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decluster_grid::GridSpace;
use decluster_methods::AllocationMap;
use decluster_theory::impossibility::decisive_window;
use decluster_theory::search::StrictSearch;
use decluster_theory::strict::{known_strict_allocation, verify_strictly_optimal};
use std::hint::black_box;

fn bench_thm_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm_strict_search");
    for m in [2u32, 4, 5, 6, 8] {
        let (rows, cols) = decisive_window(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    StrictSearch::new(rows, cols, m)
                        .with_node_budget(500_000_000)
                        .run(),
                )
            })
        });
    }
    group.finish();
}

fn bench_strict_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm_strict_verifier");
    for side in [8u32, 12, 16] {
        let space = GridSpace::new_2d(side, side).expect("grid");
        let alloc = known_strict_allocation(&space, 5).expect("lattice");
        group.bench_with_input(BenchmarkId::from_parameter(side), &alloc, |b, alloc| {
            b.iter(|| black_box(verify_strictly_optimal(alloc).is_ok()))
        });
    }
    group.finish();
}

fn bench_counterexample_hunt(c: &mut Criterion) {
    // How fast the verifier finds the first violation for a non-optimal
    // allocation (DM at M=16).
    let space = GridSpace::new_2d(16, 16).expect("grid");
    let dm = decluster_methods::DiskModulo::new(&space, 16).expect("dm");
    let alloc = AllocationMap::from_method(&space, &dm).expect("map");
    c.bench_function("thm_counterexample_hunt_dm16", |b| {
        b.iter(|| black_box(verify_strictly_optimal(&alloc).is_err()))
    });
}

criterion_group!(
    name = theorem;
    config = Criterion::default().sample_size(10);
    targets = bench_thm_search, bench_strict_verifier, bench_counterexample_hunt,
);
criterion_main!(theorem);
