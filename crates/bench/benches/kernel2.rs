//! Kernel v1 vs v2 benchmarks.
//!
//! Scoring: the BENCH_rt.json workload — a 64×64 grid, M = 16, and 1000
//! placements of one repeated query shape — scored through the v1 kernel
//! path (u32 count lanes, per-query corner derivation, per-query
//! accumulator allocation) and the v2 path (adaptive u16 lanes, a
//! shape-compiled [`CornerPlan`] cached in a reusable
//! [`decluster_methods::Scratch`]). The acceptance target for the v2
//! path is ≥ 2× over v1 on this workload.
//!
//! Construction: serial vs parallel per-method kernel build of an
//! [`EvalContext`], which dominates small sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decluster_grid::{BucketRegion, GridSpace};
use decluster_methods::{AllocationMap, DiskCounts, MethodRegistry, Scratch};
use decluster_sim::EvalContext;
use std::hint::black_box;

/// The repeated-shape placement stream every scoring bench shares:
/// `count` translates of a `side × side` query walked over the grid.
fn placements(space: &GridSpace, side: u32, count: usize) -> Vec<BucketRegion> {
    let base =
        BucketRegion::new(space, [0, 0].into(), [side - 1, side - 1].into()).expect("shape fits");
    let span = space.dims()[0] - side;
    (0..count)
        .map(|i| {
            let dy = (i as u32 * 7) % (span + 1);
            let dx = (i as u32 * 13) % (span + 1);
            base.translate(space, &[dy, dx]).expect("stays inside")
        })
        .collect()
}

fn maps_64x64_m16() -> Vec<AllocationMap> {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::default();
    registry
        .paper_methods(&space, 16)
        .iter()
        .map(|m| AllocationMap::from_method(&space, m.as_ref()).expect("materializes"))
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let maps = maps_64x64_m16();
    let regions = placements(&space, 16, 1000);
    let v1: Vec<DiskCounts> = maps
        .iter()
        .map(|m| DiskCounts::build_wide(m).expect("kernel"))
        .collect();
    let v2: Vec<DiskCounts> = maps
        .iter()
        .map(|m| DiskCounts::build(m).expect("kernel"))
        .collect();
    assert!(v2.iter().all(|k| k.lane_bits() == 16), "64x64 fits u16");

    let mut group = c.benchmark_group("kernel2_score_64x64_m16_1000q");
    group.throughput(Throughput::Elements((regions.len() * v1.len()) as u64));
    group.bench_function("v1_wide_per_query_corners", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for kernel in &v1 {
                for r in &regions {
                    acc += kernel.response_time(r);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("v2_planned_scratch", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let mut acc = 0u64;
            for kernel in &v2 {
                for r in &regions {
                    acc += kernel.response_time_with(r, &mut scratch);
                }
            }
            black_box(acc)
        })
    });
    // The intermediate variants, to attribute the win: plan+scratch on
    // the wide table (plan alone) and per-query corners on the narrow
    // table (lane width alone).
    group.bench_function("v1_wide_planned_scratch", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let mut acc = 0u64;
            for kernel in &v1 {
                for r in &regions {
                    acc += kernel.response_time_with(r, &mut scratch);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("v2_narrow_per_query_corners", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for kernel in &v2 {
                for r in &regions {
                    acc += kernel.response_time(r);
                }
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut masked = c.benchmark_group("kernel2_masked_64x64_m16_1000q");
    let mut live = [true; 16];
    live[3] = false;
    live[11] = false;
    masked.bench_function("v1_masked", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &regions {
                acc += v1[0].masked_response_time(r, &live);
            }
            black_box(acc)
        })
    });
    masked.bench_function("v2_masked_planned", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let mut acc = 0u64;
            for r in &regions {
                acc += v2[0].masked_response_time_with(r, &live, &mut scratch);
            }
            black_box(acc)
        })
    });
    masked.finish();
}

fn bench_build(c: &mut Criterion) {
    // A larger grid than the scoring bench so the build cost is worth
    // parallelizing (the paper's E6 tops out at 128 partitions/side).
    let space = GridSpace::new_2d(128, 128).expect("grid");
    let registry = MethodRegistry::default();
    let maps: Vec<AllocationMap> = registry
        .paper_methods(&space, 16)
        .iter()
        .map(|m| AllocationMap::from_method(&space, m.as_ref()).expect("materializes"))
        .collect();

    let mut group = c.benchmark_group("kernel2_build_128x128_m16");
    group.sample_size(20);
    group.bench_function("serial_from_maps", |b| {
        b.iter_with_setup(
            || maps.clone(),
            |maps| black_box(EvalContext::from_maps(16, maps).kernel_coverage()),
        )
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("parallel_from_maps", threads), |b| {
            b.iter_with_setup(
                || maps.clone(),
                |maps| {
                    black_box(EvalContext::from_maps_parallel(16, maps, threads).kernel_coverage())
                },
            )
        });
    }
    group.finish();
}

criterion_group!(kernel2, bench_scoring, bench_build);
criterion_main!(kernel2);
