//! Microbenchmarks of the event-driven serving primitives: `EventHeap`
//! push/pop under the fill-then-drain and steady-state patterns the
//! serve loop produces, and the `merge_epoch_max` fold that combines
//! per-shard completion partials at an epoch boundary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decluster_sim::{merge_epoch_max, EventHeap};
use std::hint::black_box;

/// Deterministic pseudo-random event times (splitmix64, no rand dep
/// needed on the hot path being measured).
fn times(n: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 1.0e6
        })
        .collect()
}

fn bench_heap_fill_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_heap_fill_drain");
    for &n in &[1usize << 10, 1 << 14] {
        let ts = times(n);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            let mut heap: EventHeap<u32> = EventHeap::new();
            b.iter(|| {
                heap.clear();
                for (i, &t) in ts.iter().enumerate() {
                    heap.push(t, i as u32);
                }
                let mut acc = 0u64;
                while let Some(e) = heap.pop() {
                    acc = acc.wrapping_add(u64::from(e.payload));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// The serve loop's steady state: the heap holds roughly the in-flight
/// request count while arrivals push and completions pop in alternation.
fn bench_heap_steady_state(c: &mut Criterion) {
    let depth = 512usize;
    let ops = 1usize << 14;
    let ts = times(depth + ops);
    c.bench_function("event_heap_steady_state_512", |b| {
        let mut heap: EventHeap<u32> = EventHeap::new();
        b.iter(|| {
            heap.clear();
            for (i, &t) in ts[..depth].iter().enumerate() {
                heap.push(t, i as u32);
            }
            let mut acc = 0u64;
            for (i, &t) in ts[depth..].iter().enumerate() {
                let e = heap.pop().expect("heap stays at depth");
                acc = acc.wrapping_add(u64::from(e.payload));
                // Keep times moving forward the way completions do.
                heap.push(e.time + t, i as u32);
            }
            black_box(acc)
        })
    });
}

fn bench_epoch_merge(c: &mut Criterion) {
    // One pipeline epoch's worth of completion partials (the serve
    // shard walker folds `shards` partials per epoch).
    let epoch = 8192usize;
    let mut group = c.benchmark_group("epoch_merge_max");
    for &shards in &[2usize, 8] {
        let parts: Vec<Vec<f64>> = (0..shards)
            .map(|s| times(epoch).iter().map(|t| t + s as f64).collect())
            .collect();
        let issue = times(epoch);
        group.throughput(Throughput::Elements((shards * epoch) as u64));
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            let mut acc = vec![0.0f64; epoch];
            b.iter(|| {
                acc.copy_from_slice(&issue);
                for part in &parts {
                    merge_epoch_max(&mut acc, part);
                }
                black_box(acc[epoch - 1])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heap_fill_drain,
    bench_heap_steady_state,
    bench_epoch_merge
);
criterion_main!(benches);
