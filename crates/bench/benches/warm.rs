//! Warm-start benchmarks: cold construction vs image-driven adoption.
//!
//! Cold: evaluate every paper method over the grid, build each
//! directory, and compile each count kernel. Warm: reload the same
//! state from persisted images — v2 allocation images plus one
//! persist-v3 kernel image — revalidate, and adopt. The warm path is
//! the `repro bench_warm` startup path; its win is skipping both method
//! evaluation and kernel compilation, paying only image parse + CRC.
//!
//! Also measured on their own: serializing and parsing the kernel
//! image (the slicing-by-16 CRC plus bulk lane encode/decode), and the
//! cross-query shape-plan cache against the uncached per-query plan
//! build it replaces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use decluster_grid::{BucketRegion, GridDirectory, GridSpace};
use decluster_methods::{AllocationMap, KernelCache, MethodRegistry, PlanCache, Scratch};
use std::hint::black_box;

const SIDE: u32 = 64;
const DISKS: u32 = 16;

fn space() -> GridSpace {
    GridSpace::new_2d(SIDE, SIDE).expect("grid")
}

/// Cold-built state for every paper method: (name, directory, kernel).
fn cold_state() -> Vec<(String, GridDirectory, AllocationMap)> {
    let space = space();
    let registry = MethodRegistry::default();
    registry
        .paper_methods(&space, DISKS)
        .iter()
        .map(|m| {
            let dir = GridDirectory::build(space.clone(), DISKS, |b| m.disk_of(b.as_slice()));
            let map = AllocationMap::from_method(&space, m.as_ref()).expect("materializes");
            (m.name().to_owned(), dir, map)
        })
        .collect()
}

fn persisted_images(
    state: &[(String, GridDirectory, AllocationMap)],
) -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let mut cache = KernelCache::new();
    let mut allocs = Vec::new();
    for (name, _, map) in state {
        let kernel = map.disk_counts().expect("kernel compiles");
        cache.insert(name, map, &kernel);
        allocs.push((name.clone(), map.to_bytes().to_vec()));
    }
    (cache.to_bytes().to_vec(), allocs)
}

fn bench_startup(c: &mut Criterion) {
    let space = space();
    let registry = MethodRegistry::default();
    let state = cold_state();
    let (kernel_image, alloc_images) = persisted_images(&state);

    let mut group = c.benchmark_group("warm_startup_64x64_m16");
    group.throughput(Throughput::Elements(state.len() as u64));
    group.bench_function("cold_methods_dirs_kernels", |b| {
        b.iter(|| {
            let methods = registry.paper_methods(&space, DISKS);
            let built: Vec<_> = methods
                .iter()
                .map(|m| {
                    let dir =
                        GridDirectory::build(space.clone(), DISKS, |bk| m.disk_of(bk.as_slice()));
                    let map = AllocationMap::from_method(&space, m.as_ref()).expect("materializes");
                    let kernel = map.disk_counts().expect("kernel compiles");
                    (dir, kernel)
                })
                .collect();
            black_box(built)
        })
    });
    group.bench_function("warm_images_revalidate_adopt", |b| {
        b.iter(|| {
            let loaded = KernelCache::from_bytes(&kernel_image).expect("image loads");
            let built: Vec<_> = alloc_images
                .iter()
                .map(|(name, bytes)| {
                    let map = AllocationMap::from_bytes(bytes).expect("image loads");
                    let dir = GridDirectory::from_table(space.clone(), DISKS, map.table())
                        .expect("grid-shaped");
                    let kernel = loaded.lookup(name, &map).expect("fresh image revalidates");
                    (dir, kernel)
                })
                .collect();
            black_box(built)
        })
    });
    group.finish();
}

fn bench_image_codec(c: &mut Criterion) {
    let state = cold_state();
    let mut cache = KernelCache::new();
    for (name, _, map) in &state {
        let kernel = map.disk_counts().expect("kernel compiles");
        cache.insert(name, map, &kernel);
    }
    let image = cache.to_bytes();

    let mut group = c.benchmark_group("warm_kernel_image_codec");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.bench_function("serialize_v3", |b| b.iter(|| black_box(cache.to_bytes())));
    group.bench_function("parse_v3", |b| {
        b.iter(|| black_box(KernelCache::from_bytes(&image).expect("image loads")))
    });
    group.finish();
}

fn bench_shape_cache(c: &mut Criterion) {
    let space = space();
    let map = cold_state().remove(0).2;
    let kernel = map.disk_counts().expect("kernel compiles");
    // Four shapes interleaved query-by-query: the serving-loop case the
    // cross-query cache exists for. The scratch's single plan slot
    // misses every query (the previous query always had a different
    // shape); the LRU holds all four plans at once.
    let shapes: [[u32; 2]; 4] = [[1, 1], [2, 2], [2, 8], [8, 8]];
    let regions: Vec<BucketRegion> = (0..1000)
        .map(|i| {
            let [h, w] = shapes[i % shapes.len()];
            let dy = (i as u32 * 7) % (SIDE - h + 1);
            let dx = (i as u32 * 13) % (SIDE - w + 1);
            BucketRegion::new(&space, [dy, dx].into(), [dy + h - 1, dx + w - 1].into())
                .expect("stays inside")
        })
        .collect();
    let mut hist: Vec<u64> = Vec::with_capacity(DISKS as usize);

    let mut group = c.benchmark_group("warm_shape_cache_1000q");
    group.throughput(Throughput::Elements(regions.len() as u64));
    group.bench_function("uncached_plan_per_query", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            let mut acc = 0u64;
            for r in &regions {
                kernel.access_histogram_with(r, &mut scratch, &mut hist);
                acc += hist[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("cached_plan_lru", |b| {
        let mut scratch = Scratch::new();
        let mut plans = PlanCache::new();
        b.iter(|| {
            let mut acc = 0u64;
            for r in &regions {
                kernel.access_histogram_cached(r, &mut plans, &mut scratch, &mut hist);
                acc += hist[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_startup, bench_image_codec, bench_shape_cache);
criterion_main!(benches);
