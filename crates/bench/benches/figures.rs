//! One Criterion benchmark per reproduced table/figure: each measures the
//! wall-clock cost of regenerating that experiment's data series at a
//! reduced query budget (the `repro` binary runs the full-budget version;
//! these keep the figure pipelines honest and trackable over time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decluster_grid::GridSpace;
use decluster_sim::workload::{ShapeSweep, SizeSweep};
use decluster_sim::{DbSizePoint, Experiment};
use std::hint::black_box;

const QUERIES: usize = 50;

fn experiment_2d() -> Experiment {
    Experiment::new(GridSpace::new_2d(64, 64).expect("grid"), 16)
        .with_queries_per_point(QUERIES)
        .with_seed(1994)
}

fn bench_e1_query_size(c: &mut Criterion) {
    let exp = experiment_2d();
    let sweep = SizeSweep::explicit(vec![1, 4, 16, 64, 256, 1024]);
    c.bench_function("e1_query_size_sweep", |b| {
        b.iter(|| black_box(exp.run_size_sweep(&sweep).expect("runs")))
    });
}

fn bench_e2_shape(c: &mut Criterion) {
    let exp = experiment_2d();
    let sweep = ShapeSweep::new(64, 6);
    c.bench_function("e2_shape_sweep", |b| {
        b.iter(|| black_box(exp.run_shape_sweep(&sweep).expect("runs")))
    });
}

fn bench_e3_three_attrs(c: &mut Criterion) {
    let exp = Experiment::new(GridSpace::new_cube(3, 16).expect("cube"), 16)
        .with_queries_per_point(QUERIES)
        .with_seed(1994);
    let sweep = SizeSweep::explicit(vec![8, 64, 512]);
    c.bench_function("e3_three_attribute_sweep", |b| {
        b.iter(|| black_box(exp.run_size_sweep(&sweep).expect("runs")))
    });
}

fn bench_e4_disks_small(c: &mut Criterion) {
    let exp = experiment_2d();
    c.bench_function("e4_disk_sweep_small_queries", |b| {
        b.iter(|| black_box(exp.run_disk_sweep(&[4, 8, 16, 32], 4).expect("runs")))
    });
}

fn bench_e5_disks_large(c: &mut Criterion) {
    let exp = experiment_2d();
    c.bench_function("e5_disk_sweep_large_queries", |b| {
        b.iter(|| black_box(exp.run_disk_sweep(&[4, 8, 16, 32], 256).expect("runs")))
    });
}

fn bench_e6_dbsize(c: &mut Criterion) {
    let exp = experiment_2d();
    let points: Vec<DbSizePoint> = [16u32, 32, 64]
        .iter()
        .map(|&side| DbSizePoint {
            side,
            query_side: (side / 8).max(1),
        })
        .collect();
    c.bench_function("e6_dbsize_sweep", |b| {
        b.iter(|| black_box(exp.run_dbsize_sweep(&points).expect("runs")))
    });
}

fn bench_t2_partial_match(c: &mut Criterion) {
    let exp = experiment_2d();
    c.bench_function("t2_partial_match_sweep", |b| {
        b.iter(|| black_box(exp.run_partial_match().expect("runs")))
    });
}

fn bench_t1_prediction_check(c: &mut Criterion) {
    use decluster_methods::{AllocationMap, DiskModulo};
    use decluster_sim::workload::all_partial_match_queries;
    use decluster_theory::partial_match::{check_prediction, dm_predicts_optimal};
    // T1 on a 16x16 grid (the 64x64 version is the repro binary's job).
    let space = GridSpace::new_2d(16, 16).expect("grid");
    let alloc =
        AllocationMap::from_method(&space, &DiskModulo::new(&space, 8).expect("dm")).expect("map");
    let queries = all_partial_match_queries(&space);
    c.bench_with_input(
        BenchmarkId::new("t1_dm_prediction_check", queries.len()),
        &queries,
        |b, queries| b.iter(|| black_box(check_prediction(&alloc, queries, dm_predicts_optimal))),
    );
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_e1_query_size,
        bench_e2_shape,
        bench_e3_three_attrs,
        bench_e4_disks_small,
        bench_e5_disks_large,
        bench_e6_dbsize,
        bench_t2_partial_match,
        bench_t1_prediction_check,
);
criterion_main!(figures);
