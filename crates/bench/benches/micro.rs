//! Microbenchmarks of the hot paths: per-bucket disk assignment for each
//! method, Hilbert encode/decode, ECC syndromes, allocation
//! materialization, and response-time evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decluster_ecc::BinaryLinearCode;
use decluster_grid::{GridSpace, RangeQuery};
use decluster_hilbert::HilbertCurve;
use decluster_methods::{AllocationMap, MethodKind, MethodRegistry};
use std::hint::black_box;

fn bench_method_assignment(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::default();
    let mut group = c.benchmark_group("assign_64x64_m16");
    group.throughput(Throughput::Elements(64 * 64));
    for kind in MethodKind::ALL {
        let method = registry.build(kind, &space, 16).expect("builds at M=16");
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in 0..64u32 {
                    for col in 0..64u32 {
                        acc += u64::from(method.disk_of(&[r, col]).0);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let curve = HilbertCurve::new(2, 16).expect("curve");
    c.bench_function("hilbert_encode_2d_16bit", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for i in 0..1000u32 {
                acc ^= curve
                    .encode(&[i * 37 % 65536, i * 101 % 65536])
                    .expect("in range");
            }
            black_box(acc)
        })
    });
    c.bench_function("hilbert_decode_2d_16bit", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1000u128 {
                acc ^= curve
                    .decode(i * 4_294_967_291 % curve.num_points())
                    .expect("in range")[0];
            }
            black_box(acc)
        })
    });
}

fn bench_ecc_syndrome(c: &mut Criterion) {
    let code = BinaryLinearCode::hamming(4, 12).expect("code");
    c.bench_function("ecc_syndrome_12bit", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for w in 0..4096u128 {
                acc ^= code.syndrome(w);
            }
            black_box(acc)
        })
    });
}

fn bench_materialization(c: &mut Criterion) {
    let registry = MethodRegistry::default();
    let mut group = c.benchmark_group("materialize_128x128_m16");
    for kind in [
        MethodKind::Dm,
        MethodKind::Fx,
        MethodKind::Ecc,
        MethodKind::Hcam,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_with_setup(
                || GridSpace::new_2d(128, 128).expect("grid"),
                |space| {
                    let method = registry.build(kind, &space, 16).expect("builds");
                    black_box(AllocationMap::from_method(&space, method.as_ref()).expect("maps"))
                },
            )
        });
    }
    group.finish();
}

fn bench_response_time(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::default();
    let method = registry.build(MethodKind::Fx, &space, 16).expect("fx");
    let map = AllocationMap::from_method(&space, method.as_ref()).expect("map");
    let mut group = c.benchmark_group("response_time");
    for (label, hi) in [("16_buckets", [3u32, 3u32]), ("1024_buckets", [31, 31])] {
        let region = RangeQuery::new([0, 0], hi)
            .expect("query")
            .region(&space)
            .expect("fits");
        group.throughput(Throughput::Elements(region.num_buckets()));
        group.bench_function(label, |b| b.iter(|| black_box(map.response_time(&region))));
    }
    group.finish();
}

/// An E1-style query population: the paper's area ladder cycled over a
/// thousand deterministic placements on the 64×64 grid.
fn e1_population(space: &GridSpace) -> Vec<decluster_grid::BucketRegion> {
    let areas: [u64; 19] = [
        1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    ];
    let mut state = 0x1994_u64;
    (0..1000)
        .map(|i| {
            let area = areas[i % areas.len()];
            // Near-square sides for the area, clipped to the grid.
            let mut a = (area as f64).sqrt().floor() as u64;
            while !area.is_multiple_of(a) {
                a -= 1;
            }
            let (w, h) = (a as u32, (area / a) as u32);
            // SplitMix64 placements — deterministic, no rand dependency.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let lo0 = (z as u32) % (64 - w + 1);
            let lo1 = ((z >> 32) as u32) % (64 - h + 1);
            RangeQuery::new([lo0, lo1], [lo0 + w - 1, lo1 + h - 1])
                .expect("query")
                .region(space)
                .expect("fits")
        })
        .collect()
}

fn bench_rt_naive(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::default();
    let regions = e1_population(&space);
    let mut group = c.benchmark_group("rt_naive_e1_1000q");
    group.sample_size(10);
    for kind in [
        MethodKind::Dm,
        MethodKind::Fx,
        MethodKind::Ecc,
        MethodKind::Hcam,
    ] {
        let method = registry.build(kind, &space, 16).expect("builds");
        let map = AllocationMap::from_method(&space, method.as_ref()).expect("map");
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let total: u64 = regions.iter().map(|r| map.response_time(r)).sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_rt_kernel(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::default();
    let regions = e1_population(&space);
    let mut group = c.benchmark_group("rt_kernel_e1_1000q");
    group.sample_size(10);
    for kind in [
        MethodKind::Dm,
        MethodKind::Fx,
        MethodKind::Ecc,
        MethodKind::Hcam,
    ] {
        let method = registry.build(kind, &space, 16).expect("builds");
        let map = AllocationMap::from_method(&space, method.as_ref()).expect("map");
        // Kernel build is included: this is the cost a sweep point pays.
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let kernel = map.disk_counts().expect("table fits");
                let total: u64 = regions.iter().map(|r| kernel.response_time(r)).sum();
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets =
        bench_method_assignment,
        bench_hilbert,
        bench_ecc_syndrome,
        bench_materialization,
        bench_response_time,
        bench_rt_naive,
        bench_rt_kernel,
);
criterion_main!(micro);
