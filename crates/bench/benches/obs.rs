//! Observability overhead: the RT scoring loop with no recorder
//! attached must cost the same as before the obs layer existed (the
//! acceptance bar is a ≤2% delta against the raw kernel loop), and the
//! live recorder's cost should stay small enough to leave on in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use decluster_grid::{BucketRegion, GridSpace};
use decluster_methods::{AllocationMap, MethodRegistry};
use decluster_obs::{MetricsRecorder, Obs};
use decluster_sim::workload::{random_region, rect_sides_for_area};
use decluster_sim::EvalContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

const DISKS: u32 = 16;
const PLACEMENTS: usize = 500;

fn e1_population() -> (Vec<AllocationMap>, Vec<BucketRegion>) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let registry = MethodRegistry::with_seed(1994);
    let maps: Vec<AllocationMap> = registry
        .paper_methods(&space, DISKS)
        .iter()
        .map(|m| AllocationMap::from_method(&space, m.as_ref()).expect("materializes"))
        .collect();
    let areas = [
        1u64, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    ];
    let mut rng = StdRng::seed_from_u64(1994);
    let regions = (0..PLACEMENTS)
        .map(|i| {
            let sides =
                rect_sides_for_area(areas[i % areas.len()], space.dims()).expect("area fits");
            random_region(&mut rng, &space, &sides).expect("placement fits")
        })
        .collect();
    (maps, regions)
}

/// The acceptance comparison: the same `EvalContext::score` call with
/// the default (disabled) handle vs a live metrics recorder. The
/// disabled case is the one that must not regress vs the pre-obs
/// scoring loop — all aggregation hides behind one `enabled()` branch.
fn bench_score_overhead(c: &mut Criterion) {
    let (maps, regions) = e1_population();
    let mut group = c.benchmark_group("obs_score_500q");
    group.sample_size(30);

    let disabled = EvalContext::from_maps(DISKS, maps.clone());
    group.bench_function("recorder_disabled", |b| {
        b.iter(|| black_box(disabled.score(black_box(&regions))))
    });

    let recorder = Arc::new(MetricsRecorder::new());
    let live = EvalContext::from_maps(DISKS, maps.clone()).with_obs(Obs::new(recorder));
    group.bench_function("recorder_live", |b| {
        b.iter(|| black_box(live.score(black_box(&regions))))
    });
    group.finish();
}

/// The raw primitives, so registry costs are visible in isolation:
/// register-or-get handle lookups, counter bumps, histogram observes.
fn bench_registry_primitives(c: &mut Criterion) {
    let recorder = MetricsRecorder::new();
    let registry = recorder.registry();
    registry.counter_add("warm.counter", 1);
    registry.observe("warm.histogram", 1);
    let mut group = c.benchmark_group("obs_primitives");
    group.bench_function("counter_add_warm", |b| {
        b.iter(|| registry.counter_add(black_box("warm.counter"), black_box(3)))
    });
    group.bench_function("observe_warm", |b| {
        b.iter(|| registry.observe(black_box("warm.histogram"), black_box(17)))
    });
    group.bench_function("noop_counter_add", |b| {
        let obs = Obs::disabled();
        b.iter(|| obs.counter_add(black_box("ignored"), black_box(3)))
    });
    group.finish();
}

criterion_group!(
    name = obs;
    config = Criterion::default();
    targets = bench_score_overhead, bench_registry_primitives,
);
criterion_main!(obs);
