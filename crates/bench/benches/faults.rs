//! Fault-injection benchmarks: what degraded-mode evaluation costs on
//! top of the healthy paths it wraps.
//!
//! * **Masked vs plain kernel RT** — the degraded kernel query is the
//!   same `O(M · 2^k)` corner walk plus a live-mask filter; the gap is
//!   the whole per-query price of fault awareness.
//! * **Degraded outcome scoring** — `degraded_outcome` over a healthy,
//!   a failed, and a slow-disk schedule, against the plain RT lookup.
//! * **Rebuild simulation** — the closed-loop replica replay behind the
//!   `repro faults` interference numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decluster_grid::{BucketRegion, GridDirectory, GridSpace};
use decluster_methods::{AllocationMap, DeclusteringMethod, DiskModulo, Hcam};
use decluster_sim::workload::random_region;
use decluster_sim::{degraded_outcome, simulate_rebuild, DiskParams, FaultSchedule, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const SEED: u64 = 1994;

fn sample_regions(space: &GridSpace, sides: &[u32], n: usize) -> Vec<BucketRegion> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..n)
        .map(|_| random_region(&mut rng, space, sides).expect("shape fits"))
        .collect()
}

fn bench_masked_vs_plain_rt(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let m = 16u32;
    let map = AllocationMap::from_method(&space, &Hcam::new(&space, m).expect("hcam"))
        .expect("materializes");
    let kernel = map.disk_counts().expect("kernel fits");
    let regions = sample_regions(&space, &[8, 8], 512);
    let mut live = vec![true; m as usize];
    live[3] = false;

    let mut group = c.benchmark_group("faults_kernel_rt_512q");
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for r in &regions {
                total += kernel.response_time(black_box(r));
            }
            black_box(total)
        })
    });
    group.bench_function("masked", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for r in &regions {
                total += kernel.masked_response_time(black_box(r), &live);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_degraded_outcome(c: &mut Criterion) {
    let space = GridSpace::new_2d(64, 64).expect("grid");
    let m = 16u32;
    let map = AllocationMap::from_method(&space, &Hcam::new(&space, m).expect("hcam"))
        .expect("materializes");
    let kernel = map.disk_counts().expect("kernel fits");
    let regions = sample_regions(&space, &[8, 8], 512);
    let hists: Vec<Vec<u64>> = regions.iter().map(|r| kernel.access_histogram(r)).collect();
    let policy = RetryPolicy::default();
    let schedules = [
        ("healthy", FaultSchedule::healthy(m)),
        (
            "one_failed",
            FaultSchedule::healthy(m).fail_stop(3, 0).expect("valid"),
        ),
        (
            "one_slow",
            FaultSchedule::healthy(m)
                .slow(3, 4.0, 0, u64::MAX)
                .expect("valid"),
        ),
    ];
    let mut group = c.benchmark_group("faults_degraded_outcome_512q");
    for (label, schedule) in &schedules {
        group.bench_with_input(BenchmarkId::from_parameter(label), schedule, |b, s| {
            b.iter(|| {
                let mut served = 0usize;
                for (t, hist) in hists.iter().enumerate() {
                    if degraded_outcome(black_box(hist), s, t as u64, &policy, true).is_served() {
                        served += 1;
                    }
                }
                black_box(served)
            })
        });
    }
    group.finish();
}

fn bench_rebuild_simulation(c: &mut Criterion) {
    let space = GridSpace::new_2d(32, 32).expect("grid");
    let m = 8u32;
    let method = DiskModulo::new(&space, m).expect("dm");
    let dir = GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()));
    let regions = sample_regions(&space, &[4, 4], 64);
    let params = DiskParams::default();
    c.bench_function("faults_rebuild_64q_8clients", |b| {
        b.iter(|| {
            black_box(
                simulate_rebuild(&dir, &params, 3, black_box(&regions), 8).expect("disk in range"),
            )
        })
    });
}

criterion_group!(
    faults,
    bench_masked_vs_plain_rt,
    bench_degraded_outcome,
    bench_rebuild_simulation
);
criterion_main!(faults);
