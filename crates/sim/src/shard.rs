//! Sharded parallel serving: one serve run split across `S` disk shards.
//!
//! The serial serving loop interleaves three kinds of work per event:
//! per-query page counting (the kernel), FCFS fan-out against the disk
//! queues, and bookkeeping (heap, latencies, samples). The first two are
//! embarrassingly parallel *across disks* — the paper's own premise —
//! while the bookkeeping is inherently sequential. This module exploits
//! that split:
//!
//! 1. **Stage A (sequential, tiny).** The query stream is periodic
//!    (`queries[i % L]`), so per-disk counts are computed once per
//!    distinct region into an `L × M` table, and the serial loop's
//!    shape-cache hit/miss counters are reproduced exactly by replaying
//!    the [`decluster_methods::PlanCache`] LRU policy over the shape-id
//!    sequence (with steady-state cycle detection, so a million-request
//!    run costs a few periods).
//! 2. **Stage B (parallel).** Disk `d` belongs to shard
//!    `⌊d·S/M⌋`-ish (contiguous ranges). Each shard walks the arrival
//!    stream over *its* disks only, producing per-arrival partial
//!    completion times, per-disk busy/free state, and partial
//!    busy-disk counts on the sample grid. Per-disk FCFS state never
//!    crosses a shard boundary, so every floating-point operation
//!    sequence per disk is byte-identical to the serial loop's.
//! 3. **Merge + replay (sequential, lean).** Partial completions are
//!    folded in shard order with `f64::max` (associative and exact —
//!    each partial already folds from the issue time), then the serial
//!    event loop is replayed with the fan-out replaced by a table
//!    lookup: the event heap sees the same `(total_cmp(time), seq)`
//!    pushes in the same order, so `peak_in_flight`, sample
//!    `in_flight`/`completed`, latencies, and the latency ring evolve
//!    bit-identically.
//!
//! With `threads > 1` stages B and the replay are pipelined over
//! arrival-count epochs ([`EPOCH_ARRIVALS`]): shard workers walk epoch
//! `e+1` while the main thread merges and replays epoch `e`, hiding the
//! sequential tail. The pipeline only changes *when* work happens, never
//! its values, so the result is byte-identical at any `--shards` and
//! `--threads` combination — including `--shards 1`, which is the serial
//! loop itself.
//!
//! The shared-scan path parallelizes the same way with windows instead
//! of arrivals: window membership, merged plans, and replica routing are
//! precomputed sequentially (the [`decluster_methods::SharedScan`]
//! absorption fan-in), expanded into a flat per-disk target list that
//! preserves the serial issue order, and walked per shard.
//! [`crate::faults::ReplicaPolicy::NearestFreeQueue`] with replicas
//! reads *cross-disk* queue depths at issue time, so it falls back to
//! the serial loop (as do the fault/degraded and closed-loop modes,
//! whose admission and retry feedback is global by construction).

use crate::events::{
    LoopScratch, ServeConfig, ServeEventKind, ServeReport, ServeSample, ServingEngine,
    SharedServeConfig, SharedServeReport,
};
use crate::faults::ReplicaPolicy;
use crate::multiuser::{assemble_report, LoopMeters};
use crate::stats::Quantiles;
use crate::DiskParams;
use decluster_grid::{BucketRegion, GridDirectory};
use decluster_obs::{Obs, TraceEvent};

/// Arrivals per pipeline epoch. Large enough that the per-epoch channel
/// hop is noise, small enough that the replay stays hot in cache and
/// the pipeline fills within a fraction of a million-request run.
pub(crate) const EPOCH_ARRIVALS: usize = 8192;

/// Folds one shard's partial completion times into the accumulator with
/// `f64::max`. Exact: every partial is a max-fold seeded from the same
/// issue time, and `max` over non-NaN values is associative, so folding
/// in shard order reproduces the serial single-pass fold bit-for-bit.
pub fn merge_epoch_max(acc: &mut [f64], part: &[f64]) {
    assert_eq!(acc.len(), part.len(), "epoch partials must line up");
    for (a, &p) in acc.iter_mut().zip(part) {
        *a = a.max(p);
    }
}

fn epoch_bounds(e: usize, n: usize) -> (usize, usize) {
    let lo = e * EPOCH_ARRIVALS;
    (lo, ((e + 1) * EPOCH_ARRIVALS).min(n))
}

/// Reusable buffers for sharded runs, owned by [`LoopScratch`] so a
/// warmed scratch serves sharded runs with zero heap allocations, same
/// as the serial loops.
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    /// `L × M` per-disk page counts, one row per distinct query region.
    table: Vec<u64>,
    /// Total pages per distinct query region.
    pages_of: Vec<u64>,
    /// Dense shape id per distinct region (shape = per-dim extents, the
    /// plan cache's match key).
    shape_of: Vec<u32>,
    /// Flattened extent vectors backing the shape ids.
    shape_keys: Vec<u64>,
    /// Merged per-arrival completion times.
    completions: Vec<f64>,
    /// Per-shard walk state; `states[..s]` are live for a run.
    states: Vec<ShardState>,
    /// LRU replay scratch for the shape-cache counters.
    lru: LruReplay,
    /// Shared path: precomputed windows.
    wins: Vec<WindowPlan>,
    /// Shared path: flat per-window replica-routed targets.
    win_targets: Vec<(u32, u64)>,
    /// Shared path: merged per-window completion times.
    win_completions: Vec<f64>,
}

/// One shard's private slice of the disk subsystem.
#[derive(Debug, Default)]
struct ShardState {
    /// Owned disk range `[lo, hi)`.
    lo: usize,
    hi: usize,
    /// Per-owned-disk FCFS free times (index `d - lo`).
    free: Vec<f64>,
    /// Per-owned-disk accumulated busy milliseconds.
    busy: Vec<f64>,
    /// Partial busy-disk counts on the sample grid, in grid order.
    busy_samples: Vec<u32>,
    /// Partial completion buffer for the inline (unpipelined) path.
    part: Vec<f64>,
    /// Shared path: per-window partial completions (full run length).
    win_part: Vec<f64>,
    /// Next sample-grid boundary this shard has not recorded yet.
    next_sample: f64,
    /// Metered batch counts, folded in shard order at the end.
    batches: u64,
    queued: u64,
}

fn setup_states(states: &mut Vec<ShardState>, s: usize, m: usize, sample_every: f64) {
    // Never truncate: keeping dead tails alive preserves their buffer
    // capacity across runs with varying shard counts (zero-alloc warm).
    while states.len() < s {
        states.push(ShardState::default());
    }
    for (i, st) in states[..s].iter_mut().enumerate() {
        st.lo = m * i / s;
        st.hi = m * (i + 1) / s;
        let width = st.hi - st.lo;
        st.free.clear();
        st.free.resize(width, 0.0);
        st.busy.clear();
        st.busy.resize(width, 0.0);
        st.busy_samples.clear();
        st.win_part.clear();
        st.next_sample = sample_every;
        st.batches = 0;
        st.queued = 0;
    }
}

/// Replays the serial loop's [`decluster_methods::PlanCache`] LRU policy
/// over a periodic shape-id stream to reproduce its hit/miss counters
/// without touching the real cache once per request.
#[derive(Debug, Default)]
struct LruReplay {
    slots: Vec<(u32, u64)>,
    prefix: Vec<u64>,
    canon: Vec<(u32, u32)>,
    prev_canon: Vec<(u32, u32)>,
    seen: Vec<bool>,
}

/// One probe of the replayed cache; mirrors `PlanCache::ensure` exactly:
/// tick first, insertion-order probe, push while below capacity, else
/// replace the first-minimal `last_used` slot in place.
fn lru_touch(slots: &mut Vec<(u32, u64)>, id: u32, tick: u64, capacity: usize) -> bool {
    if let Some(i) = slots.iter().position(|&(sid, _)| sid == id) {
        slots[i].1 = tick;
        return true;
    }
    if slots.len() < capacity {
        slots.push((id, tick));
    } else {
        let mut evict = 0;
        for i in 1..slots.len() {
            if slots[i].1 < slots[evict].1 {
                evict = i;
            }
        }
        slots[evict] = (id, tick);
    }
    false
}

/// Canonical cache state: each slot's id with its recency rank. Two
/// periods that start in states with equal canon behave identically
/// (hits depend on membership, evictions on recency order alone — ticks
/// are unique, so slot order never breaks an eviction tie).
fn canonical(slots: &[(u32, u64)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    for &(id, t) in slots {
        let rank = slots.iter().filter(|&&(_, u)| u < t).count() as u32;
        out.push((id, rank));
    }
}

impl LruReplay {
    /// `(hits, misses)` of the serial cache over the stream
    /// `shape_of[i % L]` for `i in 0..n`, starting from a cleared cache.
    fn stats(&mut self, shape_of: &[u32], n: u64, capacity: usize) -> (u64, u64) {
        if n == 0 || shape_of.is_empty() {
            return (0, 0);
        }
        let l = shape_of.len() as u64;
        let distinct = u64::from(shape_of.iter().copied().max().unwrap_or(0)) + 1;
        if distinct <= capacity as u64 {
            // Nothing ever evicts: misses = distinct shapes among the
            // first min(n, L) requests, everything after hits.
            let lim = n.min(l) as usize;
            self.seen.clear();
            self.seen.resize(distinct as usize, false);
            let mut misses = 0u64;
            for &id in &shape_of[..lim] {
                if !self.seen[id as usize] {
                    self.seen[id as usize] = true;
                    misses += 1;
                }
            }
            return (n - misses, misses);
        }
        // Evicting regime: replay period by period. The stream is
        // periodic, so once two consecutive periods start in the same
        // canonical state the per-period hit profile repeats forever.
        self.slots.clear();
        self.prev_canon.clear();
        let mut have_prev = false;
        let mut tick = 0u64;
        let mut hits = 0u64;
        let mut done = 0u64;
        while done < n {
            let span = (n - done).min(l) as usize;
            self.prefix.clear();
            let mut h = 0u64;
            for &id in &shape_of[..span] {
                tick += 1;
                if lru_touch(&mut self.slots, id, tick, capacity) {
                    h += 1;
                }
                self.prefix.push(h);
            }
            hits += h;
            done += span as u64;
            if (span as u64) < l || done >= n {
                break;
            }
            canonical(&self.slots, &mut self.canon);
            if have_prev && self.canon == self.prev_canon {
                let rem = n - done;
                hits += (rem / l) * h;
                let part = (rem % l) as usize;
                if part > 0 {
                    hits += self.prefix[part - 1];
                }
                break;
            }
            std::mem::swap(&mut self.canon, &mut self.prev_canon);
            have_prev = true;
        }
        (hits, n - hits)
    }
}

/// Replay-side running state of the sequential event loop.
struct Replay {
    sample_every: f64,
    next_sample: f64,
    makespan: f64,
    pages: u64,
    events: u64,
    completed: u64,
    next_arrival: usize,
}

impl Replay {
    fn new(sample_every: f64) -> Self {
        Replay {
            sample_every,
            next_sample: sample_every,
            makespan: 0.0,
            pages: 0,
            events: 0,
            completed: 0,
            next_arrival: 0,
        }
    }
}

/// Replays the serial serve loop over `arrivals[..stop_before]` with the
/// fan-out replaced by precomputed completions. With `drain` it also
/// runs the heap dry (the serial loop's termination condition). Pending
/// completions past the boundary stay queued for the next call, so the
/// concatenation of epoch calls executes the exact serial event
/// sequence. `busy_disks` is left 0 and patched after the shard walks
/// complete.
fn replay_epoch(
    rs: &mut Replay,
    ls: &mut LoopScratch,
    arrivals: &[f64],
    completions: &[f64],
    pages_of: &[u64],
    stop_before: usize,
    drain: bool,
) {
    let l = pages_of.len();
    loop {
        let more = rs.next_arrival < stop_before;
        if !more && (!drain || ls.events.is_empty()) {
            break;
        }
        let arrival_t = if more {
            arrivals[rs.next_arrival]
        } else {
            f64::INFINITY
        };
        let take_completion = ls.events.peek_time().is_some_and(|t| t <= arrival_t);
        let event_t = if take_completion {
            ls.events.peek_time().expect("non-empty heap")
        } else {
            arrival_t
        };
        while rs.next_sample <= event_t {
            let tail_ms = {
                ls.sorted.clear();
                ls.sorted.extend_from_slice(ls.ring.as_slice());
                Quantiles::of_unsorted(&mut ls.sorted)
            };
            ls.samples.push(ServeSample {
                at_ms: rs.next_sample,
                in_flight: ls.events.len(),
                busy_disks: 0,
                completed: rs.completed,
                tail_ms,
            });
            rs.next_sample += rs.sample_every;
        }
        if take_completion {
            let ev = ls.events.pop().expect("non-empty heap");
            ls.ring.push(ev.payload);
            rs.completed += 1;
        } else {
            let issue_at = arrival_t;
            let i = rs.next_arrival;
            rs.next_arrival += 1;
            rs.pages += pages_of[i % l];
            let completion = completions[i];
            ls.latencies.push(completion - issue_at);
            rs.makespan = rs.makespan.max(completion);
            ls.events.push(completion, completion - issue_at);
        }
        rs.events += 1;
    }
}

/// One shard's walk over an epoch of arrivals: fires its slice of the
/// sample grid, applies each arrival's batches to its owned disks (the
/// exact FCFS math of `ServingEngine::fan_out`, restricted to
/// `[lo, hi)`), and emits the shard-partial completion per arrival.
#[allow(clippy::too_many_arguments)]
fn walk_epoch(
    engine: &ServingEngine,
    params: &DiskParams,
    arrivals: &[f64],
    i0: usize,
    i1: usize,
    table: &[u64],
    l: usize,
    m: usize,
    sample_every: f64,
    record: bool,
    st: &mut ShardState,
    out: &mut Vec<f64>,
) {
    out.clear();
    let (lo, hi) = (st.lo, st.hi);
    for i in i0..i1 {
        let a = arrivals[i];
        // A sample boundary at or before this arrival sees the free
        // state after every strictly earlier arrival — exactly the
        // serial rule (samples fire before the event that crosses them,
        // and completions never change disk state).
        while st.next_sample <= a {
            let t = st.next_sample;
            st.busy_samples
                .push(st.free.iter().filter(|&&f| f > t).count() as u32);
            st.next_sample += sample_every;
        }
        let row = &table[(i % l) * m..(i % l) * m + m];
        let mut completion = a;
        for (j, &count) in row[lo..hi].iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = a.max(st.free[j]);
            let service = params.batch_ms_counts(count, engine.load_of(lo + j));
            st.free[j] = start + service;
            st.busy[j] += service;
            completion = completion.max(start + service);
            if record {
                st.batches += 1;
                if start > a {
                    st.queued += 1;
                }
            }
        }
        out.push(completion);
    }
}

impl ServingEngine {
    /// Sharded variant of the streaming open-loop serve: byte-identical
    /// output at any `(shards, threads)` combination, including the
    /// shape-cache counters, mid-run samples, and trace payloads.
    /// `shards <= 1` (or a single-disk engine) is the serial loop.
    ///
    /// # Panics
    /// As the serial loop: if `queries` is empty or `arrivals_ms` is not
    /// non-decreasing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_core_sharded(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        cfg: &ServeConfig,
        shards: usize,
        threads: usize,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> ServeReport {
        let m = self.loads.len();
        let s = shards.clamp(1, m.max(1));
        if s <= 1 {
            return self.serve_core(params, queries, arrivals_ms, cfg, obs, ls);
        }
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.ring.reset(cfg.window);
        ls.sorted.clear();
        let sample_every = if cfg.sample_every_ms > 0.0 {
            cfg.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut sh = std::mem::take(&mut ls.shard);
        let l = queries.len();

        // Stage A: one kernel call per distinct region, plus shape ids
        // for the LRU counter replay.
        sh.table.clear();
        sh.table.resize(l * m, 0);
        sh.pages_of.clear();
        sh.shape_of.clear();
        sh.shape_keys.clear();
        let dims = queries[0].dims();
        for (qi, region) in queries.iter().enumerate() {
            let pages = self.counts_into(region, &mut ls.plans, &mut ls.scratch, &mut ls.hist);
            sh.table[qi * m..(qi + 1) * m].copy_from_slice(&ls.hist);
            sh.pages_of.push(pages);
            let nshapes = sh.shape_keys.len() / dims;
            let mut id = nshapes as u32;
            'probe: for sid in 0..nshapes {
                for d in 0..dims {
                    if sh.shape_keys[sid * dims + d] != region.extent(d) {
                        continue 'probe;
                    }
                }
                id = sid as u32;
                break;
            }
            if id as usize == nshapes {
                for d in 0..dims {
                    sh.shape_keys.push(region.extent(d));
                }
            }
            sh.shape_of.push(id);
        }
        // Stage A probed the real cache L times; discard those counts
        // and reproduce the serial loop's n-request counters exactly.
        let _ = ls.plans.drain_stats();
        let (shape_hits, shape_misses) = if self.kernel_backed() {
            sh.lru.stats(&sh.shape_of, n as u64, ls.plans.capacity())
        } else {
            // The bucket-walk fallback never touches the plan cache.
            (0, 0)
        };

        setup_states(&mut sh.states, s, m, sample_every);
        sh.completions.clear();
        sh.completions.resize(n, 0.0);
        let mut rs = Replay::new(sample_every);
        let n_epochs = n.div_ceil(EPOCH_ARRIVALS);

        let (batches, queued_batches) = {
            let ShardScratch {
                table,
                pages_of,
                completions,
                states,
                ..
            } = &mut sh;
            let table: &[u64] = table;
            let pages_of: &[u64] = pages_of;
            let engine = self;
            if threads > 1 && n_epochs > 1 {
                // Pipelined: workers walk epoch e+1 while the main
                // thread merges and replays epoch e. Two primed buffers
                // per worker bound the run-ahead to one epoch.
                std::thread::scope(|scope| {
                    let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, usize, Vec<f64>)>();
                    let mut work = Vec::with_capacity(s);
                    for (si, st) in states[..s].iter_mut().enumerate() {
                        let (wtx, wrx) = std::sync::mpsc::channel::<Vec<f64>>();
                        let _ = wtx.send(Vec::with_capacity(EPOCH_ARRIVALS.min(n)));
                        let _ = wtx.send(Vec::with_capacity(EPOCH_ARRIVALS.min(n)));
                        work.push(wtx);
                        let dtx = done_tx.clone();
                        scope.spawn(move || {
                            for e in 0..n_epochs {
                                let Ok(mut buf) = wrx.recv() else { return };
                                let (i0, i1) = epoch_bounds(e, n);
                                walk_epoch(
                                    engine,
                                    params,
                                    arrivals_ms,
                                    i0,
                                    i1,
                                    table,
                                    l,
                                    m,
                                    sample_every,
                                    record,
                                    st,
                                    &mut buf,
                                );
                                if dtx.send((si, e, buf)).is_err() {
                                    return;
                                }
                            }
                        });
                    }
                    drop(done_tx);
                    let mut ready: Vec<Option<Vec<f64>>> = (0..s).map(|_| None).collect();
                    let mut stash: Vec<Option<Vec<f64>>> = (0..s).map(|_| None).collect();
                    for e in 0..n_epochs {
                        let (i0, i1) = epoch_bounds(e, n);
                        let mut have = 0usize;
                        for si in 0..s {
                            if let Some(buf) = stash[si].take() {
                                ready[si] = Some(buf);
                                have += 1;
                            }
                        }
                        while have < s {
                            let (si, ep, buf) = done_rx.recv().expect("shard worker exited early");
                            if ep == e {
                                ready[si] = Some(buf);
                                have += 1;
                            } else {
                                debug_assert_eq!(ep, e + 1, "run-ahead bound");
                                stash[si] = Some(buf);
                            }
                        }
                        for (si, slot) in ready.iter_mut().enumerate() {
                            let buf = slot.take().expect("epoch buffer");
                            if si == 0 {
                                completions[i0..i1].copy_from_slice(&buf);
                            } else {
                                merge_epoch_max(&mut completions[i0..i1], &buf);
                            }
                            let _ = work[si].send(buf);
                        }
                        replay_epoch(&mut rs, ls, arrivals_ms, completions, pages_of, i1, false);
                    }
                });
            } else {
                for e in 0..n_epochs {
                    let (i0, i1) = epoch_bounds(e, n);
                    for (si, st) in states[..s].iter_mut().enumerate() {
                        let mut part = std::mem::take(&mut st.part);
                        walk_epoch(
                            engine,
                            params,
                            arrivals_ms,
                            i0,
                            i1,
                            table,
                            l,
                            m,
                            sample_every,
                            record,
                            st,
                            &mut part,
                        );
                        if si == 0 {
                            completions[i0..i1].copy_from_slice(&part);
                        } else {
                            merge_epoch_max(&mut completions[i0..i1], &part);
                        }
                        st.part = part;
                    }
                    replay_epoch(&mut rs, ls, arrivals_ms, completions, pages_of, i1, false);
                }
            }
            replay_epoch(&mut rs, ls, arrivals_ms, completions, pages_of, n, true);

            // Fold shard state back into the scratch in shard (= disk)
            // order, and patch the sample busy counts: recorded partials
            // where the walk reached the boundary, final free state for
            // trailing samples past the last arrival.
            let mut batches = 0u64;
            let mut queued = 0u64;
            for st in &states[..s] {
                batches += st.batches;
                queued += st.queued;
                for (j, d) in (st.lo..st.hi).enumerate() {
                    ls.disk_free_at[d] = st.free[j];
                    ls.disk_busy_ms[d] = st.busy[j];
                }
            }
            for (j, smp) in ls.samples.iter_mut().enumerate() {
                let mut busy = 0usize;
                for st in &states[..s] {
                    busy += st.busy_samples.get(j).map_or_else(
                        || st.free.iter().filter(|&&f| f > smp.at_ms).count(),
                        |&c| c as usize,
                    );
                }
                smp.busy_disks = busy;
            }
            (batches, queued)
        };
        ls.shard = sh;

        if let Some(meters) = &meters {
            meters.record(n, batches, queued_batches, &ls.disk_busy_ms, &ls.latencies);
            obs.gauge_max("serve.peak_in_flight", ls.events.peak_len() as u64);
            obs.counter_add("serve.events", rs.events);
            obs.counter_add("serve.pages", rs.pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
        }
        let report = assemble_report(n, 0, rs.makespan, m, &ls.disk_busy_ms, &mut ls.latencies);
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("serve_done")
                    .with("requests", n)
                    .with("events", rs.events)
                    .with("peak_in_flight", ls.events.peak_len())
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        ServeReport {
            report,
            events: rs.events,
            peak_in_flight: ls.events.peak_len(),
            pages: rs.pages,
            samples: ls.samples.len(),
        }
    }
}

/// One precomputed batch window of the shared-scan path: membership is
/// the maximal run of arrivals strictly inside `open + w`, identical to
/// the event-driven rule (an arrival exactly at the flush time starts
/// the next window, because the flush event pops first on a tie).
#[derive(Clone, Copy, Debug, Default)]
struct WindowPlan {
    flush_t: f64,
    /// Member arrival-index range `[m_lo, m_hi)`.
    m_lo: usize,
    m_hi: usize,
    /// Members' own pages before deduplication.
    own: u64,
    /// Deduplicated pages actually fetched.
    fresh: u64,
    /// Range into [`ShardScratch::win_targets`].
    t_lo: usize,
    t_hi: usize,
}

/// One shard's walk over the precomputed windows: serves the targets
/// landing on its owned disks in flat-list order (which preserves the
/// serial `(disk asc, copy asc)` issue order per disk) and emits the
/// shard-partial completion per window.
fn walk_windows(
    engine: &ServingEngine,
    params: &DiskParams,
    wins: &[WindowPlan],
    targets: &[(u32, u64)],
    sample_every: f64,
    record: bool,
    st: &mut ShardState,
) {
    st.win_part.clear();
    for win in wins {
        while st.next_sample <= win.flush_t {
            let t = st.next_sample;
            st.busy_samples
                .push(st.free.iter().filter(|&&f| f > t).count() as u32);
            st.next_sample += sample_every;
        }
        let issue_at = win.flush_t;
        let mut completion = issue_at;
        for &(dt, count) in &targets[win.t_lo..win.t_hi] {
            let d = dt as usize;
            if d < st.lo || d >= st.hi {
                continue;
            }
            let j = d - st.lo;
            let start = issue_at.max(st.free[j]);
            let service = params.batch_ms_counts(count, engine.load_of(d));
            st.free[j] = start + service;
            st.busy[j] += service;
            completion = completion.max(start + service);
            if record {
                st.batches += 1;
                if start > issue_at {
                    st.queued += 1;
                }
            }
        }
        st.win_part.push(completion);
    }
}

/// Counters the shared replay accumulates; folded into the report by
/// the caller.
#[derive(Debug, Default)]
struct SharedTotals {
    makespan: f64,
    pages: u64,
    pages_saved: u64,
    windows: u64,
    merged_queries: u64,
    events: u64,
    in_flight_peak: usize,
}

/// Replays the serial shared-scan event loop with the merge and fan-out
/// replaced by the precomputed windows: the typed event heap sees the
/// identical push sequence (flush scheduling on window-opening arrivals,
/// completion fan-back per member at flush), so event order, sample
/// `in_flight`/`completed`, the latency ring, and latencies are
/// byte-identical. `busy_disks` is patched after the walks.
fn replay_shared(
    ls: &mut LoopScratch,
    arrivals: &[f64],
    w: f64,
    sample_every: f64,
    wins: &[WindowPlan],
    win_completions: &[f64],
) -> SharedTotals {
    let n = arrivals.len();
    let mut t = SharedTotals::default();
    let mut next_sample = sample_every;
    let mut completed = 0u64;
    let mut in_flight = 0usize;
    let mut next_arrival = 0usize;
    let mut wi = 0usize;
    while next_arrival < n || !ls.fault_events.is_empty() {
        let arrival_t = if next_arrival < n {
            arrivals[next_arrival]
        } else {
            f64::INFINITY
        };
        let take_event = ls
            .fault_events
            .peek_time()
            .is_some_and(|et| et <= arrival_t);
        let event_t = if take_event {
            ls.fault_events.peek_time().expect("non-empty heap")
        } else {
            arrival_t
        };
        while next_sample <= event_t {
            let tail_ms = {
                ls.sorted.clear();
                ls.sorted.extend_from_slice(ls.ring.as_slice());
                Quantiles::of_unsorted(&mut ls.sorted)
            };
            ls.samples.push(ServeSample {
                at_ms: next_sample,
                in_flight,
                busy_disks: 0,
                completed,
                tail_ms,
            });
            next_sample += sample_every;
        }
        if take_event {
            let ev = ls.fault_events.pop().expect("non-empty heap");
            match ev.payload {
                ServeEventKind::Completion { latency_ms } => {
                    ls.ring.push(latency_ms);
                    completed += 1;
                    in_flight -= 1;
                }
                ServeEventKind::Flush => {
                    let win = &wins[wi];
                    let members = ls.batch.len();
                    debug_assert_eq!(
                        members,
                        win.m_hi - win.m_lo,
                        "precomputed window membership must match the event loop"
                    );
                    t.windows += 1;
                    if members > 1 {
                        t.merged_queries += members as u64;
                    }
                    t.pages += win.fresh;
                    t.pages_saved += win.own - win.fresh;
                    let completion = win_completions[wi];
                    t.makespan = t.makespan.max(completion);
                    for i in 0..ls.batch.len() {
                        let (_, arrived) = ls.batch[i];
                        let latency = completion - arrived;
                        ls.latencies.push(latency);
                        ls.fault_events.push(
                            completion,
                            ServeEventKind::Completion {
                                latency_ms: latency,
                            },
                        );
                    }
                    ls.batch.clear();
                    wi += 1;
                }
                ServeEventKind::Transition { .. } | ServeEventKind::Retry { .. } => {
                    unreachable!("the shared-scan loop schedules no fault events")
                }
            }
        } else {
            if ls.batch.is_empty() {
                ls.fault_events.push(arrival_t + w, ServeEventKind::Flush);
            }
            ls.batch.push((next_arrival as u64, arrival_t));
            in_flight += 1;
            t.in_flight_peak = t.in_flight_peak.max(in_flight);
            next_arrival += 1;
        }
        t.events += 1;
    }
    t
}

impl ServingEngine {
    /// Sharded variant of the shared-scan serve: byte-identical output
    /// at any `(shards, threads)`. Window membership, the
    /// [`decluster_methods::SharedScan`] absorption fan-in, and replica
    /// routing are precomputed sequentially; the per-disk FCFS service
    /// is walked per shard. [`ReplicaPolicy::NearestFreeQueue`] with
    /// replicas routes on cross-disk queue depths at issue time, so it
    /// (and `shards <= 1`) delegates to the serial loop.
    ///
    /// # Panics
    /// As the serial shared loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_shared_core_sharded(
        &self,
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        cfg: &SharedServeConfig,
        shards: usize,
        threads: usize,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> SharedServeReport {
        if cfg.batch_window_ms == 0.0 {
            let serve = self.serve_core_sharded(
                params,
                queries,
                arrivals_ms,
                &cfg.serve,
                shards,
                threads,
                obs,
                ls,
            );
            return SharedServeReport {
                serve,
                windows: 0,
                merged_queries: 0,
                pages_saved: 0,
            };
        }
        let m = self.loads.len();
        let s = shards.clamp(1, m.max(1));
        if s <= 1 || (cfg.replicas > 0 && cfg.policy == ReplicaPolicy::NearestFreeQueue) {
            return self.serve_shared_core(dir, params, queries, arrivals_ms, cfg, obs, ls);
        }
        assert!(
            cfg.batch_window_ms.is_finite() && cfg.batch_window_ms > 0.0,
            "batch window must be finite and non-negative"
        );
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|win| win[0] <= win[1]),
            "arrival times must be non-decreasing"
        );
        assert_eq!(
            dir.num_disks() as usize,
            m,
            "directory disk count differs from the engine's"
        );
        assert!(
            (cfg.replicas as usize) < m,
            "replica count {} >= M = {m}",
            cfg.replicas
        );
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.begin_shared(m);
        ls.ring.reset(cfg.serve.window);
        ls.sorted.clear();
        let w = cfg.batch_window_ms;
        let sample_every = if cfg.serve.sample_every_ms > 0.0 {
            cfg.serve.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut sh = std::mem::take(&mut ls.shard);
        let lq = queries.len();
        let copies = u64::from(cfg.replicas) + 1;

        // Window precompute: membership, absorption fan-in, and the
        // flat replica-routed target list in serial issue order.
        sh.wins.clear();
        sh.win_targets.clear();
        let mut i = 0usize;
        while i < n {
            let flush_t = arrivals_ms[i] + w;
            let m_lo = i;
            while i < n && arrivals_ms[i] < flush_t {
                i += 1;
            }
            ls.shared.begin(m);
            let mut own = 0u64;
            for qi in m_lo..i {
                own += ls.shared.absorb(dir, &queries[qi % lq]).own_pages;
            }
            let fresh = ls.shared.merged().total_pages() as u64;
            let route_key = m_lo as u64;
            let t_lo = sh.win_targets.len();
            for d in 0..m {
                let count = ls.shared.merged().disk_pages(d).len() as u64;
                if count == 0 {
                    continue;
                }
                if cfg.replicas == 0 {
                    sh.win_targets.push((d as u32, count));
                    continue;
                }
                match cfg.policy {
                    ReplicaPolicy::Spread => {
                        for j in 0..=cfg.replicas {
                            let share = count / copies + u64::from(u64::from(j) < count % copies);
                            if share == 0 {
                                continue;
                            }
                            sh.win_targets.push((((d + j as usize) % m) as u32, share));
                        }
                    }
                    ReplicaPolicy::PrimaryOnly | ReplicaPolicy::FailoverOnly => {
                        sh.win_targets.push((d as u32, count));
                    }
                    ReplicaPolicy::RoundRobin => {
                        sh.win_targets
                            .push((((d + (route_key % copies) as usize) % m) as u32, count));
                    }
                    ReplicaPolicy::NearestFreeQueue => {
                        unreachable!("queue-depth routing falls back to the serial loop")
                    }
                }
            }
            sh.wins.push(WindowPlan {
                flush_t,
                m_lo,
                m_hi: i,
                own,
                fresh,
                t_lo,
                t_hi: sh.win_targets.len(),
            });
        }

        setup_states(&mut sh.states, s, m, sample_every);
        let totals = {
            let ShardScratch {
                states,
                wins,
                win_targets,
                win_completions,
                ..
            } = &mut sh;
            let wins: &[WindowPlan] = wins;
            let targets: &[(u32, u64)] = win_targets;
            let engine = self;
            if threads > 1 && s > 1 && !wins.is_empty() {
                std::thread::scope(|scope| {
                    for st in states[..s].iter_mut() {
                        scope.spawn(move || {
                            walk_windows(engine, params, wins, targets, sample_every, record, st);
                        });
                    }
                });
            } else {
                for st in states[..s].iter_mut() {
                    walk_windows(engine, params, wins, targets, sample_every, record, st);
                }
            }
            win_completions.clear();
            win_completions.extend_from_slice(&states[0].win_part);
            for st in &states[1..s] {
                merge_epoch_max(win_completions, &st.win_part);
            }
            let totals = replay_shared(ls, arrivals_ms, w, sample_every, wins, win_completions);
            let mut batches = 0u64;
            let mut queued = 0u64;
            for st in &states[..s] {
                batches += st.batches;
                queued += st.queued;
                for (j, d) in (st.lo..st.hi).enumerate() {
                    ls.disk_free_at[d] = st.free[j];
                    ls.disk_busy_ms[d] = st.busy[j];
                }
            }
            for (j, smp) in ls.samples.iter_mut().enumerate() {
                let mut busy = 0usize;
                for st in &states[..s] {
                    busy += st.busy_samples.get(j).map_or_else(
                        || st.free.iter().filter(|&&f| f > smp.at_ms).count(),
                        |&c| c as usize,
                    );
                }
                smp.busy_disks = busy;
            }
            (totals, batches, queued)
        };
        let (totals, batches, queued_batches) = totals;
        ls.shard = sh;

        if let Some(meters) = &meters {
            meters.record(n, batches, queued_batches, &ls.disk_busy_ms, &ls.latencies);
            obs.gauge_max("serve.peak_in_flight", totals.in_flight_peak as u64);
            obs.counter_add("serve.events", totals.events);
            obs.counter_add("serve.pages", totals.pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
            obs.counter_add("share.windows", totals.windows);
            obs.counter_add("share.merged_queries", totals.merged_queries);
            obs.counter_add("share.pages_saved", totals.pages_saved);
        }
        let report = assemble_report(
            n,
            0,
            totals.makespan,
            m,
            &ls.disk_busy_ms,
            &mut ls.latencies,
        );
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("shared_serve_done")
                    .with("requests", n)
                    .with("events", totals.events)
                    .with("windows", totals.windows)
                    .with("merged_queries", totals.merged_queries)
                    .with("pages_saved", totals.pages_saved)
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        SharedServeReport {
            serve: ServeReport {
                report,
                events: totals.events,
                peak_in_flight: totals.in_flight_peak,
                pages: totals.pages,
                samples: ls.samples.len(),
            },
            windows: totals.windows,
            merged_queries: totals.merged_queries,
            pages_saved: totals.pages_saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{BucketCoord, GridSpace};
    use decluster_methods::{DeclusteringMethod, Hcam};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force LRU replay: simulate every one of the n steps.
    fn lru_brute(shape_of: &[u32], n: u64, capacity: usize) -> (u64, u64) {
        let mut slots: Vec<(u32, u64)> = Vec::new();
        let mut tick = 0u64;
        let mut hits = 0u64;
        for i in 0..n {
            tick += 1;
            let id = shape_of[(i % shape_of.len() as u64) as usize];
            if lru_touch(&mut slots, id, tick, capacity) {
                hits += 1;
            }
        }
        (hits, n - hits)
    }

    #[test]
    fn lru_cycle_detection_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..200 {
            let l = rng.gen_range(1..40usize);
            let ids: Vec<u32> = (0..l).map(|_| rng.gen_range(0..12u32)).collect();
            // Densify so `distinct = max + 1` holds.
            let mut dense = ids.clone();
            let mut map = std::collections::BTreeMap::new();
            for id in &mut dense {
                let next = map.len() as u32;
                *id = *map.entry(*id).or_insert(next);
            }
            let n = rng.gen_range(0..5000u64);
            let capacity = rng.gen_range(1..10usize);
            let mut replay = LruReplay::default();
            let fast = replay.stats(&dense, n, capacity);
            let brute = if n == 0 {
                (0, 0)
            } else {
                lru_brute(&dense, n, capacity)
            };
            assert_eq!(fast, brute, "case {case}: L={l} n={n} cap={capacity}");
        }
    }

    #[test]
    fn epoch_bounds_tile_the_run() {
        let n = 3 * EPOCH_ARRIVALS + 17;
        let mut covered = 0;
        for e in 0..n.div_ceil(EPOCH_ARRIVALS) {
            let (lo, hi) = epoch_bounds(e, n);
            assert_eq!(lo, covered);
            assert!(hi > lo && hi <= n);
            covered = hi;
        }
        assert_eq!(covered, n);
    }

    fn serving_fixture() -> (GridDirectory, Vec<BucketRegion>, Vec<f64>) {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let dir = GridDirectory::build(space.clone(), 8, |b| hcam.disk_of(b.as_slice()));
        let mut rng = StdRng::seed_from_u64(11);
        let mut queries = Vec::new();
        for _ in 0..23 {
            let r = rng.gen_range(0..12u32);
            let c = rng.gen_range(0..12u32);
            let h = rng.gen_range(1..5u32);
            let v = rng.gen_range(1..5u32);
            queries.push(
                BucketRegion::new(
                    &space,
                    BucketCoord::from([r, c]),
                    BucketCoord::from([r + h - 1, c + v - 1]),
                )
                .unwrap(),
            );
        }
        let arrivals = crate::multiuser::poisson_arrivals(&mut rng, 700, 80.0);
        (dir, queries, arrivals)
    }

    fn assert_reports_identical(a: &ServeReport, b: &ServeReport, tag: &str) {
        assert_eq!(
            a.report.makespan_ms.to_bits(),
            b.report.makespan_ms.to_bits(),
            "{tag}: makespan"
        );
        assert_eq!(
            a.report.latency.mean.to_bits(),
            b.report.latency.mean.to_bits(),
            "{tag}: mean latency"
        );
        assert_eq!(
            a.report.utilization.to_bits(),
            b.report.utilization.to_bits(),
            "{tag}: utilization"
        );
        assert_eq!(a.report.tail, b.report.tail, "{tag}: tails");
        assert_eq!(a.events, b.events, "{tag}: events");
        assert_eq!(a.peak_in_flight, b.peak_in_flight, "{tag}: peak");
        assert_eq!(a.pages, b.pages, "{tag}: pages");
        assert_eq!(a.samples, b.samples, "{tag}: sample count");
    }

    fn assert_samples_identical(a: &[ServeSample], b: &[ServeSample], tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: sample count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.at_ms.to_bits(), y.at_ms.to_bits(), "{tag}: at_ms");
            assert_eq!(x.in_flight, y.in_flight, "{tag}: in_flight");
            assert_eq!(x.busy_disks, y.busy_disks, "{tag}: busy_disks");
            assert_eq!(x.completed, y.completed, "{tag}: completed");
            assert_eq!(x.tail_ms, y.tail_ms, "{tag}: tail");
        }
    }

    #[test]
    fn sharded_serve_is_bit_identical_to_serial() {
        let (dir, queries, arrivals) = serving_fixture();
        let engine = crate::MultiUserEngine::new(&dir);
        let params = DiskParams::default();
        let cfg = ServeConfig {
            sample_every_ms: 12.0,
            ..ServeConfig::default()
        };
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let serial = engine
            .serving()
            .serve_core(&params, &queries, &arrivals, &cfg, &obs, &mut ls);
        let serial_samples = ls.samples().to_vec();
        for shards in [2usize, 3, 7, 8] {
            for threads in [1usize, 4] {
                let mut ls2 = LoopScratch::new();
                // Twice per scratch: cold and warmed must both match.
                for round in 0..2 {
                    let tag = format!("S={shards} T={threads} round={round}");
                    let sharded = engine.serving().serve_core_sharded(
                        &params, &queries, &arrivals, &cfg, shards, threads, &obs, &mut ls2,
                    );
                    assert_reports_identical(&serial, &sharded, &tag);
                    assert_samples_identical(&serial_samples, ls2.samples(), &tag);
                }
            }
        }
    }

    #[test]
    fn sharded_serve_reproduces_shape_cache_counters() {
        use decluster_obs::{MetricsRecorder, Recorder};
        use std::sync::Arc;
        let (dir, queries, arrivals) = serving_fixture();
        let engine = crate::MultiUserEngine::new(&dir);
        let params = DiskParams::default();
        let cfg = ServeConfig::default();
        let serial_rec = Arc::new(MetricsRecorder::new());
        let mut ls = LoopScratch::new();
        engine.serving().serve_core(
            &params,
            &queries,
            &arrivals,
            &cfg,
            &Obs::new(serial_rec.clone()),
            &mut ls,
        );
        let sharded_rec = Arc::new(MetricsRecorder::new());
        engine.serving().serve_core_sharded(
            &params,
            &queries,
            &arrivals,
            &cfg,
            4,
            1,
            &Obs::new(sharded_rec.clone()),
            &mut ls,
        );
        let a = serial_rec.snapshot();
        let b = sharded_rec.snapshot();
        for key in ["kernel.shape_cache_hits", "kernel.shape_cache_misses"] {
            assert_eq!(a.counter(key), b.counter(key), "{key}");
        }
    }

    #[test]
    fn sharded_shared_serve_is_bit_identical_to_serial() {
        let (dir, queries, arrivals) = serving_fixture();
        let engine = crate::MultiUserEngine::new(&dir);
        let params = DiskParams::default();
        let obs = Obs::disabled();
        for (replicas, policy) in [
            (0u32, ReplicaPolicy::PrimaryOnly),
            (1, ReplicaPolicy::Spread),
            (2, ReplicaPolicy::RoundRobin),
            (1, ReplicaPolicy::NearestFreeQueue), // serial fallback path
        ] {
            let cfg = SharedServeConfig {
                serve: ServeConfig {
                    sample_every_ms: 9.0,
                    ..ServeConfig::default()
                },
                batch_window_ms: 6.0,
                replicas,
                policy,
            };
            let mut ls = LoopScratch::new();
            let serial = engine
                .serving()
                .serve_shared_core(&dir, &params, &queries, &arrivals, &cfg, &obs, &mut ls);
            let serial_samples = ls.samples().to_vec();
            for shards in [2usize, 5, 8] {
                for threads in [1usize, 3] {
                    let tag = format!("r={replicas} {policy} S={shards} T={threads}");
                    let mut ls2 = LoopScratch::new();
                    let sharded = engine.serving().serve_shared_core_sharded(
                        &dir, &params, &queries, &arrivals, &cfg, shards, threads, &obs, &mut ls2,
                    );
                    assert_reports_identical(&serial.serve, &sharded.serve, &tag);
                    assert_eq!(serial.windows, sharded.windows, "{tag}: windows");
                    assert_eq!(
                        serial.merged_queries, sharded.merged_queries,
                        "{tag}: merged"
                    );
                    assert_eq!(serial.pages_saved, sharded.pages_saved, "{tag}: saved");
                    assert_samples_identical(&serial_samples, ls2.samples(), &tag);
                }
            }
        }
    }
}
