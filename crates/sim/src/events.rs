//! The event-driven serving core of the multi-user simulator.
//!
//! The closed-loop, open-loop, and degraded loops in [`crate::multiuser`]
//! are all drivers over the same two primitives defined here:
//!
//! * [`EventHeap`] — an indexed binary min-heap over logical time with
//!   deterministic tie-breaking: events at equal times pop in insertion
//!   order (a monotone sequence number is the secondary key), so a run's
//!   event order is a pure function of its inputs.
//! * [`ServingEngine`] — the per-directory service core: the cached
//!   [`PlanCounts`] kernel, the static load vector, and the FCFS fan-out
//!   step that turns one query into per-disk batch service. The streaming
//!   serve (reached through [`crate::ServeSpec`]) consumes an
//!   arrival-event stream and emits completion events through the heap,
//!   sampling
//!   mid-run state (in-flight, queue depth, windowed p50/p95/p99) at
//!   configurable logical-time intervals.
//!
//! # Memory bounds
//!
//! A serving run's state is the event heap (one entry per in-flight
//! query), a fixed-capacity ring of recently completed latencies, and the
//! flat latency vector — never per-client state. A million-client
//! open-loop run therefore peaks at `O(in-flight + clients × 8 bytes)`,
//! and the warmed loop performs zero heap allocations per event
//! (`tests/alloc_counting.rs` proves it with a counting allocator).
//!
//! # Sharded arrival streams
//!
//! [`sharded_arrivals`] generates large arrival vectors in fixed-size
//! chunks on the deterministic executor, each chunk from its own derived
//! RNG stream, merged by a sequential prefix-sum reduction — byte-identical
//! output at any thread count.

use crate::faults::{DiskState, FaultEvent, FaultSchedule, ReplicaPolicy, RetryPolicy};
use crate::multiuser::{assemble_report, LoopMeters, MultiUserReport};
use crate::stats::Quantiles;
use crate::workload::InterArrival;
use crate::{DiskParams, Result, SimError};
use decluster_grid::{BucketRegion, GridDirectory};
use decluster_methods::{DiskCounts, PlanCache, PlanCounts, Scratch};
use decluster_obs::{Obs, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One scheduled event: its logical time, the sequence number assigned at
/// push (the deterministic tie-breaker), and a payload.
#[derive(Clone, Copy, Debug)]
pub struct Event<T> {
    /// Logical time of the event, ms.
    pub time: f64,
    /// Monotone insertion index; equal-time events pop in this order.
    pub seq: u64,
    /// Caller data carried by the event.
    pub payload: T,
}

impl<T> Event<T> {
    #[inline]
    fn key(&self) -> (f64, u64) {
        (self.time, self.seq)
    }

    #[inline]
    fn before(&self, other: &Self) -> bool {
        let (ta, sa) = self.key();
        let (tb, sb) = other.key();
        match ta.total_cmp(&tb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => sa < sb,
        }
    }
}

/// A binary min-heap of [`Event`]s keyed by `(time, seq)`.
///
/// Times are compared with [`f64::total_cmp`], so ordering is total even
/// for pathological inputs; ties break by sequence number (insertion
/// order), which makes pop order deterministic under duplicate
/// timestamps — the property the proptests below pin.
///
/// The heap is a flat `Vec` that retains capacity across
/// [`EventHeap::clear`], so warmed serving loops push and pop without
/// touching the allocator. It also tracks its high-water mark
/// ([`EventHeap::peak_len`]) for the bounded-memory accounting of large
/// open-loop runs.
#[derive(Clone, Debug)]
pub struct EventHeap<T> {
    entries: Vec<Event<T>>,
    next_seq: u64,
    peak: usize,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        EventHeap {
            entries: Vec::new(),
            next_seq: 0,
            peak: 0,
        }
    }
}

impl<T> EventHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of events ever scheduled at once since the last
    /// [`EventHeap::clear`].
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Removes all events and resets the sequence counter and peak,
    /// keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
        self.peak = 0;
    }

    /// Schedules `payload` at `time` and returns the assigned sequence
    /// number. Later pushes at the same time pop later.
    pub fn push(&mut self, time: f64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Event { time, seq, payload });
        self.sift_up(self.entries.len() - 1);
        self.peak = self.peak.max(self.entries.len());
        seq
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.entries.first().map(|e| e.time)
    }

    /// Removes and returns the earliest event (ties by sequence number).
    pub fn pop(&mut self) -> Option<Event<T>> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let out = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].before(&self.entries[parent]) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.entries[l].before(&self.entries[smallest]) {
                smallest = l;
            }
            if r < n && self.entries[r].before(&self.entries[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }
}

/// A fixed-capacity ring of the most recently completed latencies: the
/// windowed sample behind mid-run p50/p95/p99 snapshots. Overwrites the
/// oldest entry once full; capacity is fixed at
/// [`LatencyRing::reset`] and never grows, so million-client runs keep a
/// bounded tail window.
#[derive(Clone, Debug, Default)]
pub(crate) struct LatencyRing {
    buf: Vec<f64>,
    cap: usize,
    head: usize,
}

impl LatencyRing {
    /// Empties the ring and fixes its capacity (at least 1), keeping any
    /// existing allocation.
    pub(crate) fn reset(&mut self, cap: usize) {
        self.cap = cap.max(1);
        self.buf.clear();
        self.buf.reserve(self.cap);
        self.head = 0;
    }

    pub(crate) fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// The window contents, in no particular order (quantile extraction
    /// sorts its own copy).
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.buf
    }
}

/// One mid-run state snapshot of a serving run, taken at a logical-time
/// sampling boundary (see [`ServeConfig::sample_every_ms`]). Everything
/// here derives from simulated quantities, so samples are bit-identical
/// across thread counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSample {
    /// Logical sample time, ms.
    pub at_ms: f64,
    /// Queries issued but not yet completed (the event heap's size).
    pub in_flight: usize,
    /// Disks whose FCFS queue extends past the sample time.
    pub busy_disks: usize,
    /// Queries completed so far.
    pub completed: u64,
    /// Windowed latency tails over the last [`ServeConfig::window`]
    /// completions (zeros before the first completion).
    pub tail_ms: Quantiles,
}

/// Configuration of a streaming serve run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Logical-time interval between mid-run samples, ms; `0` (the
    /// default) disables sampling.
    pub sample_every_ms: f64,
    /// Capacity of the windowed latency ring behind each sample's tails.
    pub window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sample_every_ms: 0.0,
            window: 1024,
        }
    }
}

/// Aggregate results of one streaming serve run. Mid-run samples stay in
/// the caller's [`LoopScratch`] (see [`LoopScratch::samples`]) so the
/// warmed loop allocates nothing; this report carries only their count.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The open-loop aggregate report (`clients` is 0: arrivals are an
    /// open stream, not a closed set).
    pub report: MultiUserReport,
    /// Events processed (one arrival plus one completion per query).
    pub events: u64,
    /// High-water mark of in-flight queries (the event heap's peak).
    pub peak_in_flight: usize,
    /// Total pages fetched across all disks.
    pub pages: u64,
    /// Mid-run samples recorded into the scratch.
    pub samples: usize,
}

/// Payload of one fault-injected serve event: a request completion, a
/// disk health transition crossing a schedule boundary, or a scheduled
/// retry of a request that found no live copy at issue time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ServeEventKind {
    /// A request finished; its latency feeds the sampling ring.
    Completion {
        /// Arrival-to-completion latency, ms.
        latency_ms: f64,
    },
    /// A disk crossed a fault-schedule boundary; its health state is
    /// recomputed from the schedule at the event's time.
    Transition {
        /// The disk whose state changes.
        disk: u32,
    },
    /// A request with no live copy retries after jittered backoff.
    Retry {
        /// Arrival index of the request.
        query: u64,
        /// Attempt number of the *re-issue* (1 = first retry).
        attempt: u32,
    },
    /// A shared-scan batch window closes: every query queued since the
    /// window opened is merged into one deduplicated schedule and issued.
    Flush,
}

/// Configuration of a fault-injected streaming serve run, extending
/// [`ServeConfig`] with admission control and retry scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegradedServeConfig {
    /// Sampling and windowing, exactly as in the fault-free path.
    pub serve: ServeConfig,
    /// Admission-control bound on in-flight requests: arrivals past the
    /// bound are *shed* (a typed outcome, excluded from latency stats)
    /// instead of growing the queue without bound. `0` disables
    /// shedding.
    pub max_in_flight: usize,
    /// Timeout and retry budget. `timeout_units × transfer_ms` is the
    /// per-hop failover penalty under [`ReplicaPolicy::FailoverOnly`]
    /// and the base of the exponential retry backoff.
    pub retry: RetryPolicy,
    /// Seed of the deterministic retry jitter (see [`retry_jitter01`]).
    pub seed: u64,
}

/// Aggregate results of one fault-injected serve run: the fault-free
/// shaped aggregates plus the availability accounting. Every arrival is
/// exactly one of served, shed, or lost.
#[derive(Clone, Debug)]
pub struct DegradedServeReport {
    /// The fault-free-shaped aggregates; with a healthy schedule, one
    /// replica, [`ReplicaPolicy::PrimaryOnly`], and shedding disabled
    /// this is bit-identical to the plain streaming serve on the same
    /// inputs.
    pub serve: ServeReport,
    /// Requests that completed.
    pub served: u64,
    /// Requests refused at admission (in-flight bound reached).
    pub shed: u64,
    /// Requests that exhausted their retries without finding a live
    /// copy.
    pub lost: u64,
    /// Retry events scheduled (jittered exponential backoff).
    pub retries: u64,
    /// Timed-out batch attempts paid while failing over along the chain
    /// (only [`ReplicaPolicy::FailoverOnly`] discovers failures by
    /// timeout).
    pub timeouts: u64,
    /// Batches served by a non-primary copy.
    pub failovers: u64,
    /// Disk health transitions processed from the fault schedule.
    pub transitions: u64,
}

impl DegradedServeReport {
    /// Fraction of arrivals served, in `[0, 1]` (1.0 for an empty run).
    pub fn availability(&self) -> f64 {
        let offered = self.served + self.shed + self.lost;
        if offered == 0 {
            1.0
        } else {
            self.served as f64 / offered as f64
        }
    }
}

/// Configuration of a shared-scan streaming serve run: the plain
/// sampling/window knobs plus the batch window and the replica fan-out of
/// merged schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharedServeConfig {
    /// Sampling and windowing, exactly as in the unshared path.
    pub serve: ServeConfig,
    /// Length of the merge window, ms of logical time: the first arrival
    /// of a window schedules a flush `batch_window_ms` later, and every
    /// arrival before the flush joins the window's merged schedule. `0`
    /// disables sharing — the run is bit-identical to the unshared path.
    pub batch_window_ms: f64,
    /// Chain replicas per bucket (`r`); merged reads may be served by any
    /// of the `1 + r` copies, per `policy`.
    pub replicas: u32,
    /// How merged per-disk batches pick among copies.
    /// [`ReplicaPolicy::Spread`] splits each batch's pages across all
    /// copies; the whole-batch policies route batches like the degraded
    /// path routes queries.
    pub policy: ReplicaPolicy,
}

impl Default for SharedServeConfig {
    fn default() -> Self {
        SharedServeConfig {
            serve: ServeConfig::default(),
            batch_window_ms: 0.0,
            replicas: 0,
            policy: ReplicaPolicy::Spread,
        }
    }
}

/// Aggregate results of one shared-scan serve run: the plain-shaped
/// aggregates plus the sharing accounting. `pages` in the embedded report
/// counts *deduplicated* reads actually issued; `pages_saved` is the
/// duplicate I/O that merging eliminated.
#[derive(Clone, Debug)]
pub struct SharedServeReport {
    /// The plain-shaped aggregates; with a zero batch window this is
    /// bit-identical to the unshared path on the same inputs.
    pub serve: ServeReport,
    /// Batch windows flushed (0 with sharing disabled).
    pub windows: u64,
    /// Queries that shared their window with at least one other query.
    pub merged_queries: u64,
    /// Duplicate pages eliminated by merging (sum over windows of member
    /// plan sizes minus the merged schedule's size).
    pub pages_saved: u64,
}

/// Deterministic retry jitter in `[0, 1)`: a splitmix64 finalizer over
/// `(seed, query, attempt)`. A pure function of its inputs, so retry
/// schedules are byte-identical at any thread count.
pub(crate) fn retry_jitter01(seed: u64, query: u64, attempt: u32) -> f64 {
    decluster_methods::splitmix64_unit(
        seed ^ query.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 32),
    )
}

/// Reusable per-run buffers for every serving loop: the kernel
/// [`Scratch`] (accumulators), the cross-query [`PlanCache`] of
/// compiled corner plans (amortizes plan compilation across repeated
/// query shapes within a run), the per-query count histogram, the FCFS
/// queue state, the latency vector, the event heap, and the sampling
/// window. One instance per worker thread makes every
/// loop allocation-free per event once the buffers have grown to the
/// working-set size. The degraded serve loop adds its own typed event
/// heap, the per-disk health vector, and the per-query replica targets.
#[derive(Debug, Default)]
pub struct LoopScratch {
    pub(crate) scratch: Scratch,
    pub(crate) plans: PlanCache,
    pub(crate) hist: Vec<u64>,
    pub(crate) disk_free_at: Vec<f64>,
    pub(crate) disk_busy_ms: Vec<f64>,
    pub(crate) latencies: Vec<f64>,
    pub(crate) events: EventHeap<f64>,
    pub(crate) ring: LatencyRing,
    pub(crate) sorted: Vec<f64>,
    pub(crate) samples: Vec<ServeSample>,
    pub(crate) fault_events: EventHeap<ServeEventKind>,
    pub(crate) disk_state: Vec<DiskState>,
    pub(crate) targets: Vec<u32>,
    pub(crate) batch: Vec<(u64, f64)>,
    pub(crate) shared: decluster_methods::SharedScan,
    /// Buffers for sharded parallel runs (see [`crate::shard`]); empty
    /// and untouched in serial runs.
    pub(crate) shard: crate::shard::ShardScratch,
}

impl LoopScratch {
    /// Fresh (empty) buffers; they grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mid-run samples of the most recent serve run (empty for the
    /// closed/open/degraded loops and for runs with sampling disabled).
    pub fn samples(&self) -> &[ServeSample] {
        &self.samples
    }

    pub(crate) fn begin(&mut self, m: usize, queries: usize) {
        // Cleared per run (capacity retained) so shape-cache hit/miss
        // counts are a pure function of the run's query sequence —
        // byte-identical at any thread count and cold vs warm.
        self.plans.clear();
        self.disk_free_at.clear();
        self.disk_free_at.resize(m, 0.0);
        self.disk_busy_ms.clear();
        self.disk_busy_ms.resize(m, 0.0);
        self.latencies.clear();
        self.latencies.reserve(queries);
        self.events.clear();
        self.samples.clear();
    }

    /// Extra setup for the shared-scan serve loop: clears the typed event
    /// heap, the batch membership list, and the merge accumulator.
    pub(crate) fn begin_shared(&mut self, m: usize) {
        self.fault_events.clear();
        self.batch.clear();
        self.shared.begin(m);
    }

    /// Extra setup for the degraded serve loop: clears the typed event
    /// heap, snapshots every disk's health at time 0, and sizes the
    /// replica-target buffer.
    pub(crate) fn begin_degraded(&mut self, m: usize, schedule: &FaultSchedule) {
        self.fault_events.clear();
        self.disk_state.clear();
        self.disk_state
            .extend((0..m as u32).map(|d| schedule.state_at(d, 0)));
        self.targets.clear();
        self.targets.resize(m, 0);
    }
}

/// A directory's serving core: the cached [`PlanCounts`] kernel plus the
/// static load vector, with the FCFS fan-out step every loop shares.
/// Build once per directory (the kernel build walks the grid once); the
/// engine is immutable and `Sync`, so parallel sweeps share one engine
/// per method across worker threads, each worker carrying its own
/// [`LoopScratch`].
#[derive(Clone, Debug)]
pub struct ServingEngine {
    pub(crate) counts: PlanCounts,
    pub(crate) loads: Vec<u64>,
}

impl ServingEngine {
    /// Builds the count kernel for `dir` and snapshots its load vector.
    pub fn new(dir: &GridDirectory) -> Self {
        ServingEngine {
            counts: PlanCounts::build(dir),
            loads: dir.load_vector(),
        }
    }

    /// Warm-start constructor: adopts a previously compiled kernel
    /// (e.g. loaded from a persist-v3 [`decluster_methods::KernelCache`]
    /// image) instead of building one, so the engine reaches its first
    /// scored query with zero build-phase work. `None` behaves like
    /// [`ServingEngine::new`] minus the kernel (bucket-walk fallback).
    ///
    /// # Panics
    /// Panics if the kernel's disk count disagrees with the directory's.
    pub fn with_kernel(dir: &GridDirectory, kernel: Option<DiskCounts>) -> Self {
        ServingEngine {
            counts: PlanCounts::with_kernel(dir, kernel),
            loads: dir.load_vector(),
        }
    }

    /// The engine's count kernel (for exporting into a
    /// [`decluster_methods::KernelCache`]).
    pub fn counts(&self) -> &PlanCounts {
        &self.counts
    }

    /// Disks (`M`).
    pub fn num_disks(&self) -> usize {
        self.loads.len()
    }

    /// Whether queries are served by the prefix-sum kernel (false means
    /// the grid was too large for a table and the engine walks buckets).
    pub fn kernel_backed(&self) -> bool {
        self.counts.kernel_backed()
    }

    /// Per-disk page counts of `region` into `out` via the cached
    /// kernel, consulting the cross-query corner-plan cache first;
    /// returns the total pages touched.
    pub(crate) fn counts_into(
        &self,
        region: &BucketRegion,
        plans: &mut PlanCache,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> u64 {
        self.counts.counts_into_cached(region, plans, scratch, out)
    }

    /// Static load (pages stored) of disk `d`.
    pub(crate) fn load_of(&self, d: usize) -> u64 {
        self.loads[d]
    }

    /// The FCFS fan-out step shared by every loop: issues one query's
    /// per-disk batches (from the count histogram in `hist`) against the
    /// disk queues and returns its completion time. `batches` /
    /// `queued_batches` accumulate only when `record` is set, exactly as
    /// the metered loops always did.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fan_out(
        &self,
        params: &DiskParams,
        issue_at: f64,
        hist: &[u64],
        disk_free_at: &mut [f64],
        disk_busy_ms: &mut [f64],
        record: bool,
        batches: &mut u64,
        queued_batches: &mut u64,
    ) -> f64 {
        let mut completion = issue_at;
        for (d, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = issue_at.max(disk_free_at[d]);
            let service = params.batch_ms_counts(count, self.loads[d]);
            disk_free_at[d] = start + service;
            disk_busy_ms[d] += service;
            completion = completion.max(start + service);
            if record {
                *batches += 1;
                if start > issue_at {
                    *queued_batches += 1;
                }
            }
        }
        completion
    }

    /// Streaming open-loop serve: one request per entry of `arrivals_ms`
    /// (non-decreasing logical times), each replaying the next query of
    /// `queries` round-robin. Arrival events interleave with completion
    /// events through the heap (completions at a tied time process
    /// first), mid-run state is sampled every
    /// [`ServeConfig::sample_every_ms`], and the aggregate report carries
    /// exact p50/p95/p99 over all latencies.
    ///
    /// The per-request service math is identical to the open loop's, so
    /// for `arrivals_ms.len() == queries.len()` the aggregate report is
    /// bit-identical to [`crate::MultiUserEngine::open_loop_obs`] on the
    /// same inputs. Reach it through [`crate::ServeSpec::open`].
    ///
    /// # Panics
    /// Panics if `queries` is empty or `arrivals_ms` is not
    /// non-decreasing.
    pub(crate) fn serve_core(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        cfg: &ServeConfig,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> ServeReport {
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let record = obs.enabled();
        let m = self.loads.len();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.ring.reset(cfg.window);
        ls.sorted.clear();
        let sample_every = if cfg.sample_every_ms > 0.0 {
            cfg.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut next_sample = sample_every;
        let mut makespan: f64 = 0.0;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;
        let mut pages = 0u64;
        let mut events = 0u64;
        let mut completed = 0u64;
        let mut next_arrival = 0usize;

        while next_arrival < n || !ls.events.is_empty() {
            let arrival_t = if next_arrival < n {
                arrivals_ms[next_arrival]
            } else {
                f64::INFINITY
            };
            let take_completion = ls.events.peek_time().is_some_and(|t| t <= arrival_t);
            let event_t = if take_completion {
                ls.events.peek_time().expect("non-empty heap")
            } else {
                arrival_t
            };
            // Samples fire strictly before any event at or past their
            // boundary, so each snapshot reflects the state just before
            // its logical time.
            while next_sample <= event_t {
                let tail_ms = {
                    ls.sorted.clear();
                    ls.sorted.extend_from_slice(ls.ring.as_slice());
                    Quantiles::of_unsorted(&mut ls.sorted)
                };
                ls.samples.push(ServeSample {
                    at_ms: next_sample,
                    in_flight: ls.events.len(),
                    busy_disks: ls.disk_free_at.iter().filter(|&&f| f > next_sample).count(),
                    completed,
                    tail_ms,
                });
                next_sample += sample_every;
            }
            if take_completion {
                let ev = ls.events.pop().expect("non-empty heap");
                ls.ring.push(ev.payload);
                completed += 1;
            } else {
                let issue_at = arrival_t;
                let region = &queries[next_arrival % queries.len()];
                next_arrival += 1;
                pages += self.counts.counts_into_cached(
                    region,
                    &mut ls.plans,
                    &mut ls.scratch,
                    &mut ls.hist,
                );
                let completion = self.fan_out(
                    params,
                    issue_at,
                    &ls.hist,
                    &mut ls.disk_free_at,
                    &mut ls.disk_busy_ms,
                    record,
                    &mut batches,
                    &mut queued_batches,
                );
                ls.latencies.push(completion - issue_at);
                makespan = makespan.max(completion);
                ls.events.push(completion, completion - issue_at);
            }
            events += 1;
        }

        // Drained unconditionally so stats from an obs-disabled run can
        // never leak into a later metered run sharing this scratch.
        let (shape_hits, shape_misses) = ls.plans.drain_stats();
        if let Some(meters) = &meters {
            meters.record(n, batches, queued_batches, &ls.disk_busy_ms, &ls.latencies);
            obs.gauge_max("serve.peak_in_flight", ls.events.peak_len() as u64);
            obs.counter_add("serve.events", events);
            obs.counter_add("serve.pages", pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
        }
        let report = assemble_report(n, 0, makespan, m, &ls.disk_busy_ms, &mut ls.latencies);
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("serve_done")
                    .with("requests", n)
                    .with("events", events)
                    .with("peak_in_flight", ls.events.peak_len())
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        ServeReport {
            report,
            events,
            peak_in_flight: ls.events.peak_len(),
            pages,
            samples: ls.samples.len(),
        }
    }

    /// Streaming serve under a mid-run fault schedule with r-way chained
    /// replication: [`FaultSchedule`] boundaries become heap events
    /// (fail-stop, recovery, gray-slow), each batch reads from the copy
    /// `policy` selects among the live ones, requests with no reachable
    /// live copy retry after jittered exponential backoff (bounded by
    /// the retry policy), and arrivals past `cfg.max_in_flight` are shed
    /// at admission. The schedule's logical clock is milliseconds — the
    /// same clock the arrival stream uses.
    ///
    /// Deterministic: disk health is a pure function of simulated time,
    /// retry jitter a pure function of `(seed, query, attempt)`, and all
    /// events flow through one deterministically tie-broken heap, so the
    /// report is bit-identical at any thread count. With a healthy
    /// schedule, `replicas = 1`, [`ReplicaPolicy::PrimaryOnly`], and
    /// shedding disabled, the embedded [`ServeReport`] is bit-identical
    /// to the plain streaming serve on the same inputs.
    ///
    /// Batch service uses the serving disk's health at issue time (a
    /// batch started before a boundary is not interrupted), and a
    /// query's latency is measured from its *arrival*, so retried
    /// requests carry their backoff delay in the tail.
    ///
    /// # Errors
    /// [`SimError::ScheduleMismatch`] when the schedule's disk count
    /// differs from the engine's.
    ///
    /// # Panics
    /// As the plain streaming serve; also if `replicas >= M` (CLI and
    /// constructors validate upstream). Reach it through
    /// [`crate::ServeSpec::faults`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_degraded_core(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        schedule: &FaultSchedule,
        replicas: u32,
        policy: ReplicaPolicy,
        cfg: &DegradedServeConfig,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> Result<DegradedServeReport> {
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let m = self.loads.len();
        if schedule.num_disks() as usize != m {
            return Err(SimError::ScheduleMismatch {
                schedule_disks: schedule.num_disks(),
                experiment_disks: m as u32,
            });
        }
        assert!(
            (replicas as usize) < m,
            "replica count {replicas} >= M = {m}"
        );
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.begin_degraded(m, schedule);
        ls.ring.reset(cfg.serve.window);
        ls.sorted.clear();
        // Every schedule boundary becomes a transition event; on pop the
        // disk's state is recomputed from the schedule, which composes
        // overlapping windows correctly.
        for event in schedule.events() {
            match *event {
                FaultEvent::FailStop { disk, at } => {
                    ls.fault_events
                        .push(at as f64, ServeEventKind::Transition { disk });
                }
                FaultEvent::Transient { disk, from, until }
                | FaultEvent::Slow {
                    disk, from, until, ..
                } => {
                    ls.fault_events
                        .push(from as f64, ServeEventKind::Transition { disk });
                    ls.fault_events
                        .push(until as f64, ServeEventKind::Transition { disk });
                }
            }
        }
        let timeout_ms = cfg.retry.timeout_units as f64 * params.transfer_ms;
        let sample_every = if cfg.serve.sample_every_ms > 0.0 {
            cfg.serve.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut next_sample = sample_every;
        let mut c = DegradedCounters::default();
        let mut events = 0u64;
        let mut completed = 0u64;
        let mut shed = 0u64;
        let mut transitions = 0u64;
        let mut next_arrival = 0usize;

        while next_arrival < n || !ls.fault_events.is_empty() {
            let arrival_t = if next_arrival < n {
                arrivals_ms[next_arrival]
            } else {
                f64::INFINITY
            };
            let take_event = ls.fault_events.peek_time().is_some_and(|t| t <= arrival_t);
            let event_t = if take_event {
                ls.fault_events.peek_time().expect("non-empty heap")
            } else {
                arrival_t
            };
            while next_sample <= event_t {
                let tail_ms = {
                    ls.sorted.clear();
                    ls.sorted.extend_from_slice(ls.ring.as_slice());
                    Quantiles::of_unsorted(&mut ls.sorted)
                };
                ls.samples.push(ServeSample {
                    at_ms: next_sample,
                    in_flight: c.in_flight,
                    busy_disks: ls.disk_free_at.iter().filter(|&&f| f > next_sample).count(),
                    completed,
                    tail_ms,
                });
                next_sample += sample_every;
            }
            if take_event {
                let ev = ls.fault_events.pop().expect("non-empty heap");
                match ev.payload {
                    ServeEventKind::Completion { latency_ms } => {
                        ls.ring.push(latency_ms);
                        completed += 1;
                        c.in_flight -= 1;
                    }
                    ServeEventKind::Transition { disk } => {
                        ls.disk_state[disk as usize] = schedule.state_at(disk, ev.time as u64);
                        transitions += 1;
                    }
                    ServeEventKind::Retry { query, attempt } => {
                        self.issue_degraded(
                            params,
                            queries,
                            arrivals_ms,
                            replicas,
                            policy,
                            timeout_ms,
                            &cfg.retry,
                            cfg.seed,
                            query,
                            ev.time,
                            attempt,
                            record,
                            ls,
                            &mut c,
                        );
                    }
                    ServeEventKind::Flush => {
                        unreachable!("batch flushes belong to the shared-scan loop")
                    }
                }
            } else {
                let i = next_arrival as u64;
                next_arrival += 1;
                if cfg.max_in_flight > 0 && c.in_flight >= cfg.max_in_flight {
                    shed += 1;
                } else {
                    c.in_flight += 1;
                    c.peak_in_flight = c.peak_in_flight.max(c.in_flight);
                    self.issue_degraded(
                        params,
                        queries,
                        arrivals_ms,
                        replicas,
                        policy,
                        timeout_ms,
                        &cfg.retry,
                        cfg.seed,
                        i,
                        arrival_t,
                        0,
                        record,
                        ls,
                        &mut c,
                    );
                }
            }
            events += 1;
        }

        let (shape_hits, shape_misses) = ls.plans.drain_stats();
        if let Some(meters) = &meters {
            meters.record(
                n,
                c.batches,
                c.queued_batches,
                &ls.disk_busy_ms,
                &ls.latencies,
            );
            obs.gauge_max("serve.peak_in_flight", c.peak_in_flight as u64);
            obs.counter_add("serve.events", events);
            obs.counter_add("serve.pages", c.pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
            obs.counter_add("serve.retries", c.retries);
            obs.counter_add("serve.timeouts", c.timeouts);
            obs.counter_add("serve.sheds", shed);
            obs.counter_add("serve.failovers", c.failovers);
            obs.counter_add("serve.lost", c.lost);
            obs.counter_add("faults.transitions", transitions);
        }
        let report = assemble_report(n, 0, c.makespan, m, &ls.disk_busy_ms, &mut ls.latencies);
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("degraded_serve_done")
                    .with("requests", n)
                    .with("events", events)
                    .with("served", completed)
                    .with("shed", shed)
                    .with("lost", c.lost)
                    .with("retries", c.retries)
                    .with("failovers", c.failovers)
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        Ok(DegradedServeReport {
            serve: ServeReport {
                report,
                events,
                peak_in_flight: c.peak_in_flight,
                pages: c.pages,
                samples: ls.samples.len(),
            },
            served: completed,
            shed,
            lost: c.lost,
            retries: c.retries,
            timeouts: c.timeouts,
            failovers: c.failovers,
            transitions,
        })
    }

    /// One issue attempt of the degraded serve loop: picks a serving
    /// copy per touched disk, fans out if every batch has one, and
    /// otherwise schedules a retry (or declares the request lost).
    #[allow(clippy::too_many_arguments)]
    fn issue_degraded(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        replicas: u32,
        policy: ReplicaPolicy,
        timeout_ms: f64,
        retry: &RetryPolicy,
        seed: u64,
        query: u64,
        now: f64,
        attempt: u32,
        record: bool,
        ls: &mut LoopScratch,
        c: &mut DegradedCounters,
    ) {
        let m = self.loads.len();
        let region = &queries[(query as usize) % queries.len()];
        let page_count =
            self.counts
                .counts_into_cached(region, &mut ls.plans, &mut ls.scratch, &mut ls.hist);
        // Pass 1: pick a serving copy for every touched disk, without
        // touching queue state. Any batch with no live copy makes the
        // whole request unserviceable right now.
        let mut serviceable = true;
        for (d, &count) in ls.hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            match select_copy(d, query, replicas, policy, &ls.disk_state, &ls.disk_free_at) {
                Some(s) => ls.targets[d] = s,
                None => {
                    serviceable = false;
                    break;
                }
            }
        }
        if !serviceable {
            if attempt < retry.max_retries {
                // Exponential backoff with deterministic jitter: the
                // request waits out (hopefully) a transient window.
                let backoff = timeout_ms
                    * (1u64 << attempt.min(52)) as f64
                    * (1.0 + retry_jitter01(seed, query, attempt));
                ls.fault_events.push(
                    now + backoff,
                    ServeEventKind::Retry {
                        query,
                        attempt: attempt + 1,
                    },
                );
                c.retries += 1;
            } else {
                c.lost += 1;
                c.in_flight -= 1;
            }
            return;
        }
        // Pass 2: fan out to the chosen copies, FCFS per disk.
        c.pages += page_count;
        let mut completion = now;
        for (d, &count) in ls.hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let s = ls.targets[d] as usize;
            let hops = (s + m - d) % m;
            let base = if policy == ReplicaPolicy::FailoverOnly && hops > 0 {
                // Failures are discovered by timing out once per dead
                // copy skipped along the chain.
                c.timeouts += hops as u64;
                now + timeout_ms * hops as f64
            } else {
                now
            };
            let start = base.max(ls.disk_free_at[s]);
            let service =
                params.batch_ms_counts(count, self.loads[s]) * ls.disk_state[s].latency_factor();
            ls.disk_free_at[s] = start + service;
            ls.disk_busy_ms[s] += service;
            completion = completion.max(start + service);
            if hops > 0 {
                c.failovers += 1;
            }
            if record {
                c.batches += 1;
                if start > now {
                    c.queued_batches += 1;
                }
            }
        }
        let latency = completion - arrivals_ms[query as usize];
        ls.latencies.push(latency);
        c.makespan = c.makespan.max(completion);
        ls.fault_events.push(
            completion,
            ServeEventKind::Completion {
                latency_ms: latency,
            },
        );
    }

    /// Streaming shared-scan serve: arrivals are grouped into batch
    /// windows of `cfg.batch_window_ms` of logical time. The first
    /// arrival of a window opens it and schedules a [`ServeEventKind::Flush`]
    /// one window later; every arrival before the flush joins the window.
    /// At flush time the members' I/O plans are merged into one
    /// deduplicated per-disk schedule (a [`decluster_methods::SharedScan`]
    /// over `dir`'s flat [`decluster_grid::IoPlan`] arena), issued once
    /// across the `1 + r` replica copies per `cfg.policy`, and the
    /// completion fans back to every member — each latency measured from
    /// its own arrival, so queueing inside the window shows up in the
    /// tail.
    ///
    /// With `batch_window_ms == 0` the run delegates to the unshared
    /// loop and is bit-identical to it. The shared path is healthy-mode
    /// only; `ServeSpec` rejects sharing combined with a fault schedule.
    ///
    /// # Panics
    /// As the unshared loop; also if `dir`'s disk count differs from the
    /// engine's, if `cfg.replicas >= M`, or if the window is negative or
    /// non-finite (all validated upstream by `ServeSpec`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_shared_core(
        &self,
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        cfg: &SharedServeConfig,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> SharedServeReport {
        if cfg.batch_window_ms == 0.0 {
            let serve = self.serve_core(params, queries, arrivals_ms, &cfg.serve, obs, ls);
            return SharedServeReport {
                serve,
                windows: 0,
                merged_queries: 0,
                pages_saved: 0,
            };
        }
        assert!(
            cfg.batch_window_ms.is_finite() && cfg.batch_window_ms > 0.0,
            "batch window must be finite and non-negative"
        );
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let m = self.loads.len();
        assert_eq!(
            dir.num_disks() as usize,
            m,
            "directory disk count differs from the engine's"
        );
        assert!(
            (cfg.replicas as usize) < m,
            "replica count {} >= M = {m}",
            cfg.replicas
        );
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.begin_shared(m);
        ls.ring.reset(cfg.serve.window);
        ls.sorted.clear();
        let w = cfg.batch_window_ms;
        let sample_every = if cfg.serve.sample_every_ms > 0.0 {
            cfg.serve.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut next_sample = sample_every;
        let mut makespan: f64 = 0.0;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;
        let mut pages = 0u64;
        let mut pages_saved = 0u64;
        let mut windows = 0u64;
        let mut merged_queries = 0u64;
        let mut events = 0u64;
        let mut completed = 0u64;
        let mut in_flight = 0usize;
        let mut peak_in_flight = 0usize;
        let mut next_arrival = 0usize;

        while next_arrival < n || !ls.fault_events.is_empty() {
            let arrival_t = if next_arrival < n {
                arrivals_ms[next_arrival]
            } else {
                f64::INFINITY
            };
            let take_event = ls.fault_events.peek_time().is_some_and(|t| t <= arrival_t);
            let event_t = if take_event {
                ls.fault_events.peek_time().expect("non-empty heap")
            } else {
                arrival_t
            };
            while next_sample <= event_t {
                let tail_ms = {
                    ls.sorted.clear();
                    ls.sorted.extend_from_slice(ls.ring.as_slice());
                    Quantiles::of_unsorted(&mut ls.sorted)
                };
                ls.samples.push(ServeSample {
                    at_ms: next_sample,
                    in_flight,
                    busy_disks: ls.disk_free_at.iter().filter(|&&f| f > next_sample).count(),
                    completed,
                    tail_ms,
                });
                next_sample += sample_every;
            }
            if take_event {
                let ev = ls.fault_events.pop().expect("non-empty heap");
                match ev.payload {
                    ServeEventKind::Completion { latency_ms } => {
                        ls.ring.push(latency_ms);
                        completed += 1;
                        in_flight -= 1;
                    }
                    ServeEventKind::Flush => {
                        let members = ls.batch.len();
                        debug_assert!(members > 0, "a flush always closes a non-empty window");
                        windows += 1;
                        if members > 1 {
                            merged_queries += members as u64;
                        }
                        // Merge the members' plans into one deduplicated
                        // schedule, attributing saved pages.
                        let mut own = 0u64;
                        {
                            let (shared, batch) = (&mut ls.shared, &ls.batch);
                            shared.begin(m);
                            for &(qi, _) in batch {
                                let att = shared.absorb(dir, &queries[qi as usize % queries.len()]);
                                own += att.own_pages;
                            }
                        }
                        let fresh = ls.shared.merged().total_pages() as u64;
                        pages += fresh;
                        pages_saved += own - fresh;
                        let route_key = ls.batch.first().map_or(0, |&(q, _)| q);
                        let completion = self.fan_out_merged(
                            params,
                            ev.time,
                            ls.shared.merged(),
                            cfg.replicas,
                            cfg.policy,
                            route_key,
                            &mut ls.disk_free_at,
                            &mut ls.disk_busy_ms,
                            record,
                            &mut batches,
                            &mut queued_batches,
                        );
                        makespan = makespan.max(completion);
                        // Fan the shared completion back to every member.
                        for i in 0..ls.batch.len() {
                            let (_, arrived) = ls.batch[i];
                            let latency = completion - arrived;
                            ls.latencies.push(latency);
                            ls.fault_events.push(
                                completion,
                                ServeEventKind::Completion {
                                    latency_ms: latency,
                                },
                            );
                        }
                        ls.batch.clear();
                    }
                    ServeEventKind::Transition { .. } | ServeEventKind::Retry { .. } => {
                        unreachable!("the shared-scan loop schedules no fault events")
                    }
                }
            } else {
                // An arrival joins the open window, or opens a new one
                // (scheduling its flush one window later).
                if ls.batch.is_empty() {
                    ls.fault_events.push(arrival_t + w, ServeEventKind::Flush);
                }
                ls.batch.push((next_arrival as u64, arrival_t));
                in_flight += 1;
                peak_in_flight = peak_in_flight.max(in_flight);
                next_arrival += 1;
            }
            events += 1;
        }

        if let Some(meters) = &meters {
            meters.record(n, batches, queued_batches, &ls.disk_busy_ms, &ls.latencies);
            obs.gauge_max("serve.peak_in_flight", peak_in_flight as u64);
            obs.counter_add("serve.events", events);
            obs.counter_add("serve.pages", pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
            obs.counter_add("share.windows", windows);
            obs.counter_add("share.merged_queries", merged_queries);
            obs.counter_add("share.pages_saved", pages_saved);
        }
        let report = assemble_report(n, 0, makespan, m, &ls.disk_busy_ms, &mut ls.latencies);
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("shared_serve_done")
                    .with("requests", n)
                    .with("events", events)
                    .with("windows", windows)
                    .with("merged_queries", merged_queries)
                    .with("pages_saved", pages_saved)
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        SharedServeReport {
            serve: ServeReport {
                report,
                events,
                peak_in_flight,
                pages,
                samples: ls.samples.len(),
            },
            windows,
            merged_queries,
            pages_saved,
        }
    }

    /// Issues one window's merged schedule across the replica chain: for
    /// each disk with merged pages, [`ReplicaPolicy::Spread`] splits the
    /// batch across all `1 + r` copies (page-granular balancing) while
    /// the whole-batch policies route it to one copy — primary for
    /// `PrimaryOnly`/`FailoverOnly` (the shared path is healthy-mode, so
    /// the primary is always live), the shortest queue for
    /// `NearestFreeQueue`, and a `route_key`-keyed rotation for
    /// `RoundRobin`. Returns the window's completion time.
    #[allow(clippy::too_many_arguments)]
    fn fan_out_merged(
        &self,
        params: &DiskParams,
        issue_at: f64,
        merged: &decluster_grid::IoPlan,
        replicas: u32,
        policy: ReplicaPolicy,
        route_key: u64,
        disk_free_at: &mut [f64],
        disk_busy_ms: &mut [f64],
        record: bool,
        batches: &mut u64,
        queued_batches: &mut u64,
    ) -> f64 {
        // One copy's FCFS batch service, shared by every policy arm.
        #[allow(clippy::too_many_arguments)]
        fn serve_on(
            params: &DiskParams,
            loads: &[u64],
            s: usize,
            count: u64,
            issue_at: f64,
            disk_free_at: &mut [f64],
            disk_busy_ms: &mut [f64],
            completion: &mut f64,
            record: bool,
            batches: &mut u64,
            queued_batches: &mut u64,
        ) {
            let start = issue_at.max(disk_free_at[s]);
            let service = params.batch_ms_counts(count, loads[s]);
            disk_free_at[s] = start + service;
            disk_busy_ms[s] += service;
            *completion = completion.max(start + service);
            if record {
                *batches += 1;
                if start > issue_at {
                    *queued_batches += 1;
                }
            }
        }
        let m = self.loads.len();
        let copies = u64::from(replicas) + 1;
        let mut completion = issue_at;
        for d in 0..m {
            let count = merged.disk_pages(d).len() as u64;
            if count == 0 {
                continue;
            }
            macro_rules! serve {
                ($s:expr, $count:expr) => {
                    serve_on(
                        params,
                        &self.loads,
                        $s,
                        $count,
                        issue_at,
                        disk_free_at,
                        disk_busy_ms,
                        &mut completion,
                        record,
                        batches,
                        queued_batches,
                    )
                };
            }
            if replicas == 0 {
                serve!(d, count);
                continue;
            }
            match policy {
                ReplicaPolicy::Spread => {
                    for j in 0..=replicas {
                        let share = count / copies + u64::from(u64::from(j) < count % copies);
                        if share == 0 {
                            continue;
                        }
                        serve!((d + j as usize) % m, share);
                    }
                }
                ReplicaPolicy::PrimaryOnly | ReplicaPolicy::FailoverOnly => {
                    serve!(d, count);
                }
                ReplicaPolicy::NearestFreeQueue => {
                    // First-minimal scan: ties go to the earliest chain
                    // position, matching `select_copy`'s tie-breaking.
                    let mut best = d;
                    for j in 1..=replicas as usize {
                        let s = (d + j) % m;
                        if disk_free_at[s] < disk_free_at[best] {
                            best = s;
                        }
                    }
                    serve!(best, count);
                }
                ReplicaPolicy::RoundRobin => {
                    serve!((d + (route_key % copies) as usize) % m, count);
                }
            }
        }
        completion
    }
}

/// Mutable counter block of one degraded serve run, threaded through
/// [`ServingEngine::issue_degraded`] so the issue step stays a single
/// borrow.
#[derive(Debug, Default)]
struct DegradedCounters {
    batches: u64,
    queued_batches: u64,
    pages: u64,
    retries: u64,
    timeouts: u64,
    failovers: u64,
    lost: u64,
    in_flight: usize,
    peak_in_flight: usize,
    makespan: f64,
}

/// Picks the chain copy that serves a batch whose primary is `d`, per
/// the replica-selection policy, or `None` when the policy cannot reach
/// a live copy. Pure function of the health/queue snapshots, resolved in
/// disk order by the caller — deterministic.
fn select_copy(
    d: usize,
    query: u64,
    replicas: u32,
    policy: ReplicaPolicy,
    disk_state: &[DiskState],
    disk_free_at: &[f64],
) -> Option<u32> {
    let m = disk_state.len();
    let copy = |j: u32| (d + j as usize) % m;
    let live = |j: &u32| disk_state[copy(*j)].is_live();
    if replicas == 0 {
        return live(&0).then_some(d as u32);
    }
    let j = match policy {
        ReplicaPolicy::PrimaryOnly => live(&0).then_some(0),
        ReplicaPolicy::FailoverOnly => (0..=replicas).find(live),
        ReplicaPolicy::NearestFreeQueue => (0..=replicas).filter(live).min_by(|&a, &b| {
            disk_free_at[copy(a)]
                .total_cmp(&disk_free_at[copy(b)])
                .then(a.cmp(&b))
        }),
        ReplicaPolicy::RoundRobin => {
            let mut live_copies = (0..=replicas).filter(live);
            let n_live = live_copies.clone().count() as u64;
            live_copies.nth((query % n_live.max(1)) as usize)
        }
        // At whole-batch granularity spreading degenerates to shortest
        // queue; the page-granular split lives in the shared-scan fan-out.
        ReplicaPolicy::Spread => (0..=replicas).filter(live).min_by(|&a, &b| {
            disk_free_at[copy(a)]
                .total_cmp(&disk_free_at[copy(b)])
                .then(a.cmp(&b))
        }),
    };
    j.map(|j| copy(j) as u32)
}

/// The fixed chunk length of [`sharded_arrivals`]. Chunk boundaries are
/// part of the deterministic contract: they depend only on `n`, never on
/// the thread count.
const ARRIVAL_CHUNK: usize = 1 << 16;

/// Arrival times for `n` requests drawn from `dist`, generated in
/// fixed-size chunks on the deterministic executor and merged by a
/// sequential prefix-sum reduction: chunk `c` draws its gaps from an RNG
/// seeded by `(seed, c)`, and chunk offsets accumulate left to right. The
/// output is byte-identical at any `threads`, which is what lets
/// million-client arrival streams be built in parallel without touching
/// the determinism contract.
pub fn sharded_arrivals(
    seed: u64,
    n: usize,
    dist: InterArrival,
    threads: usize,
    obs: &Obs,
) -> Vec<f64> {
    let chunks = n.div_ceil(ARRIVAL_CHUNK);
    let parts: Vec<Vec<f64>> = crate::exec::run_indexed(threads, chunks, obs, |c| {
        let mut rng = StdRng::seed_from_u64(crate::exec::derive_point_seed(seed, c as u64));
        let len = ARRIVAL_CHUNK.min(n - c * ARRIVAL_CHUNK);
        let mut t = 0.0;
        (0..len)
            .map(|_| {
                t += dist.sample_gap_ms(&mut rng);
                t
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut offset = 0.0;
    for part in parts {
        let last = part.last().copied().unwrap_or(0.0);
        out.extend(part.iter().map(|&t| offset + t));
        offset += last;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiuser::poisson_arrivals;
    use crate::workload::random_region;
    use decluster_grid::GridSpace;
    use decluster_methods::{DeclusteringMethod, Hcam};
    use proptest::prelude::*;

    #[test]
    fn heap_pops_in_time_order() {
        let mut h = EventHeap::new();
        for (t, p) in [(5.0, 'a'), (1.0, 'b'), (3.0, 'c'), (2.0, 'd'), (4.0, 'e')] {
            h.push(t, p);
        }
        let order: Vec<char> = std::iter::from_fn(|| h.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!['b', 'd', 'c', 'e', 'a']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = EventHeap::new();
        for i in 0..10 {
            h.push(7.0, i);
        }
        h.push(1.0, 99);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![99, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn clear_resets_sequence_and_peak_but_keeps_capacity() {
        let mut h = EventHeap::new();
        for i in 0..100 {
            h.push(i as f64, ());
        }
        assert_eq!(h.peak_len(), 100);
        let cap = h.entries.capacity();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.peak_len(), 0);
        assert_eq!(h.entries.capacity(), cap);
        assert_eq!(h.push(3.0, ()), 0, "sequence restarts after clear");
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(2.0, ());
        h.push(1.0, ());
        assert_eq!(h.peek_time(), Some(1.0));
        assert_eq!(h.pop().unwrap().time, 1.0);
        assert_eq!(h.peek_time(), Some(2.0));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut h = EventHeap::new();
        h.push(1.0, ());
        h.push(2.0, ());
        h.pop();
        h.push(3.0, ());
        h.pop();
        h.pop();
        assert_eq!(h.peak_len(), 2);
        assert!(h.is_empty());
    }

    proptest! {
        /// Pop order equals a stable sort of the pushed events by time:
        /// the deterministic tie-breaking contract under random mixes
        /// with duplicate timestamps.
        #[test]
        fn pop_order_is_stable_sort_by_time(times in prop::collection::vec(0u32..16, 0..200)) {
            let mut h = EventHeap::new();
            for (i, &t) in times.iter().enumerate() {
                h.push(f64::from(t), i);
            }
            let popped: Vec<(f64, usize)> =
                std::iter::from_fn(|| h.pop()).map(|e| (e.time, e.payload)).collect();
            let mut expected: Vec<(f64, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (f64::from(t), i))
                .collect();
            expected.sort_by(|a, b| a.0.total_cmp(&b.0)); // stable: ties keep insertion order
            prop_assert_eq!(popped, expected);
        }

        /// Interleaved pushes and pops never violate time order among
        /// pops that happen after a given push set.
        #[test]
        fn interleaved_ops_stay_ordered(ops in prop::collection::vec(prop::option::of(0u32..8), 1..200)) {
            let mut h = EventHeap::new();
            let mut last_popped: Option<(f64, u64)> = None;
            for op in ops {
                match op {
                    Some(t) => { h.push(f64::from(t), ()); }
                    None => {
                        if let Some(e) = h.pop() {
                            if let Some((lt, ls)) = last_popped {
                                // Keys are totally ordered only among events
                                // present together; a later push can legally
                                // pop at an earlier time, so only assert the
                                // (time, seq) key is never duplicated.
                                prop_assert!(!(lt == e.time && ls == e.seq));
                            }
                            last_popped = Some((e.time, e.seq));
                        }
                    }
                }
            }
            // Draining the rest is fully ordered.
            let rest: Vec<(f64, u64)> =
                std::iter::from_fn(|| h.pop()).map(|e| (e.time, e.seq)).collect();
            prop_assert!(rest.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn latency_ring_overwrites_oldest() {
        let mut r = LatencyRing::default();
        r.reset(3);
        for v in [1.0, 2.0, 3.0] {
            r.push(v);
        }
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0]);
        r.push(4.0);
        r.push(5.0);
        let mut w: Vec<f64> = r.as_slice().to_vec();
        w.sort_unstable_by(f64::total_cmp);
        assert_eq!(w, vec![3.0, 4.0, 5.0]);
        r.reset(3);
        assert!(r.as_slice().is_empty());
    }

    fn serving_setup() -> (GridSpace, ServingEngine, Vec<BucketRegion>) {
        let space = GridSpace::new_2d(32, 32).unwrap();
        let m = 8;
        let hcam = Hcam::new(&space, m).unwrap();
        let dir =
            decluster_grid::GridDirectory::build(space.clone(), m, |b| hcam.disk_of(b.as_slice()));
        let engine = ServingEngine::new(&dir);
        let mut rng = StdRng::seed_from_u64(11);
        let queries: Vec<BucketRegion> = (0..64)
            .map(|_| random_region(&mut rng, &space, &[4, 4]).unwrap())
            .collect();
        (space, engine, queries)
    }

    #[test]
    fn serve_counts_every_event_and_drains_the_heap() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 200, 50.0);
        let mut ls = LoopScratch::new();
        let r = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &Obs::disabled(),
            &mut ls,
        );
        assert_eq!(r.report.queries, 200);
        assert_eq!(r.events, 400, "one arrival + one completion per request");
        assert!(ls.events.is_empty(), "heap drains by the end of the run");
        assert!(r.peak_in_flight >= 1);
        assert!(r.pages > 0);
        assert_eq!(r.samples, 0, "sampling disabled by default");
        assert!(r.report.tail.p50 <= r.report.tail.p95);
        assert!(r.report.tail.p95 <= r.report.tail.p99);
        assert!(r.report.tail.p99 <= r.report.latency.max);
    }

    #[test]
    fn serve_samples_fire_at_logical_intervals() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 400, 80.0);
        let cfg = ServeConfig {
            sample_every_ms: 250.0,
            window: 64,
        };
        let mut ls = LoopScratch::new();
        let r = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &cfg,
            &Obs::disabled(),
            &mut ls,
        );
        assert!(r.samples > 0);
        assert_eq!(ls.samples().len(), r.samples);
        for (i, s) in ls.samples().iter().enumerate() {
            assert_eq!(s.at_ms, 250.0 * (i + 1) as f64);
            assert!(s.tail_ms.p50 <= s.tail_ms.p99);
        }
        // Samples cover the run up to the last event.
        let last = ls.samples().last().unwrap();
        assert!(last.completed <= 400);
    }

    #[test]
    fn serve_sampling_does_not_change_the_report() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(9);
        let arrivals = poisson_arrivals(&mut rng, 300, 60.0);
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let plain = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &obs,
            &mut ls,
        );
        let sampled = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig {
                sample_every_ms: 100.0,
                window: 32,
            },
            &obs,
            &mut ls,
        );
        assert_eq!(
            plain.report.makespan_ms.to_bits(),
            sampled.report.makespan_ms.to_bits()
        );
        assert_eq!(
            plain.report.latency.mean.to_bits(),
            sampled.report.latency.mean.to_bits()
        );
        assert_eq!(plain.report.tail, sampled.report.tail);
        assert_eq!(plain.events, sampled.events);
    }

    #[test]
    fn serve_cycles_queries_for_long_arrival_streams() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let n = queries.len() * 3 + 7;
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 5.0).collect();
        let mut ls = LoopScratch::new();
        let r = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &Obs::disabled(),
            &mut ls,
        );
        assert_eq!(r.report.queries, n);
        assert_eq!(r.events, 2 * n as u64);
    }

    fn degraded_cfg() -> DegradedServeConfig {
        DegradedServeConfig::default()
    }

    #[test]
    fn fault_free_degraded_serve_matches_serve_core_bitwise() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 300, 60.0);
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let plain = engine.serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &obs,
            &mut ls,
        );
        let healthy = FaultSchedule::healthy(8);
        for policy in [ReplicaPolicy::PrimaryOnly, ReplicaPolicy::FailoverOnly] {
            let degraded = engine
                .serve_degraded_core(
                    &params,
                    &queries,
                    &arrivals,
                    &healthy,
                    1,
                    policy,
                    &degraded_cfg(),
                    &obs,
                    &mut ls,
                )
                .unwrap();
            let (a, b) = (&plain.report, &degraded.serve.report);
            assert_eq!(a.makespan_ms.to_bits(), b.makespan_ms.to_bits(), "{policy}");
            assert_eq!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
            assert_eq!(a.latency.max.to_bits(), b.latency.max.to_bits());
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.tail, b.tail);
            assert_eq!(plain.events, degraded.serve.events);
            assert_eq!(plain.peak_in_flight, degraded.serve.peak_in_flight);
            assert_eq!(plain.pages, degraded.serve.pages);
            assert_eq!(degraded.served, 300);
            assert_eq!((degraded.shed, degraded.lost, degraded.retries), (0, 0, 0));
            assert_eq!((degraded.timeouts, degraded.failovers), (0, 0));
            assert_eq!(degraded.availability(), 1.0);
        }
    }

    #[test]
    fn primary_only_loses_requests_through_a_fail_stop() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = poisson_arrivals(&mut rng, 200, 50.0);
        let schedule = FaultSchedule::healthy(8).fail_stop(3, 0).unwrap();
        let mut ls = LoopScratch::new();
        let r = engine
            .serve_degraded_core(
                &params,
                &queries,
                &arrivals,
                &schedule,
                1,
                ReplicaPolicy::PrimaryOnly,
                &degraded_cfg(),
                &Obs::disabled(),
                &mut ls,
            )
            .unwrap();
        assert!(r.lost > 0, "a permanently dead primary loses requests");
        assert!(r.retries > 0, "losses only follow exhausted retries");
        assert!(r.availability() < 1.0);
        assert_eq!(r.served + r.shed + r.lost, 200);
    }

    #[test]
    fn failover_serves_through_a_fail_stop() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = poisson_arrivals(&mut rng, 200, 50.0);
        let schedule = FaultSchedule::healthy(8).fail_stop(3, 0).unwrap();
        let mut ls = LoopScratch::new();
        let r = engine
            .serve_degraded_core(
                &params,
                &queries,
                &arrivals,
                &schedule,
                1,
                ReplicaPolicy::FailoverOnly,
                &degraded_cfg(),
                &Obs::disabled(),
                &mut ls,
            )
            .unwrap();
        assert_eq!(r.lost, 0, "one failure never defeats a 1-chain");
        assert_eq!(r.served, 200);
        assert!(r.failovers > 0);
        assert!(r.timeouts > 0, "failover pays the detection timeout");
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn transient_outage_recovers_via_retries() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        // Constant arrivals across a 100..140 ms outage of disk 2.
        let arrivals: Vec<f64> = (0..100).map(|i| i as f64 * 4.0).collect();
        let schedule = FaultSchedule::healthy(8).transient(2, 100, 140).unwrap();
        let cfg = DegradedServeConfig {
            retry: RetryPolicy {
                timeout_units: 2,
                max_retries: 5,
            },
            ..degraded_cfg()
        };
        let mut ls = LoopScratch::new();
        let r = engine
            .serve_degraded_core(
                &params,
                &queries,
                &arrivals,
                &schedule,
                1,
                ReplicaPolicy::PrimaryOnly,
                &cfg,
                &Obs::disabled(),
                &mut ls,
            )
            .unwrap();
        assert_eq!(r.transitions, 2, "outage start + recovery");
        assert!(r.retries > 0, "requests inside the window back off");
        assert_eq!(r.lost, 0, "backoff outlives the 40 ms outage");
        assert_eq!(r.served, 100);
        // Retried requests carry their backoff in the measured tail.
        assert!(r.serve.report.latency.max > r.serve.report.latency.mean);
    }

    #[test]
    fn shedding_bounds_in_flight() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        // An arrival burst far above service capacity.
        let arrivals: Vec<f64> = (0..300).map(|i| i as f64 * 0.1).collect();
        let cfg = DegradedServeConfig {
            max_in_flight: 4,
            ..degraded_cfg()
        };
        let mut ls = LoopScratch::new();
        let r = engine
            .serve_degraded_core(
                &params,
                &queries,
                &arrivals,
                &FaultSchedule::healthy(8),
                1,
                ReplicaPolicy::PrimaryOnly,
                &cfg,
                &Obs::disabled(),
                &mut ls,
            )
            .unwrap();
        assert!(r.shed > 0, "overload must shed");
        assert!(r.serve.peak_in_flight <= 4, "admission bound holds");
        assert_eq!(r.served + r.shed + r.lost, 300);
        assert!(r.availability() < 1.0);
        // Shed requests leave no latency sample behind.
        assert_eq!(ls.latencies.len() as u64, r.served);
    }

    #[test]
    fn balanced_policies_spread_load_across_live_copies() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let arrivals: Vec<f64> = (0..200).map(|i| i as f64 * 2.0).collect();
        let healthy = FaultSchedule::healthy(8);
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let mut run = |policy| {
            engine
                .serve_degraded_core(
                    &params,
                    &queries,
                    &arrivals,
                    &healthy,
                    2,
                    policy,
                    &degraded_cfg(),
                    &obs,
                    &mut ls,
                )
                .unwrap()
        };
        let primary = run(ReplicaPolicy::PrimaryOnly);
        let nearest = run(ReplicaPolicy::NearestFreeQueue);
        let rr = run(ReplicaPolicy::RoundRobin);
        for r in [&primary, &nearest, &rr] {
            assert_eq!(r.served, 200);
            assert_eq!(r.lost + r.shed, 0);
        }
        assert_eq!(primary.failovers, 0);
        assert!(rr.failovers > 0, "round-robin rotates off the primary");
        assert!(
            nearest.serve.report.latency.mean <= primary.serve.report.latency.mean,
            "queue-aware reads should not be slower than primary-only: {} > {}",
            nearest.serve.report.latency.mean,
            primary.serve.report.latency.mean
        );
    }

    #[test]
    fn degraded_serve_is_deterministic() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(13);
        let arrivals = poisson_arrivals(&mut rng, 250, 60.0);
        let schedule =
            FaultSchedule::parse("fail:3@500,transient:5@200..400,slow:1x2@0..800", 8).unwrap();
        let cfg = DegradedServeConfig {
            max_in_flight: 64,
            seed: 42,
            ..degraded_cfg()
        };
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let mut run = || {
            engine
                .serve_degraded_core(
                    &params,
                    &queries,
                    &arrivals,
                    &schedule,
                    2,
                    ReplicaPolicy::FailoverOnly,
                    &cfg,
                    &obs,
                    &mut ls,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.serve.report.makespan_ms.to_bits(),
            b.serve.report.makespan_ms.to_bits()
        );
        assert_eq!(
            a.serve.report.latency.mean.to_bits(),
            b.serve.report.latency.mean.to_bits()
        );
        assert_eq!(
            (a.served, a.shed, a.lost, a.retries, a.timeouts, a.failovers),
            (b.served, b.shed, b.lost, b.retries, b.timeouts, b.failovers)
        );
    }

    #[test]
    fn schedule_mismatch_is_an_error_not_a_panic() {
        let (_space, engine, queries) = serving_setup();
        let err = engine
            .serve_degraded_core(
                &DiskParams::default(),
                &queries,
                &[1.0],
                &FaultSchedule::healthy(4),
                1,
                ReplicaPolicy::PrimaryOnly,
                &degraded_cfg(),
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::ScheduleMismatch { .. }));
    }

    #[test]
    fn retry_jitter_is_deterministic_and_in_unit_range() {
        for seed in [0u64, 1, 99] {
            for query in [0u64, 7, 12345] {
                for attempt in [0u32, 1, 5] {
                    let j = retry_jitter01(seed, query, attempt);
                    assert!((0.0..1.0).contains(&j), "{j}");
                    assert_eq!(j.to_bits(), retry_jitter01(seed, query, attempt).to_bits());
                }
            }
        }
        // Distinct attempts decorrelate (the whole point of jitter).
        assert_ne!(
            retry_jitter01(1, 1, 0).to_bits(),
            retry_jitter01(1, 1, 1).to_bits()
        );
    }

    #[test]
    fn sharded_arrivals_are_thread_count_invariant() {
        let obs = Obs::disabled();
        let dist = InterArrival::Poisson { rate_qps: 40.0 };
        // Cross a chunk boundary so the merge reduction is exercised.
        let n = ARRIVAL_CHUNK + 1234;
        let serial = sharded_arrivals(77, n, dist, 1, &obs);
        let parallel = sharded_arrivals(77, n, dist, 8, &obs);
        assert_eq!(serial.len(), n);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(serial.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sharded_arrivals_have_the_right_rate() {
        let obs = Obs::disabled();
        let n = 100_000;
        let arrivals = sharded_arrivals(9, n, InterArrival::Poisson { rate_qps: 50.0 }, 4, &obs);
        let span = arrivals.last().unwrap() - arrivals[0];
        let mean_gap = span / (n - 1) as f64;
        assert!((mean_gap - 20.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let obs = Obs::disabled();
        let arrivals = sharded_arrivals(1, 10, InterArrival::Constant { rate_qps: 100.0 }, 2, &obs);
        for (i, &t) in arrivals.iter().enumerate() {
            assert!((t - (i + 1) as f64 * 10.0).abs() < 1e-9);
        }
    }
}
