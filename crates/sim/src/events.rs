//! The event-driven serving core of the multi-user simulator.
//!
//! The closed-loop, open-loop, and degraded loops in [`crate::multiuser`]
//! are all drivers over the same two primitives defined here:
//!
//! * [`EventHeap`] — an indexed binary min-heap over logical time with
//!   deterministic tie-breaking: events at equal times pop in insertion
//!   order (a monotone sequence number is the secondary key), so a run's
//!   event order is a pure function of its inputs.
//! * [`ServingEngine`] — the per-directory service core: the cached
//!   [`PlanCounts`] kernel, the static load vector, and the FCFS fan-out
//!   step that turns one query into per-disk batch service. The streaming
//!   entry point [`ServingEngine::serve_obs`] consumes an arrival-event
//!   stream and emits completion events through the heap, sampling
//!   mid-run state (in-flight, queue depth, windowed p50/p95/p99) at
//!   configurable logical-time intervals.
//!
//! # Memory bounds
//!
//! A serving run's state is the event heap (one entry per in-flight
//! query), a fixed-capacity ring of recently completed latencies, and the
//! flat latency vector — never per-client state. A million-client
//! open-loop run therefore peaks at `O(in-flight + clients × 8 bytes)`,
//! and the warmed loop performs zero heap allocations per event
//! (`tests/alloc_counting.rs` proves it with a counting allocator).
//!
//! # Sharded arrival streams
//!
//! [`sharded_arrivals`] generates large arrival vectors in fixed-size
//! chunks on the deterministic executor, each chunk from its own derived
//! RNG stream, merged by a sequential prefix-sum reduction — byte-identical
//! output at any thread count.

use crate::multiuser::{assemble_report, LoopMeters, MultiUserReport};
use crate::stats::Quantiles;
use crate::workload::InterArrival;
use crate::DiskParams;
use decluster_grid::{BucketRegion, GridDirectory};
use decluster_methods::{PlanCounts, Scratch};
use decluster_obs::{Obs, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One scheduled event: its logical time, the sequence number assigned at
/// push (the deterministic tie-breaker), and a payload.
#[derive(Clone, Copy, Debug)]
pub struct Event<T> {
    /// Logical time of the event, ms.
    pub time: f64,
    /// Monotone insertion index; equal-time events pop in this order.
    pub seq: u64,
    /// Caller data carried by the event.
    pub payload: T,
}

impl<T> Event<T> {
    #[inline]
    fn key(&self) -> (f64, u64) {
        (self.time, self.seq)
    }

    #[inline]
    fn before(&self, other: &Self) -> bool {
        let (ta, sa) = self.key();
        let (tb, sb) = other.key();
        match ta.total_cmp(&tb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => sa < sb,
        }
    }
}

/// A binary min-heap of [`Event`]s keyed by `(time, seq)`.
///
/// Times are compared with [`f64::total_cmp`], so ordering is total even
/// for pathological inputs; ties break by sequence number (insertion
/// order), which makes pop order deterministic under duplicate
/// timestamps — the property the proptests below pin.
///
/// The heap is a flat `Vec` that retains capacity across
/// [`EventHeap::clear`], so warmed serving loops push and pop without
/// touching the allocator. It also tracks its high-water mark
/// ([`EventHeap::peak_len`]) for the bounded-memory accounting of large
/// open-loop runs.
#[derive(Clone, Debug)]
pub struct EventHeap<T> {
    entries: Vec<Event<T>>,
    next_seq: u64,
    peak: usize,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        EventHeap {
            entries: Vec::new(),
            next_seq: 0,
            peak: 0,
        }
    }
}

impl<T> EventHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of events ever scheduled at once since the last
    /// [`EventHeap::clear`].
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Removes all events and resets the sequence counter and peak,
    /// keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
        self.peak = 0;
    }

    /// Schedules `payload` at `time` and returns the assigned sequence
    /// number. Later pushes at the same time pop later.
    pub fn push(&mut self, time: f64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Event { time, seq, payload });
        self.sift_up(self.entries.len() - 1);
        self.peak = self.peak.max(self.entries.len());
        seq
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.entries.first().map(|e| e.time)
    }

    /// Removes and returns the earliest event (ties by sequence number).
    pub fn pop(&mut self) -> Option<Event<T>> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let out = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].before(&self.entries[parent]) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.entries[l].before(&self.entries[smallest]) {
                smallest = l;
            }
            if r < n && self.entries[r].before(&self.entries[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }
}

/// A fixed-capacity ring of the most recently completed latencies: the
/// windowed sample behind mid-run p50/p95/p99 snapshots. Overwrites the
/// oldest entry once full; capacity is fixed at
/// [`LatencyRing::reset`] and never grows, so million-client runs keep a
/// bounded tail window.
#[derive(Clone, Debug, Default)]
pub(crate) struct LatencyRing {
    buf: Vec<f64>,
    cap: usize,
    head: usize,
}

impl LatencyRing {
    /// Empties the ring and fixes its capacity (at least 1), keeping any
    /// existing allocation.
    pub(crate) fn reset(&mut self, cap: usize) {
        self.cap = cap.max(1);
        self.buf.clear();
        self.buf.reserve(self.cap);
        self.head = 0;
    }

    pub(crate) fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// The window contents, in no particular order (quantile extraction
    /// sorts its own copy).
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.buf
    }
}

/// One mid-run state snapshot of a serving run, taken at a logical-time
/// sampling boundary (see [`ServeConfig::sample_every_ms`]). Everything
/// here derives from simulated quantities, so samples are bit-identical
/// across thread counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSample {
    /// Logical sample time, ms.
    pub at_ms: f64,
    /// Queries issued but not yet completed (the event heap's size).
    pub in_flight: usize,
    /// Disks whose FCFS queue extends past the sample time.
    pub busy_disks: usize,
    /// Queries completed so far.
    pub completed: u64,
    /// Windowed latency tails over the last [`ServeConfig::window`]
    /// completions (zeros before the first completion).
    pub tail_ms: Quantiles,
}

/// Configuration of a streaming serve run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Logical-time interval between mid-run samples, ms; `0` (the
    /// default) disables sampling.
    pub sample_every_ms: f64,
    /// Capacity of the windowed latency ring behind each sample's tails.
    pub window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sample_every_ms: 0.0,
            window: 1024,
        }
    }
}

/// Aggregate results of one streaming serve run. Mid-run samples stay in
/// the caller's [`LoopScratch`] (see [`LoopScratch::samples`]) so the
/// warmed loop allocates nothing; this report carries only their count.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The open-loop aggregate report (`clients` is 0: arrivals are an
    /// open stream, not a closed set).
    pub report: MultiUserReport,
    /// Events processed (one arrival plus one completion per query).
    pub events: u64,
    /// High-water mark of in-flight queries (the event heap's peak).
    pub peak_in_flight: usize,
    /// Total pages fetched across all disks.
    pub pages: u64,
    /// Mid-run samples recorded into the scratch.
    pub samples: usize,
}

/// Reusable per-run buffers for every serving loop: the kernel
/// [`Scratch`] (plan cache + accumulators), the per-query count
/// histogram, the FCFS queue state, the latency vector, the event heap,
/// and the sampling window. One instance per worker thread makes every
/// loop allocation-free per event once the buffers have grown to the
/// working-set size.
#[derive(Debug, Default)]
pub struct LoopScratch {
    pub(crate) scratch: Scratch,
    pub(crate) hist: Vec<u64>,
    pub(crate) disk_free_at: Vec<f64>,
    pub(crate) disk_busy_ms: Vec<f64>,
    pub(crate) latencies: Vec<f64>,
    pub(crate) events: EventHeap<f64>,
    pub(crate) ring: LatencyRing,
    pub(crate) sorted: Vec<f64>,
    pub(crate) samples: Vec<ServeSample>,
}

impl LoopScratch {
    /// Fresh (empty) buffers; they grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mid-run samples of the most recent serve run (empty for the
    /// closed/open/degraded loops and for runs with sampling disabled).
    pub fn samples(&self) -> &[ServeSample] {
        &self.samples
    }

    pub(crate) fn begin(&mut self, m: usize, queries: usize) {
        self.disk_free_at.clear();
        self.disk_free_at.resize(m, 0.0);
        self.disk_busy_ms.clear();
        self.disk_busy_ms.resize(m, 0.0);
        self.latencies.clear();
        self.latencies.reserve(queries);
        self.events.clear();
        self.samples.clear();
    }
}

/// A directory's serving core: the cached [`PlanCounts`] kernel plus the
/// static load vector, with the FCFS fan-out step every loop shares.
/// Build once per directory (the kernel build walks the grid once); the
/// engine is immutable and `Sync`, so parallel sweeps share one engine
/// per method across worker threads, each worker carrying its own
/// [`LoopScratch`].
#[derive(Clone, Debug)]
pub struct ServingEngine {
    pub(crate) counts: PlanCounts,
    pub(crate) loads: Vec<u64>,
}

impl ServingEngine {
    /// Builds the count kernel for `dir` and snapshots its load vector.
    pub fn new(dir: &GridDirectory) -> Self {
        ServingEngine {
            counts: PlanCounts::build(dir),
            loads: dir.load_vector(),
        }
    }

    /// Disks (`M`).
    pub fn num_disks(&self) -> usize {
        self.loads.len()
    }

    /// Whether queries are served by the prefix-sum kernel (false means
    /// the grid was too large for a table and the engine walks buckets).
    pub fn kernel_backed(&self) -> bool {
        self.counts.kernel_backed()
    }

    /// Per-disk page counts of `region` into `out` via the cached
    /// kernel; returns the total pages touched.
    pub(crate) fn counts_into(
        &self,
        region: &BucketRegion,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) -> u64 {
        self.counts.counts_into(region, scratch, out)
    }

    /// Static load (pages stored) of disk `d`.
    pub(crate) fn load_of(&self, d: usize) -> u64 {
        self.loads[d]
    }

    /// The FCFS fan-out step shared by every loop: issues one query's
    /// per-disk batches (from the count histogram in `hist`) against the
    /// disk queues and returns its completion time. `batches` /
    /// `queued_batches` accumulate only when `record` is set, exactly as
    /// the metered loops always did.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fan_out(
        &self,
        params: &DiskParams,
        issue_at: f64,
        hist: &[u64],
        disk_free_at: &mut [f64],
        disk_busy_ms: &mut [f64],
        record: bool,
        batches: &mut u64,
        queued_batches: &mut u64,
    ) -> f64 {
        let mut completion = issue_at;
        for (d, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = issue_at.max(disk_free_at[d]);
            let service = params.batch_ms_counts(count, self.loads[d]);
            disk_free_at[d] = start + service;
            disk_busy_ms[d] += service;
            completion = completion.max(start + service);
            if record {
                *batches += 1;
                if start > issue_at {
                    *queued_batches += 1;
                }
            }
        }
        completion
    }

    /// Streaming open-loop serve: one request per entry of `arrivals_ms`
    /// (non-decreasing logical times), each replaying the next query of
    /// `queries` round-robin. Arrival events interleave with completion
    /// events through the heap (completions at a tied time process
    /// first), mid-run state is sampled every
    /// [`ServeConfig::sample_every_ms`], and the aggregate report carries
    /// exact p50/p95/p99 over all latencies.
    ///
    /// The per-request service math is identical to the open loop's, so
    /// for `arrivals_ms.len() == queries.len()` the aggregate report is
    /// bit-identical to [`crate::run_open_loop`] on the same inputs.
    ///
    /// # Panics
    /// Panics if `queries` is empty or `arrivals_ms` is not
    /// non-decreasing.
    pub fn serve_obs(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        cfg: &ServeConfig,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> ServeReport {
        assert!(!queries.is_empty(), "serve needs at least one query shape");
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let record = obs.enabled();
        let m = self.loads.len();
        let meters = record.then(|| LoopMeters::new(obs, "serve", m));
        let n = arrivals_ms.len();
        ls.begin(m, n);
        ls.ring.reset(cfg.window);
        ls.sorted.clear();
        let sample_every = if cfg.sample_every_ms > 0.0 {
            cfg.sample_every_ms
        } else {
            f64::INFINITY
        };
        let mut next_sample = sample_every;
        let mut makespan: f64 = 0.0;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;
        let mut pages = 0u64;
        let mut events = 0u64;
        let mut completed = 0u64;
        let mut next_arrival = 0usize;

        while next_arrival < n || !ls.events.is_empty() {
            let arrival_t = if next_arrival < n {
                arrivals_ms[next_arrival]
            } else {
                f64::INFINITY
            };
            let take_completion = ls.events.peek_time().is_some_and(|t| t <= arrival_t);
            let event_t = if take_completion {
                ls.events.peek_time().expect("non-empty heap")
            } else {
                arrival_t
            };
            // Samples fire strictly before any event at or past their
            // boundary, so each snapshot reflects the state just before
            // its logical time.
            while next_sample <= event_t {
                let tail_ms = {
                    ls.sorted.clear();
                    ls.sorted.extend_from_slice(ls.ring.as_slice());
                    Quantiles::of_unsorted(&mut ls.sorted)
                };
                ls.samples.push(ServeSample {
                    at_ms: next_sample,
                    in_flight: ls.events.len(),
                    busy_disks: ls.disk_free_at.iter().filter(|&&f| f > next_sample).count(),
                    completed,
                    tail_ms,
                });
                next_sample += sample_every;
            }
            if take_completion {
                let ev = ls.events.pop().expect("non-empty heap");
                ls.ring.push(ev.payload);
                completed += 1;
            } else {
                let issue_at = arrival_t;
                let region = &queries[next_arrival % queries.len()];
                next_arrival += 1;
                pages += self
                    .counts
                    .counts_into(region, &mut ls.scratch, &mut ls.hist);
                let completion = self.fan_out(
                    params,
                    issue_at,
                    &ls.hist,
                    &mut ls.disk_free_at,
                    &mut ls.disk_busy_ms,
                    record,
                    &mut batches,
                    &mut queued_batches,
                );
                ls.latencies.push(completion - issue_at);
                makespan = makespan.max(completion);
                ls.events.push(completion, completion - issue_at);
            }
            events += 1;
        }

        if let Some(meters) = &meters {
            meters.record(n, batches, queued_batches, &ls.disk_busy_ms, &ls.latencies);
            obs.gauge_max("serve.peak_in_flight", ls.events.peak_len() as u64);
            obs.counter_add("serve.events", events);
            obs.counter_add("serve.pages", pages);
            obs.counter_add("serve.samples", ls.samples.len() as u64);
        }
        let report = assemble_report(n, 0, makespan, m, &ls.disk_busy_ms, &mut ls.latencies);
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("serve_done")
                    .with("requests", n)
                    .with("events", events)
                    .with("peak_in_flight", ls.events.peak_len())
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        ServeReport {
            report,
            events,
            peak_in_flight: ls.events.peak_len(),
            pages,
            samples: ls.samples.len(),
        }
    }
}

/// The fixed chunk length of [`sharded_arrivals`]. Chunk boundaries are
/// part of the deterministic contract: they depend only on `n`, never on
/// the thread count.
const ARRIVAL_CHUNK: usize = 1 << 16;

/// Arrival times for `n` requests drawn from `dist`, generated in
/// fixed-size chunks on the deterministic executor and merged by a
/// sequential prefix-sum reduction: chunk `c` draws its gaps from an RNG
/// seeded by `(seed, c)`, and chunk offsets accumulate left to right. The
/// output is byte-identical at any `threads`, which is what lets
/// million-client arrival streams be built in parallel without touching
/// the determinism contract.
pub fn sharded_arrivals(
    seed: u64,
    n: usize,
    dist: InterArrival,
    threads: usize,
    obs: &Obs,
) -> Vec<f64> {
    let chunks = n.div_ceil(ARRIVAL_CHUNK);
    let parts: Vec<Vec<f64>> = crate::exec::run_indexed(threads, chunks, obs, |c| {
        let mut rng = StdRng::seed_from_u64(crate::exec::derive_point_seed(seed, c as u64));
        let len = ARRIVAL_CHUNK.min(n - c * ARRIVAL_CHUNK);
        let mut t = 0.0;
        (0..len)
            .map(|_| {
                t += dist.sample_gap_ms(&mut rng);
                t
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut offset = 0.0;
    for part in parts {
        let last = part.last().copied().unwrap_or(0.0);
        out.extend(part.iter().map(|&t| offset + t));
        offset += last;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiuser::poisson_arrivals;
    use crate::workload::random_region;
    use decluster_grid::GridSpace;
    use decluster_methods::{DeclusteringMethod, Hcam};
    use proptest::prelude::*;

    #[test]
    fn heap_pops_in_time_order() {
        let mut h = EventHeap::new();
        for (t, p) in [(5.0, 'a'), (1.0, 'b'), (3.0, 'c'), (2.0, 'd'), (4.0, 'e')] {
            h.push(t, p);
        }
        let order: Vec<char> = std::iter::from_fn(|| h.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!['b', 'd', 'c', 'e', 'a']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = EventHeap::new();
        for i in 0..10 {
            h.push(7.0, i);
        }
        h.push(1.0, 99);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![99, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn clear_resets_sequence_and_peak_but_keeps_capacity() {
        let mut h = EventHeap::new();
        for i in 0..100 {
            h.push(i as f64, ());
        }
        assert_eq!(h.peak_len(), 100);
        let cap = h.entries.capacity();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.peak_len(), 0);
        assert_eq!(h.entries.capacity(), cap);
        assert_eq!(h.push(3.0, ()), 0, "sequence restarts after clear");
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        assert_eq!(h.peek_time(), None);
        h.push(2.0, ());
        h.push(1.0, ());
        assert_eq!(h.peek_time(), Some(1.0));
        assert_eq!(h.pop().unwrap().time, 1.0);
        assert_eq!(h.peek_time(), Some(2.0));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut h = EventHeap::new();
        h.push(1.0, ());
        h.push(2.0, ());
        h.pop();
        h.push(3.0, ());
        h.pop();
        h.pop();
        assert_eq!(h.peak_len(), 2);
        assert!(h.is_empty());
    }

    proptest! {
        /// Pop order equals a stable sort of the pushed events by time:
        /// the deterministic tie-breaking contract under random mixes
        /// with duplicate timestamps.
        #[test]
        fn pop_order_is_stable_sort_by_time(times in prop::collection::vec(0u32..16, 0..200)) {
            let mut h = EventHeap::new();
            for (i, &t) in times.iter().enumerate() {
                h.push(f64::from(t), i);
            }
            let popped: Vec<(f64, usize)> =
                std::iter::from_fn(|| h.pop()).map(|e| (e.time, e.payload)).collect();
            let mut expected: Vec<(f64, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (f64::from(t), i))
                .collect();
            expected.sort_by(|a, b| a.0.total_cmp(&b.0)); // stable: ties keep insertion order
            prop_assert_eq!(popped, expected);
        }

        /// Interleaved pushes and pops never violate time order among
        /// pops that happen after a given push set.
        #[test]
        fn interleaved_ops_stay_ordered(ops in prop::collection::vec(prop::option::of(0u32..8), 1..200)) {
            let mut h = EventHeap::new();
            let mut last_popped: Option<(f64, u64)> = None;
            for op in ops {
                match op {
                    Some(t) => { h.push(f64::from(t), ()); }
                    None => {
                        if let Some(e) = h.pop() {
                            if let Some((lt, ls)) = last_popped {
                                // Keys are totally ordered only among events
                                // present together; a later push can legally
                                // pop at an earlier time, so only assert the
                                // (time, seq) key is never duplicated.
                                prop_assert!(!(lt == e.time && ls == e.seq));
                            }
                            last_popped = Some((e.time, e.seq));
                        }
                    }
                }
            }
            // Draining the rest is fully ordered.
            let rest: Vec<(f64, u64)> =
                std::iter::from_fn(|| h.pop()).map(|e| (e.time, e.seq)).collect();
            prop_assert!(rest.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn latency_ring_overwrites_oldest() {
        let mut r = LatencyRing::default();
        r.reset(3);
        for v in [1.0, 2.0, 3.0] {
            r.push(v);
        }
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0]);
        r.push(4.0);
        r.push(5.0);
        let mut w: Vec<f64> = r.as_slice().to_vec();
        w.sort_unstable_by(f64::total_cmp);
        assert_eq!(w, vec![3.0, 4.0, 5.0]);
        r.reset(3);
        assert!(r.as_slice().is_empty());
    }

    fn serving_setup() -> (GridSpace, ServingEngine, Vec<BucketRegion>) {
        let space = GridSpace::new_2d(32, 32).unwrap();
        let m = 8;
        let hcam = Hcam::new(&space, m).unwrap();
        let dir =
            decluster_grid::GridDirectory::build(space.clone(), m, |b| hcam.disk_of(b.as_slice()));
        let engine = ServingEngine::new(&dir);
        let mut rng = StdRng::seed_from_u64(11);
        let queries: Vec<BucketRegion> = (0..64)
            .map(|_| random_region(&mut rng, &space, &[4, 4]).unwrap())
            .collect();
        (space, engine, queries)
    }

    #[test]
    fn serve_counts_every_event_and_drains_the_heap() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 200, 50.0);
        let mut ls = LoopScratch::new();
        let r = engine.serve_obs(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &Obs::disabled(),
            &mut ls,
        );
        assert_eq!(r.report.queries, 200);
        assert_eq!(r.events, 400, "one arrival + one completion per request");
        assert!(ls.events.is_empty(), "heap drains by the end of the run");
        assert!(r.peak_in_flight >= 1);
        assert!(r.pages > 0);
        assert_eq!(r.samples, 0, "sampling disabled by default");
        assert!(r.report.tail.p50 <= r.report.tail.p95);
        assert!(r.report.tail.p95 <= r.report.tail.p99);
        assert!(r.report.tail.p99 <= r.report.latency.max);
    }

    #[test]
    fn serve_samples_fire_at_logical_intervals() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(&mut rng, 400, 80.0);
        let cfg = ServeConfig {
            sample_every_ms: 250.0,
            window: 64,
        };
        let mut ls = LoopScratch::new();
        let r = engine.serve_obs(
            &params,
            &queries,
            &arrivals,
            &cfg,
            &Obs::disabled(),
            &mut ls,
        );
        assert!(r.samples > 0);
        assert_eq!(ls.samples().len(), r.samples);
        for (i, s) in ls.samples().iter().enumerate() {
            assert_eq!(s.at_ms, 250.0 * (i + 1) as f64);
            assert!(s.tail_ms.p50 <= s.tail_ms.p99);
        }
        // Samples cover the run up to the last event.
        let last = ls.samples().last().unwrap();
        assert!(last.completed <= 400);
    }

    #[test]
    fn serve_sampling_does_not_change_the_report() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let mut rng = StdRng::seed_from_u64(9);
        let arrivals = poisson_arrivals(&mut rng, 300, 60.0);
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        let plain = engine.serve_obs(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &obs,
            &mut ls,
        );
        let sampled = engine.serve_obs(
            &params,
            &queries,
            &arrivals,
            &ServeConfig {
                sample_every_ms: 100.0,
                window: 32,
            },
            &obs,
            &mut ls,
        );
        assert_eq!(
            plain.report.makespan_ms.to_bits(),
            sampled.report.makespan_ms.to_bits()
        );
        assert_eq!(
            plain.report.latency.mean.to_bits(),
            sampled.report.latency.mean.to_bits()
        );
        assert_eq!(plain.report.tail, sampled.report.tail);
        assert_eq!(plain.events, sampled.events);
    }

    #[test]
    fn serve_cycles_queries_for_long_arrival_streams() {
        let (_space, engine, queries) = serving_setup();
        let params = DiskParams::default();
        let n = queries.len() * 3 + 7;
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 5.0).collect();
        let mut ls = LoopScratch::new();
        let r = engine.serve_obs(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &Obs::disabled(),
            &mut ls,
        );
        assert_eq!(r.report.queries, n);
        assert_eq!(r.events, 2 * n as u64);
    }

    #[test]
    fn sharded_arrivals_are_thread_count_invariant() {
        let obs = Obs::disabled();
        let dist = InterArrival::Poisson { rate_qps: 40.0 };
        // Cross a chunk boundary so the merge reduction is exercised.
        let n = ARRIVAL_CHUNK + 1234;
        let serial = sharded_arrivals(77, n, dist, 1, &obs);
        let parallel = sharded_arrivals(77, n, dist, 8, &obs);
        assert_eq!(serial.len(), n);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(serial.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sharded_arrivals_have_the_right_rate() {
        let obs = Obs::disabled();
        let n = 100_000;
        let arrivals = sharded_arrivals(9, n, InterArrival::Poisson { rate_qps: 50.0 }, 4, &obs);
        let span = arrivals.last().unwrap() - arrivals[0];
        let mean_gap = span / (n - 1) as f64;
        assert!((mean_gap - 20.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let obs = Obs::disabled();
        let arrivals = sharded_arrivals(1, 10, InterArrival::Constant { rate_qps: 100.0 }, 2, &obs);
        for (i, &t) in arrivals.iter().enumerate() {
            assert!((t - (i + 1) as f64 * 10.0).abs() < 1e-9);
        }
    }
}
