/// Summary statistics of a sample of observations (response times,
/// deviations, …).
///
/// All experiments in the harness report means over many random query
/// placements; the stddev and a normal-approximation 95% confidence
/// half-width are kept so tables can show how tight the estimates are.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. An empty sample yields all-zero statistics.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n: values.len(),
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarizes integer observations (the common case for bucket-count
    /// response times).
    pub fn of_counts(values: &[u64]) -> Self {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }

    /// Half-width of a ~95% confidence interval for the mean (normal
    /// approximation, `1.96 · σ / √n`). Zero for n < 2.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Population variance of 1..4 is 1.25.
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn of_counts_matches_of() {
        assert_eq!(
            Summary::of_counts(&[1, 2, 3]),
            Summary::of(&[1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[7.0; 100]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }
}
