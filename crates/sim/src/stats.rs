/// Summary statistics of a sample of observations (response times,
/// deviations, …).
///
/// All experiments in the harness report means over many random query
/// placements; the stddev and a normal-approximation 95% confidence
/// half-width are kept so tables can show how tight the estimates are.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. An empty sample yields all-zero statistics.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n: values.len(),
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarizes integer observations (the common case for bucket-count
    /// response times).
    pub fn of_counts(values: &[u64]) -> Self {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }

    /// Half-width of a ~95% confidence interval for the mean (normal
    /// approximation, `1.96 · σ / √n`). Zero for n < 2.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

/// Exact latency tail quantiles, extracted by nearest-rank from the full
/// sorted sample (no sketches, no interpolation): deterministic for a
/// deterministic sample, so 1-thread and N-thread runs agree bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl Quantiles {
    /// Nearest-rank quantile of an ascending-sorted sample: the smallest
    /// observation whose rank `r` satisfies `r / n >= q`. Zero when empty.
    fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.max(1) - 1]
    }

    /// Extracts p50/p95/p99 from an ascending-sorted sample. An empty
    /// sample yields all-zero quantiles.
    pub fn of_sorted(sorted: &[f64]) -> Self {
        Quantiles {
            p50: Self::nearest_rank(sorted, 0.50),
            p95: Self::nearest_rank(sorted, 0.95),
            p99: Self::nearest_rank(sorted, 0.99),
        }
    }

    /// Sorts `values` in place (total order, so NaNs cannot poison the
    /// ranks) and extracts the quantiles. Allocation-free.
    pub fn of_unsorted(values: &mut [f64]) -> Self {
        values.sort_unstable_by(f64::total_cmp);
        Self::of_sorted(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[4.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Population variance of 1..4 is 1.25.
        assert!((s.stddev - 1.25f64.sqrt()).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn of_counts_matches_of() {
        assert_eq!(
            Summary::of_counts(&[1, 2, 3]),
            Summary::of(&[1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[7.0; 100]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn quantiles_of_empty_sample_are_zero() {
        assert_eq!(Quantiles::of_sorted(&[]), Quantiles::default());
    }

    #[test]
    fn quantiles_of_singleton_are_that_value() {
        let q = Quantiles::of_sorted(&[3.5]);
        assert_eq!(
            q,
            Quantiles {
                p50: 3.5,
                p95: 3.5,
                p99: 3.5
            }
        );
    }

    #[test]
    fn nearest_rank_on_1_to_100() {
        // With n = 100 the nearest-rank quantile of value k at rank k is
        // exact: p50 = 50, p95 = 95, p99 = 99.
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let q = Quantiles::of_sorted(&sorted);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p95, 95.0);
        assert_eq!(q.p99, 99.0);
    }

    #[test]
    fn of_unsorted_matches_of_sorted() {
        let mut shuffled = vec![9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let mut sorted = shuffled.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(
            Quantiles::of_unsorted(&mut shuffled),
            Quantiles::of_sorted(&sorted)
        );
    }

    #[test]
    fn quantiles_are_always_observations() {
        let sorted = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5];
        let q = Quantiles::of_sorted(&sorted);
        for v in [q.p50, q.p95, q.p99] {
            assert!(sorted.contains(&v), "{v} not an observation");
        }
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99);
    }
}
