//! Deterministic fault models and degraded-mode query execution.
//!
//! The paper scopes failures out ("a data subspace can be assigned to
//! [only] one disk"), but a declustering method's value in a real
//! parallel I/O system is precisely its behavior when disks misbehave.
//! This module supplies the missing driver: a [`FaultSchedule`] describes
//! *when* each disk fails, recovers, or slows down on a **logical clock**
//! (the index of the query being served), and [`degraded_outcome`] turns
//! a query's per-disk access histogram into what actually happens —
//! served at a degraded response time, or [`QueryOutcome::Unavailable`]
//! when no live copy of some bucket exists.
//!
//! Keying fault states on logical time rather than wall-clock makes every
//! run reproducible under any `--threads` setting: the schedule is a pure
//! function of the query index, so the parallel sweep executor can hand
//! queries to any thread in any order without changing a single number.
//!
//! The failover model is chained declustering's: a failed disk's batch
//! moves to its chain successor `(d + 1) mod M` after a timeout and
//! bounded retries ([`RetryPolicy`]), so degraded response time is never
//! below the fault-free response time — the failed disk's entire share
//! lands on one survivor. Without replication a failed disk with touched
//! buckets makes the query unavailable instead.

use crate::{DiskParams, Result, SimError, Summary};
use decluster_grid::GridDirectory;
use decluster_obs::{Obs, TraceEvent};
use std::fmt::Write as _;

/// The state of one disk at one logical instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiskState {
    /// Serving normally.
    Up,
    /// Fail-stopped or inside a transient outage window: serves nothing.
    Down,
    /// A "gray" disk: serving, but every batch takes `factor` times as
    /// long (`factor >= 1`).
    Slow(f64),
}

impl DiskState {
    /// Whether the disk can serve at all.
    pub fn is_live(self) -> bool {
        !matches!(self, DiskState::Down)
    }

    /// The latency multiplier this state imposes (1 for `Up`, the factor
    /// for `Slow`; meaningless for `Down`).
    pub fn latency_factor(self) -> f64 {
        match self {
            DiskState::Slow(f) => f,
            _ => 1.0,
        }
    }
}

/// One deterministic fault event on the logical clock. Intervals are
/// half-open: `from` is the first affected instant, `until` the first
/// unaffected one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The disk stops at `at` and never returns.
    FailStop {
        /// Affected disk.
        disk: u32,
        /// First logical instant at which the disk is down.
        at: u64,
    },
    /// The disk is unavailable during `[from, until)` and then recovers.
    Transient {
        /// Affected disk.
        disk: u32,
        /// First down instant.
        from: u64,
        /// First instant back up.
        until: u64,
    },
    /// The disk serves at `factor`× latency during `[from, until)`.
    Slow {
        /// Affected disk.
        disk: u32,
        /// Latency multiplier, `>= 1`.
        factor: f64,
        /// First slow instant.
        from: u64,
        /// First instant back to full speed.
        until: u64,
    },
}

/// A deterministic fault schedule over `M` disks.
///
/// Built programmatically ([`FaultSchedule::fail_stop`] etc.) or parsed
/// from the CLI grammar ([`FaultSchedule::parse`]):
///
/// ```text
/// fail:<disk>@<t>                      fail-stop at logical time t
/// transient:<disk>@<from>..<until>     outage window [from, until)
/// slow:<disk>x<factor>@<from>..<until> gray disk at factor x latency
/// ```
///
/// Events are comma-separated; `none` (or an empty spec) is the healthy
/// schedule. `Down` wins over `Slow`; overlapping slow windows compose by
/// taking the largest factor.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    m: u32,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The healthy schedule: no events over `m` disks.
    pub fn healthy(m: u32) -> Self {
        FaultSchedule {
            m,
            events: Vec::new(),
        }
    }

    /// Builds a schedule from pre-assembled events, validating each one:
    /// events addressed to disks `>= m`, empty windows, and gray-slow
    /// factors below 1 are rejected with the same one-line typed errors
    /// the incremental builders produce. This is the ingestion path for
    /// event lists assembled outside the builder chain (e.g. by the
    /// serving engine's fault-event plumbing).
    ///
    /// # Errors
    /// [`SimError::BadFaultSpec`] naming the offending event.
    pub fn from_events(m: u32, events: impl IntoIterator<Item = FaultEvent>) -> Result<Self> {
        let mut schedule = FaultSchedule::healthy(m);
        for event in events {
            schedule = match event {
                FaultEvent::FailStop { disk, at } => schedule.fail_stop(disk, at)?,
                FaultEvent::Transient { disk, from, until } => {
                    schedule.transient(disk, from, until)?
                }
                FaultEvent::Slow {
                    disk,
                    factor,
                    from,
                    until,
                } => schedule.slow(disk, factor, from, until)?,
            };
        }
        Ok(schedule)
    }

    fn check_disk(&self, disk: u32) -> Result<()> {
        if disk >= self.m {
            return Err(SimError::BadFaultSpec {
                spec: format!("disk {disk}"),
                reason: format!("disk index out of range (M = {})", self.m),
            });
        }
        Ok(())
    }

    fn check_window(from: u64, until: u64) -> Result<()> {
        if from >= until {
            return Err(SimError::BadFaultSpec {
                spec: format!("{from}..{until}"),
                reason: "window must satisfy from < until".into(),
            });
        }
        Ok(())
    }

    /// Adds a fail-stop of `disk` at logical time `at`.
    ///
    /// # Errors
    /// [`SimError::BadFaultSpec`] when `disk` is out of range.
    pub fn fail_stop(mut self, disk: u32, at: u64) -> Result<Self> {
        self.check_disk(disk)?;
        self.events.push(FaultEvent::FailStop { disk, at });
        Ok(self)
    }

    /// Adds a transient outage of `disk` over `[from, until)`.
    ///
    /// # Errors
    /// [`SimError::BadFaultSpec`] for an out-of-range disk or an empty
    /// window.
    pub fn transient(mut self, disk: u32, from: u64, until: u64) -> Result<Self> {
        self.check_disk(disk)?;
        Self::check_window(from, until)?;
        self.events
            .push(FaultEvent::Transient { disk, from, until });
        Ok(self)
    }

    /// Adds a gray-disk window: `disk` serves at `factor`× latency over
    /// `[from, until)`.
    ///
    /// # Errors
    /// [`SimError::BadFaultSpec`] for an out-of-range disk, an empty
    /// window, or a factor below 1 (a disk cannot get faster by failing —
    /// and the degraded ≥ healthy invariant depends on it).
    pub fn slow(mut self, disk: u32, factor: f64, from: u64, until: u64) -> Result<Self> {
        self.check_disk(disk)?;
        Self::check_window(from, until)?;
        if !factor.is_finite() || factor < 1.0 {
            return Err(SimError::BadFaultSpec {
                spec: format!("slow factor {factor}"),
                reason: "slow factor must be a finite number >= 1".into(),
            });
        }
        self.events.push(FaultEvent::Slow {
            disk,
            factor,
            from,
            until,
        });
        Ok(self)
    }

    /// Parses the CLI fault grammar (see the type docs) against `m`
    /// disks.
    ///
    /// # Errors
    /// [`SimError::BadFaultSpec`] naming the offending clause for any
    /// syntax or range problem.
    pub fn parse(spec: &str, m: u32) -> Result<Self> {
        let mut schedule = FaultSchedule::healthy(m);
        let trimmed = spec.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(schedule);
        }
        for clause in trimmed.split(',') {
            let clause = clause.trim();
            let bad = |reason: &str| SimError::BadFaultSpec {
                spec: clause.to_owned(),
                reason: reason.to_owned(),
            };
            let (kind, rest) = clause.split_once(':').ok_or_else(|| {
                bad("expected fail:<disk>@<t>, transient:<disk>@<from>..<until>, or slow:<disk>x<factor>@<from>..<until>")
            })?;
            match kind {
                "fail" => {
                    let (disk, at) = rest
                        .split_once('@')
                        .ok_or_else(|| bad("expected fail:<disk>@<t>"))?;
                    let disk: u32 = disk.parse().map_err(|_| bad("disk must be an integer"))?;
                    let at: u64 = at.parse().map_err(|_| bad("time must be an integer"))?;
                    schedule = schedule.fail_stop(disk, at)?;
                }
                "transient" => {
                    let (disk, window) = rest
                        .split_once('@')
                        .ok_or_else(|| bad("expected transient:<disk>@<from>..<until>"))?;
                    let disk: u32 = disk.parse().map_err(|_| bad("disk must be an integer"))?;
                    let (from, until) = window
                        .split_once("..")
                        .ok_or_else(|| bad("window must be <from>..<until>"))?;
                    let from: u64 = from
                        .parse()
                        .map_err(|_| bad("window start must be an integer"))?;
                    let until: u64 = until
                        .parse()
                        .map_err(|_| bad("window end must be an integer"))?;
                    schedule = schedule.transient(disk, from, until)?;
                }
                "slow" => {
                    let (head, window) = rest
                        .split_once('@')
                        .ok_or_else(|| bad("expected slow:<disk>x<factor>@<from>..<until>"))?;
                    let (disk, factor) = head
                        .split_once('x')
                        .ok_or_else(|| bad("expected <disk>x<factor> before @"))?;
                    let disk: u32 = disk.parse().map_err(|_| bad("disk must be an integer"))?;
                    let factor: f64 = factor.parse().map_err(|_| bad("factor must be a number"))?;
                    let (from, until) = window
                        .split_once("..")
                        .ok_or_else(|| bad("window must be <from>..<until>"))?;
                    let from: u64 = from
                        .parse()
                        .map_err(|_| bad("window start must be an integer"))?;
                    let until: u64 = until
                        .parse()
                        .map_err(|_| bad("window end must be an integer"))?;
                    schedule = schedule.slow(disk, factor, from, until)?;
                }
                other => {
                    return Err(SimError::BadFaultSpec {
                        spec: clause.to_owned(),
                        reason: format!(
                            "unknown fault kind {other:?} (want fail, transient, or slow)"
                        ),
                    })
                }
            }
        }
        Ok(schedule)
    }

    /// Number of disks the schedule covers.
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    /// The events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule is the healthy one.
    pub fn is_healthy(&self) -> bool {
        self.events.is_empty()
    }

    /// The state of `disk` at logical time `t`. `Down` wins over `Slow`;
    /// overlapping slow windows take the largest factor.
    ///
    /// # Panics
    /// Panics if `disk` is out of range (schedules validate disks at
    /// construction, so this is a caller bug).
    pub fn state_at(&self, disk: u32, t: u64) -> DiskState {
        assert!(disk < self.m, "disk {disk} out of range (M = {})", self.m);
        let mut slow = 1.0f64;
        for event in &self.events {
            match *event {
                FaultEvent::FailStop { disk: d, at } if d == disk && t >= at => {
                    return DiskState::Down;
                }
                FaultEvent::Transient {
                    disk: d,
                    from,
                    until,
                } if d == disk && t >= from && t < until => {
                    return DiskState::Down;
                }
                FaultEvent::Slow {
                    disk: d,
                    factor,
                    from,
                    until,
                } if d == disk && t >= from && t < until => {
                    slow = slow.max(factor);
                }
                _ => {}
            }
        }
        if slow > 1.0 {
            DiskState::Slow(slow)
        } else {
            DiskState::Up
        }
    }

    /// Whether `disk` and its chained-declustering backup `(disk + 1)
    /// mod M` are both down at time `t` — the condition under which a
    /// batch on `disk` has no live copy and its query is unavailable.
    ///
    /// # Panics
    /// As [`FaultSchedule::state_at`].
    pub fn chain_dead(&self, disk: u32, t: u64) -> bool {
        self.replicas_dead(disk, t, 1)
    }

    /// Whether `disk` and all `r` of its chain successors are down at
    /// time `t` — under r-way chained replication the condition for a
    /// batch on `disk` to have no live copy. `replicas_dead(d, t, 1)` is
    /// [`FaultSchedule::chain_dead`].
    ///
    /// # Panics
    /// As [`FaultSchedule::state_at`].
    pub fn replicas_dead(&self, disk: u32, t: u64, replicas: u32) -> bool {
        self.first_live_copy(disk, t, replicas).is_none()
    }

    /// The chain offset `j in 0..=replicas` of the first live copy of a
    /// bucket whose primary is `disk` (`0` when the primary itself is
    /// live), or `None` when every copy is down at time `t`.
    ///
    /// # Panics
    /// As [`FaultSchedule::state_at`].
    pub fn first_live_copy(&self, disk: u32, t: u64, replicas: u32) -> Option<u32> {
        (0..=replicas).find(|&j| self.state_at((disk + j) % self.m, t).is_live())
    }

    /// The failed-disk mask at time `t`: `mask[d]` is true when disk `d`
    /// is down.
    pub fn failed_mask(&self, t: u64) -> Vec<bool> {
        (0..self.m)
            .map(|d| !self.state_at(d, t).is_live())
            .collect()
    }

    /// A one-line human description of the schedule.
    pub fn describe(&self) -> String {
        if self.is_healthy() {
            return "healthy".to_owned();
        }
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match *event {
                FaultEvent::FailStop { disk, at } => {
                    let _ = write!(out, "fail:{disk}@{at}");
                }
                FaultEvent::Transient { disk, from, until } => {
                    let _ = write!(out, "transient:{disk}@{from}..{until}");
                }
                FaultEvent::Slow {
                    disk,
                    factor,
                    from,
                    until,
                } => {
                    let _ = write!(out, "slow:{disk}x{factor}@{from}..{until}");
                }
            }
        }
        out
    }
}

/// Timeout-and-retry behavior of a client whose batch hits a dead disk.
///
/// A batch to a down disk waits `timeout_units` response-time units, is
/// retried `max_retries` times (each retry paying the timeout again), and
/// then fails over to the chained backup. The total detection penalty of
/// `timeout_units × (1 + max_retries)` units is charged to the failover
/// batch before the backup disk starts serving it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Response-time units a batch waits before declaring its disk dead.
    pub timeout_units: u64,
    /// How many times the batch is retried before failing over.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// One unit of timeout and a single retry — failure detection costs
    /// two units before the failover batch is issued.
    fn default() -> Self {
        RetryPolicy {
            timeout_units: 1,
            max_retries: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy with instant failure detection (no timeout, no retries).
    /// Degraded response times then exactly match the analytic chained
    /// model in `decluster-methods`.
    pub fn instant() -> Self {
        RetryPolicy {
            timeout_units: 0,
            max_retries: 0,
        }
    }

    /// Total detection cost before failover, in response-time units:
    /// `timeout_units × (1 + max_retries)`.
    pub fn detection_units(&self) -> u64 {
        self.timeout_units * (1 + u64::from(self.max_retries))
    }
}

/// How a read picks among the `1 + r` copies of a bucket under r-way
/// chained replication.
///
/// The first two treat replicas purely as failover insurance; the last
/// two use them as read bandwidth (the shared-I/O argument: replication
/// under load should be a throughput multiplier, not just a spare).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplicaPolicy {
    /// Always read the primary; a down primary makes the batch's query
    /// unavailable. The no-replication-routing baseline.
    PrimaryOnly,
    /// Read the primary when it is live; otherwise walk the chain to the
    /// first live successor, paying the retry policy's timeout per dead
    /// copy skipped (failures are discovered by timing out, not by
    /// health gossip).
    FailoverOnly,
    /// Health-aware: read the live copy with the shortest queue (fewest
    /// accumulated load units / earliest free disk), tie-broken in chain
    /// order. No timeout penalty — routing already knows who is down.
    NearestFreeQueue,
    /// Health-aware load-balanced round-robin: rotate reads across the
    /// live copies keyed on the logical clock, spreading load evenly.
    RoundRobin,
    /// Page-granular spreading: split each disk's page batch across all
    /// live copies instead of routing the whole batch to one of them.
    /// The shared-scan policy — replicas become read bandwidth for a
    /// single (possibly merged) schedule. No timeout penalty.
    Spread,
}

impl ReplicaPolicy {
    /// Every whole-query routing policy, in report order. Excludes
    /// [`ReplicaPolicy::Spread`]: at whole-batch granularity spreading
    /// degenerates into [`ReplicaPolicy::NearestFreeQueue`]-style
    /// balancing, so the availability sweeps keep their four-policy axis
    /// and `spread` is exercised by the shared-scan path instead.
    pub const ALL: [ReplicaPolicy; 4] = [
        ReplicaPolicy::PrimaryOnly,
        ReplicaPolicy::FailoverOnly,
        ReplicaPolicy::NearestFreeQueue,
        ReplicaPolicy::RoundRobin,
    ];

    /// The accepted names and aliases, for error messages and CLI help.
    pub const ACCEPTED_NAMES: &'static str = "primary, failover, nearest, roundrobin, spread";

    /// Stable name (accepted back by [`ReplicaPolicy::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            ReplicaPolicy::PrimaryOnly => "primary",
            ReplicaPolicy::FailoverOnly => "failover",
            ReplicaPolicy::NearestFreeQueue => "nearest",
            ReplicaPolicy::RoundRobin => "roundrobin",
            ReplicaPolicy::Spread => "spread",
        }
    }

    /// Parses a policy from a (case-insensitive) name, mirroring
    /// `MethodKind::parse`. Equivalent to the [`std::str::FromStr`] impl.
    ///
    /// # Errors
    /// [`SimError::UnknownPolicy`] (which lists the accepted names) for
    /// anything else.
    pub fn parse(name: &str) -> Result<Self> {
        name.parse()
    }
}

impl std::str::FromStr for ReplicaPolicy {
    type Err = SimError;

    fn from_str(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "primary" | "primary-only" => Ok(ReplicaPolicy::PrimaryOnly),
            "failover" | "failover-only" => Ok(ReplicaPolicy::FailoverOnly),
            "nearest" | "nearest-free-queue" => Ok(ReplicaPolicy::NearestFreeQueue),
            "roundrobin" | "round-robin" | "rr" => Ok(ReplicaPolicy::RoundRobin),
            "spread" => Ok(ReplicaPolicy::Spread),
            _ => Err(SimError::UnknownPolicy { name: name.into() }),
        }
    }
}

impl std::fmt::Display for ReplicaPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened to one query under a fault schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Every touched bucket had a live copy; the query completed.
    Served {
        /// Degraded response time in bucket-retrieval units (including
        /// slow-disk inflation and timeout penalties).
        response_time: u64,
        /// Buckets served by a chain backup instead of their primary.
        failover_buckets: u64,
        /// Detection penalty units charged to failover batches (0 when
        /// nothing failed over).
        timeout_penalty: u64,
    },
    /// Some touched bucket had no live copy; the query cannot complete.
    /// An error outcome, not a panic.
    Unavailable {
        /// Buckets with no live copy.
        dead_buckets: u64,
    },
    // (An explicit enum rather than Result so that "the disk array lost
    // data" flows through statistics as a countable outcome.)
}

impl QueryOutcome {
    /// The response time, when served.
    pub fn response_time(&self) -> Option<u64> {
        match self {
            QueryOutcome::Served { response_time, .. } => Some(*response_time),
            QueryOutcome::Unavailable { .. } => None,
        }
    }

    /// Whether the query completed.
    pub fn is_served(&self) -> bool {
        matches!(self, QueryOutcome::Served { .. })
    }
}

/// Executes one query's access histogram against the fault schedule at
/// logical time `t` and returns its outcome.
///
/// `hist[d]` is the number of the query's buckets whose *primary* lives
/// on disk `d` (from [`decluster_methods::DiskCounts::access_histogram`]
/// or the naive walk — identical either way). With `chained` set, a down
/// disk's batch fails over to its chain successor `(d + 1) mod M`, paying
/// the policy's detection penalty; without replication any touched down
/// disk makes the query unavailable.
///
/// Deterministic, and the served response time is never below the
/// fault-free `max(hist)`: live disks keep at least their own load, slow
/// factors only inflate (`factor >= 1` is enforced at construction), and
/// a failed disk's entire share lands on its single chain successor.
///
/// # Panics
/// Panics if `hist.len()` differs from the schedule's disk count (caller
/// bug — both derive from the same allocation).
pub fn degraded_outcome(
    hist: &[u64],
    schedule: &FaultSchedule,
    t: u64,
    policy: &RetryPolicy,
    chained: bool,
) -> QueryOutcome {
    degraded_outcome_with(hist, schedule, t, policy, chained, &mut Vec::new())
}

/// As [`degraded_outcome`], accumulating per-disk loads into a
/// caller-owned buffer (cleared and resized first) so per-query stream
/// scoring allocates nothing once the buffer has grown. The outcome is
/// identical to [`degraded_outcome`] for any buffer state.
///
/// # Panics
/// As [`degraded_outcome`].
pub fn degraded_outcome_with(
    hist: &[u64],
    schedule: &FaultSchedule,
    t: u64,
    policy: &RetryPolicy,
    chained: bool,
    loads: &mut Vec<u64>,
) -> QueryOutcome {
    let m = schedule.num_disks() as usize;
    assert_eq!(hist.len(), m, "histogram arity {} != M = {m}", hist.len());
    let scale = |count: u64, state: DiskState| -> u64 {
        match state {
            DiskState::Slow(f) => (count as f64 * f).ceil() as u64,
            _ => count,
        }
    };
    loads.clear();
    loads.resize(m, 0);
    let mut failover_buckets = 0u64;
    let mut timeout_penalty = 0u64;
    let mut dead_buckets = 0u64;
    for (d, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let state = schedule.state_at(d as u32, t);
        if state.is_live() {
            loads[d] += scale(count, state);
            continue;
        }
        if !chained {
            dead_buckets += count;
            continue;
        }
        let backup = (d + 1) % m;
        let backup_state = schedule.state_at(backup as u32, t);
        if !backup_state.is_live() {
            dead_buckets += count;
            continue;
        }
        // The whole batch moves to the chain successor after detection.
        loads[backup] += scale(count, backup_state) + policy.detection_units();
        failover_buckets += count;
        timeout_penalty += policy.detection_units();
    }
    if dead_buckets > 0 {
        return QueryOutcome::Unavailable { dead_buckets };
    }
    QueryOutcome::Served {
        response_time: loads.iter().copied().max().unwrap_or(0),
        failover_buckets,
        timeout_penalty,
    }
}

/// The r-way generalization of [`degraded_outcome_with`]: each bucket
/// has copies on its primary and `replicas` chain successors, and
/// `selection` decides which live copy serves each batch.
///
/// * `replicas = 0` ignores `selection` and reproduces the unreplicated
///   path (`chained = false`): any touched down disk makes the query
///   unavailable.
/// * `replicas = 1` with [`ReplicaPolicy::FailoverOnly`] is bit-identical
///   to `degraded_outcome_with(…, chained = true, …)` — the classic
///   chain.
/// * [`ReplicaPolicy::PrimaryOnly`] never reads a backup, so a down
///   primary is an unavailability even when copies exist.
/// * [`ReplicaPolicy::FailoverOnly`] pays the retry policy's
///   `detection_units` once per dead copy skipped before the first live
///   one.
/// * [`ReplicaPolicy::NearestFreeQueue`] and [`ReplicaPolicy::RoundRobin`]
///   are health-aware (no timeout penalty) and may serve from a backup
///   even when the primary is live, spreading load across copies.
/// * [`ReplicaPolicy::Spread`] splits each disk's batch across *all*
///   live copies (page-granular balancing, no timeout penalty); with no
///   live copy the batch is unavailable like the others.
///
/// Deterministic for a given `(hist, schedule, t)`; batches are resolved
/// in disk order, so `NearestFreeQueue`'s queue lengths are well-defined.
///
/// # Panics
/// As [`degraded_outcome`]; also if `replicas >= M` (an r-way chain
/// would wrap onto its own primary — construction-validated upstream).
pub fn degraded_outcome_r(
    hist: &[u64],
    schedule: &FaultSchedule,
    t: u64,
    policy: &RetryPolicy,
    replicas: u32,
    selection: ReplicaPolicy,
    loads: &mut Vec<u64>,
) -> QueryOutcome {
    let m = schedule.num_disks() as usize;
    assert_eq!(hist.len(), m, "histogram arity {} != M = {m}", hist.len());
    assert!(
        (replicas as usize) < m,
        "replica count {replicas} >= M = {m}"
    );
    let scale = |count: u64, state: DiskState| -> u64 {
        match state {
            DiskState::Slow(f) => (count as f64 * f).ceil() as u64,
            _ => count,
        }
    };
    loads.clear();
    loads.resize(m, 0);
    let mut failover_buckets = 0u64;
    let mut timeout_penalty = 0u64;
    let mut dead_buckets = 0u64;
    for (d, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let primary_state = schedule.state_at(d as u32, t);
        if selection == ReplicaPolicy::Spread && replicas > 0 {
            // Page-granular: split the batch across every live copy in
            // the chain instead of picking one serving offset.
            let live = || {
                (0..=replicas)
                    .filter(|&j| schedule.state_at((d as u32 + j) % m as u32, t).is_live())
            };
            let n_live = live().count() as u64;
            if n_live == 0 {
                dead_buckets += count;
                continue;
            }
            for (idx, j) in live().enumerate() {
                let share = count / n_live + u64::from((idx as u64) < count % n_live);
                if share == 0 {
                    continue;
                }
                let s = (d + j as usize) % m;
                loads[s] += scale(share, schedule.state_at(s as u32, t));
                if j > 0 {
                    failover_buckets += share;
                }
            }
            continue;
        }
        // The chain offset of the copy that serves this batch, or None
        // when the policy cannot reach a live copy.
        let serving_offset: Option<u32> = match selection {
            _ if replicas == 0 => primary_state.is_live().then_some(0),
            ReplicaPolicy::PrimaryOnly => primary_state.is_live().then_some(0),
            ReplicaPolicy::FailoverOnly => schedule.first_live_copy(d as u32, t, replicas),
            ReplicaPolicy::NearestFreeQueue => (0..=replicas)
                .filter(|&j| schedule.state_at((d as u32 + j) % m as u32, t).is_live())
                .min_by_key(|&j| (loads[(d + j as usize) % m], j)),
            ReplicaPolicy::RoundRobin => {
                let mut live = (0..=replicas)
                    .filter(|&j| schedule.state_at((d as u32 + j) % m as u32, t).is_live());
                let n_live = live.clone().count() as u64;
                live.nth((t % n_live.max(1)) as usize)
            }
            ReplicaPolicy::Spread => unreachable!("spread with replicas > 0 is handled above"),
        };
        let Some(j) = serving_offset else {
            dead_buckets += count;
            continue;
        };
        let serving = (d + j as usize) % m;
        let serving_state = schedule.state_at(serving as u32, t);
        let penalty = if selection == ReplicaPolicy::FailoverOnly {
            policy.detection_units() * u64::from(j)
        } else {
            0
        };
        loads[serving] += scale(count, serving_state) + penalty;
        if j > 0 {
            failover_buckets += count;
        }
        timeout_penalty += penalty;
    }
    if dead_buckets > 0 {
        return QueryOutcome::Unavailable { dead_buckets };
    }
    QueryOutcome::Served {
        response_time: loads.iter().copied().max().unwrap_or(0),
        failover_buckets,
        timeout_penalty,
    }
}

/// Per-method statistics of a fault-injection run: the healthy and
/// degraded response-time distributions side by side, plus availability.
#[derive(Clone, Debug)]
pub struct FaultMethodStats {
    /// Row label (`DM`, `DM+chain`, …).
    pub name: String,
    /// Fault-free response-time summary of the same query stream.
    pub healthy: Summary,
    /// Degraded response-time summary over the *served* queries.
    pub degraded: Summary,
    /// Queries that completed.
    pub served: usize,
    /// Queries with no live copy of some bucket.
    pub unavailable: usize,
    /// Fraction of queries served, in `[0, 1]`.
    pub availability: f64,
    /// Total buckets served by chain backups.
    pub failover_buckets: u64,
}

/// The output of a fault-injection experiment: one row per method
/// variant (unreplicated and `+chain`).
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Human-readable experiment title.
    pub title: String,
    /// The schedule driving the run, as [`FaultSchedule::describe`]s it.
    pub schedule: String,
    /// One row per method variant.
    pub rows: Vec<FaultMethodStats>,
}

/// The outcome of rebuilding a failed disk from its chain replicas while
/// a foreground workload keeps running.
#[derive(Clone, Debug)]
pub struct RebuildReport {
    /// The disk being rebuilt.
    pub failed_disk: u32,
    /// Pages replayed from the replica disk.
    pub pages_rebuilt: u64,
    /// Wall-clock time (ms) until the last rebuild chunk was written.
    pub rebuild_ms: f64,
    /// Foreground throughput with all disks healthy, queries/s.
    pub healthy_qps: f64,
    /// Foreground throughput during the rebuild, queries/s.
    pub degraded_qps: f64,
    /// `healthy_qps / degraded_qps` — how much the rebuild (plus the
    /// failover load) slows the foreground; `>= 1` by construction.
    pub interference_factor: f64,
}

/// Pages per rebuild chunk: the replica disk interleaves one chunk of
/// sequential replica reads between foreground batches, the classic
/// throttled-rebuild policy.
const REBUILD_CHUNK_PAGES: u64 = 16;

/// Simulates rebuilding `failed`'s contents from its chain replica while
/// `queries` run closed-loop with `clients` users.
///
/// The replica source is the chain successor `(failed + 1) mod M`: it
/// holds the backup copy of every page the failed disk owned. Foreground
/// batches destined for the failed disk are served by the source too
/// (chained failover), and between foreground batches the source disk
/// reads one [`REBUILD_CHUNK_PAGES`]-page sequential chunk of replica
/// data until the whole failed disk has been replayed. Deterministic.
///
/// # Errors
/// [`SimError::BadFaultSpec`] when `failed` is out of range.
///
/// # Panics
/// Panics if `clients == 0`.
pub fn simulate_rebuild(
    dir: &GridDirectory,
    params: &DiskParams,
    failed: u32,
    queries: &[decluster_grid::BucketRegion],
    clients: usize,
) -> Result<RebuildReport> {
    simulate_rebuild_obs(dir, params, failed, queries, clients, &Obs::disabled())
}

/// [`simulate_rebuild`] with an observability handle: records rebuild
/// progress counters (`rebuild.pages`, `rebuild.chunks`,
/// `rebuild.interleaved_chunks`, `rebuild.drained_chunks`) plus
/// `rebuild_start` / `rebuild_done` trace events, and runs the healthy
/// baseline through the position-model closed loop so its `multiuser.*`
/// metrics land in the same snapshot. Rebuild stays entirely on the
/// position model (page identities matter here: the source disk replays
/// the failed disk's replica pages interleaved with its own), so both
/// sides of the interference ratio use the same elevator accounting.
///
/// # Errors
/// As [`simulate_rebuild`].
///
/// # Panics
/// As [`simulate_rebuild`].
pub fn simulate_rebuild_obs(
    dir: &GridDirectory,
    params: &DiskParams,
    failed: u32,
    queries: &[decluster_grid::BucketRegion],
    clients: usize,
    obs: &Obs,
) -> Result<RebuildReport> {
    assert!(clients > 0, "closed loop needs at least one client");
    let m = dir.num_disks();
    if failed >= m {
        return Err(SimError::BadFaultSpec {
            spec: format!("disk {failed}"),
            reason: format!("rebuild target out of range (M = {m})"),
        });
    }
    let m = m as usize;
    let source = (failed as usize + 1) % m;
    let loads = dir.load_vector();
    let pages_rebuilt = loads[failed as usize];
    let chunk_pages: Vec<u64> = (0..REBUILD_CHUNK_PAGES.min(pages_rebuilt.max(1))).collect();
    let chunk_ms = params.batch_ms(&chunk_pages, loads[source]);
    let total_chunks = pages_rebuilt.div_ceil(REBUILD_CHUNK_PAGES);
    let mut chunks_left = total_chunks;

    if obs.enabled() {
        obs.counter_add("rebuild.pages", pages_rebuilt);
        obs.counter_add("rebuild.chunks", total_chunks);
    }
    if obs.trace_enabled() {
        obs.emit(
            TraceEvent::new("rebuild_start")
                .with("failed_disk", failed)
                .with("source_disk", source)
                .with("pages", pages_rebuilt)
                .with("chunks", total_chunks),
        );
    }

    let healthy =
        crate::multiuser::run_closed_loop_positions_obs(dir, params, queries, clients, obs);

    // Degraded closed loop: the failed disk's batches are redirected to
    // the source, which also interleaves one rebuild chunk before each
    // foreground batch it serves.
    let mut plan = decluster_grid::IoPlan::new();
    let mut disk_free_at = vec![0.0f64; m];
    let mut clients_ready = vec![0.0f64; clients];
    let mut makespan: f64 = 0.0;
    for region in queries {
        // The least-busy client issues next (deterministic tie-break on
        // index, matching a min-heap over ready times).
        let (slot, _) = clients_ready
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("clients > 0");
        let issue_at = clients_ready[slot];
        dir.io_plan_into(region, &mut plan);
        let mut completion = issue_at;
        for d in 0..m {
            // Chained failover: the failed disk's pages move to the
            // source, which serves them merged with its own in one
            // elevator pass (both runs are sorted).
            if d == failed as usize && d != source {
                continue;
            }
            let pages = plan.disk_pages(d);
            let moved = if d == source && d != failed as usize {
                plan.disk_pages(failed as usize)
            } else {
                &[]
            };
            if pages.is_empty() && moved.is_empty() {
                continue;
            }
            let mut start = issue_at.max(disk_free_at[d]);
            if d == source && chunks_left > 0 {
                // One rebuild chunk jumps the queue ahead of this batch.
                start += chunk_ms;
                chunks_left -= 1;
            }
            let service = params.batch_ms_merged(pages, moved, loads[d]);
            disk_free_at[d] = start + service;
            completion = completion.max(start + service);
        }
        makespan = makespan.max(completion);
        clients_ready[slot] = completion;
    }
    // Remaining chunks drain back-to-back once the foreground is done.
    let rebuild_ms = disk_free_at[source] + chunks_left as f64 * chunk_ms;
    if obs.enabled() {
        obs.counter_add("rebuild.interleaved_chunks", total_chunks - chunks_left);
        obs.counter_add("rebuild.drained_chunks", chunks_left);
    }

    let degraded_qps = if makespan > 0.0 {
        queries.len() as f64 / (makespan / 1000.0)
    } else {
        0.0
    };
    let interference_factor = if degraded_qps > 0.0 {
        healthy.throughput_qps / degraded_qps
    } else {
        1.0
    };
    if obs.trace_enabled() {
        obs.emit(
            TraceEvent::new("rebuild_done")
                .with("failed_disk", failed)
                .with("rebuild_ms", rebuild_ms)
                .with("interference_factor", interference_factor),
        );
    }
    Ok(RebuildReport {
        failed_disk: failed,
        pages_rebuilt,
        rebuild_ms,
        healthy_qps: healthy.throughput_qps,
        degraded_qps,
        interference_factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_dead_needs_both_links_down() {
        let s = FaultSchedule::healthy(4)
            .fail_stop(1, 0)
            .unwrap()
            .fail_stop(2, 10)
            .unwrap();
        // Only disk 1 down: its backup (2) is still live.
        assert!(!s.chain_dead(1, 5));
        // After t=10 both 1 and 2 are down: 1's chain is dead, and so is
        // 2's only if disk 3 is down too (it is not).
        assert!(s.chain_dead(1, 10));
        assert!(!s.chain_dead(2, 10));
        // Wrap-around: backup of the last disk is disk 0.
        let wrap = FaultSchedule::healthy(4)
            .fail_stop(3, 0)
            .unwrap()
            .fail_stop(0, 0)
            .unwrap();
        assert!(wrap.chain_dead(3, 0));
    }

    #[test]
    fn healthy_schedule_reports_everything_up() {
        let s = FaultSchedule::healthy(4);
        assert!(s.is_healthy());
        assert_eq!(s.describe(), "healthy");
        for d in 0..4 {
            for t in [0, 5, 1000] {
                assert_eq!(s.state_at(d, t), DiskState::Up);
            }
        }
        assert_eq!(s.failed_mask(7), vec![false; 4]);
    }

    #[test]
    fn fail_stop_is_permanent() {
        let s = FaultSchedule::healthy(4).fail_stop(2, 10).unwrap();
        assert_eq!(s.state_at(2, 9), DiskState::Up);
        assert_eq!(s.state_at(2, 10), DiskState::Down);
        assert_eq!(s.state_at(2, 1_000_000), DiskState::Down);
        assert_eq!(s.state_at(1, 10), DiskState::Up);
        assert_eq!(s.failed_mask(10), vec![false, false, true, false]);
    }

    #[test]
    fn transient_window_recovers() {
        let s = FaultSchedule::healthy(3).transient(0, 5, 8).unwrap();
        assert_eq!(s.state_at(0, 4), DiskState::Up);
        assert_eq!(s.state_at(0, 5), DiskState::Down);
        assert_eq!(s.state_at(0, 7), DiskState::Down);
        assert_eq!(s.state_at(0, 8), DiskState::Up);
    }

    #[test]
    fn slow_windows_compose_by_max_and_down_wins() {
        let s = FaultSchedule::healthy(2)
            .slow(1, 2.0, 0, 10)
            .unwrap()
            .slow(1, 3.0, 5, 10)
            .unwrap()
            .transient(1, 8, 9)
            .unwrap();
        assert_eq!(s.state_at(1, 2), DiskState::Slow(2.0));
        assert_eq!(s.state_at(1, 6), DiskState::Slow(3.0));
        assert_eq!(s.state_at(1, 8), DiskState::Down);
        assert_eq!(s.state_at(1, 9), DiskState::Slow(3.0));
        assert_eq!(s.state_at(1, 10), DiskState::Up);
        assert!((DiskState::Slow(3.0).latency_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(FaultSchedule::healthy(4).fail_stop(4, 0).is_err());
        assert!(FaultSchedule::healthy(4).transient(0, 5, 5).is_err());
        assert!(FaultSchedule::healthy(4).transient(0, 6, 5).is_err());
        assert!(FaultSchedule::healthy(4).slow(0, 0.5, 0, 5).is_err());
        assert!(FaultSchedule::healthy(4).slow(0, f64::NAN, 0, 5).is_err());
        assert!(FaultSchedule::healthy(4).slow(0, 1.5, 0, 5).is_ok());
    }

    #[test]
    fn parse_roundtrips_the_grammar() {
        let spec = "fail:2@10, transient:0@5..8, slow:1x2.5@0..100";
        let s = FaultSchedule::parse(spec, 4).unwrap();
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.state_at(2, 10), DiskState::Down);
        assert_eq!(s.state_at(0, 6), DiskState::Down);
        assert_eq!(s.state_at(1, 50), DiskState::Slow(2.5));
        // describe() re-emits the grammar, which re-parses identically.
        let reparsed = FaultSchedule::parse(&s.describe(), 4).unwrap();
        assert_eq!(reparsed, s);
    }

    #[test]
    fn parse_accepts_empty_and_none() {
        assert!(FaultSchedule::parse("", 4).unwrap().is_healthy());
        assert!(FaultSchedule::parse("none", 4).unwrap().is_healthy());
        assert!(FaultSchedule::parse("  none  ", 4).unwrap().is_healthy());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "zorp:1@2",
            "fail:1",
            "fail:x@2",
            "fail:1@y",
            "fail:9@2", // disk out of range for m = 4
            "transient:0@5",
            "transient:0@8..5",
            "slow:0@1..2",     // missing factor
            "slow:0x0.5@1..2", // factor < 1
            "slow:0xq@1..2",
            "fail:1@2, zorp",
        ] {
            let err = FaultSchedule::parse(bad, 4).unwrap_err();
            assert!(
                matches!(err, SimError::BadFaultSpec { .. }),
                "{bad}: {err:?}"
            );
            // Error message is one line (CLI prints it verbatim).
            assert!(!err.to_string().contains('\n'), "{bad}");
        }
    }

    #[test]
    fn degraded_outcome_healthy_matches_plain_rt() {
        let s = FaultSchedule::healthy(4);
        let hist = [3u64, 1, 0, 2];
        let out = degraded_outcome(&hist, &s, 0, &RetryPolicy::default(), true);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 3,
                failover_buckets: 0,
                timeout_penalty: 0
            }
        );
        assert_eq!(out.response_time(), Some(3));
        assert!(out.is_served());
    }

    #[test]
    fn failed_primary_fails_over_to_chain_successor() {
        let s = FaultSchedule::healthy(4).fail_stop(0, 0).unwrap();
        let hist = [3u64, 1, 0, 2];
        // Instant detection: disk 1 inherits disk 0's 3 buckets -> load 4.
        let out = degraded_outcome(&hist, &s, 0, &RetryPolicy::instant(), true);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 4,
                failover_buckets: 3,
                timeout_penalty: 0
            }
        );
        // Default policy adds 2 detection units to the failover batch.
        let out = degraded_outcome(&hist, &s, 0, &RetryPolicy::default(), true);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 6,
                failover_buckets: 3,
                timeout_penalty: 2
            }
        );
    }

    #[test]
    fn unreplicated_failure_is_unavailable_not_a_panic() {
        let s = FaultSchedule::healthy(4).fail_stop(0, 0).unwrap();
        let hist = [3u64, 1, 0, 2];
        let out = degraded_outcome(&hist, &s, 0, &RetryPolicy::default(), false);
        assert_eq!(out, QueryOutcome::Unavailable { dead_buckets: 3 });
        assert_eq!(out.response_time(), None);
        // A query not touching the failed disk is unaffected.
        let out = degraded_outcome(&[0, 1, 0, 2], &s, 0, &RetryPolicy::default(), false);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 2,
                failover_buckets: 0,
                timeout_penalty: 0
            }
        );
    }

    #[test]
    fn adjacent_double_failure_is_unavailable_even_chained() {
        let s = FaultSchedule::healthy(4)
            .fail_stop(0, 0)
            .unwrap()
            .fail_stop(1, 0)
            .unwrap();
        let out = degraded_outcome(&[2, 1, 1, 1], &s, 0, &RetryPolicy::default(), true);
        assert_eq!(out, QueryOutcome::Unavailable { dead_buckets: 2 });
        // Non-adjacent double failure with chaining still serves.
        let s2 = FaultSchedule::healthy(4)
            .fail_stop(0, 0)
            .unwrap()
            .fail_stop(2, 0)
            .unwrap();
        let out = degraded_outcome(&[2, 1, 1, 1], &s2, 0, &RetryPolicy::instant(), true);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 3,
                failover_buckets: 3,
                timeout_penalty: 0
            }
        );
    }

    #[test]
    fn slow_disk_inflates_by_ceil() {
        let s = FaultSchedule::healthy(2).slow(0, 1.5, 0, 10).unwrap();
        // 3 buckets at 1.5x -> ceil(4.5) = 5.
        let out = degraded_outcome(&[3, 1], &s, 5, &RetryPolicy::default(), true);
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 5,
                failover_buckets: 0,
                timeout_penalty: 0
            }
        );
        // Outside the window the disk is back to full speed.
        let out = degraded_outcome(&[3, 1], &s, 10, &RetryPolicy::default(), true);
        assert_eq!(out.response_time(), Some(3));
    }

    #[test]
    fn failover_onto_a_slow_backup_scales_too() {
        let s = FaultSchedule::healthy(3)
            .fail_stop(0, 0)
            .unwrap()
            .slow(1, 2.0, 0, 10)
            .unwrap();
        // Disk 0's 2 buckets land on slow disk 1: ceil(2*2) + 0 penalty,
        // plus disk 1's own 1 bucket also at 2x.
        let out = degraded_outcome(&[2, 1, 1], &s, 0, &RetryPolicy::instant(), true);
        // loads[1] = ceil(1*2) + ceil(2*2) = 6.
        assert_eq!(out.response_time(), Some(6));
    }

    #[test]
    fn degraded_rt_never_beats_healthy_rt() {
        // Exhaustive-ish sweep: random-ish histograms under several
        // schedules; served outcomes are always >= max(hist).
        let schedules = [
            FaultSchedule::healthy(5),
            FaultSchedule::healthy(5).fail_stop(2, 0).unwrap(),
            FaultSchedule::healthy(5).slow(0, 3.0, 0, 100).unwrap(),
            FaultSchedule::healthy(5)
                .fail_stop(4, 0)
                .unwrap()
                .slow(0, 1.5, 0, 50)
                .unwrap(),
        ];
        for (i, schedule) in schedules.iter().enumerate() {
            for seed in 0u64..50 {
                let hist: Vec<u64> = (0..5)
                    .map(|d| (seed.wrapping_mul(d + 3).wrapping_mul(2654435761) >> 29) % 7)
                    .collect();
                let healthy = hist.iter().copied().max().unwrap();
                for t in [0u64, 25, 75] {
                    let out = degraded_outcome(&hist, schedule, t, &RetryPolicy::default(), true);
                    if let Some(rt) = out.response_time() {
                        assert!(
                            rt >= healthy,
                            "schedule {i} t {t} hist {hist:?}: {rt} < {healthy}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "histogram arity")]
    fn mismatched_histogram_is_a_caller_bug() {
        let s = FaultSchedule::healthy(4);
        let _ = degraded_outcome(&[1, 2], &s, 0, &RetryPolicy::default(), true);
    }

    #[test]
    fn from_events_validates_every_event() {
        let ok = FaultSchedule::from_events(
            4,
            [
                FaultEvent::FailStop { disk: 1, at: 5 },
                FaultEvent::Slow {
                    disk: 0,
                    factor: 2.0,
                    from: 0,
                    until: 9,
                },
            ],
        )
        .unwrap();
        assert_eq!(ok.events().len(), 2);
        for (bad, what) in [
            (FaultEvent::FailStop { disk: 4, at: 0 }, "disk >= M"),
            (
                FaultEvent::Transient {
                    disk: 0,
                    from: 9,
                    until: 3,
                },
                "empty window",
            ),
            (
                FaultEvent::Slow {
                    disk: 0,
                    factor: 0.5,
                    from: 0,
                    until: 9,
                },
                "slow factor < 1",
            ),
            (
                FaultEvent::Slow {
                    disk: 0,
                    factor: f64::NAN,
                    from: 0,
                    until: 9,
                },
                "non-finite factor",
            ),
        ] {
            let err = FaultSchedule::from_events(4, [bad]).unwrap_err();
            assert!(
                matches!(err, SimError::BadFaultSpec { .. }),
                "{what}: {err:?}"
            );
            assert!(!err.to_string().contains('\n'), "one-line error for {what}");
        }
    }

    #[test]
    fn replicas_dead_generalizes_chain_dead() {
        let s = FaultSchedule::healthy(5)
            .fail_stop(1, 0)
            .unwrap()
            .fail_stop(2, 0)
            .unwrap()
            .fail_stop(3, 0)
            .unwrap();
        // r = 1: disk 1's only backup (2) is down.
        assert!(s.replicas_dead(1, 0, 1));
        assert_eq!(s.replicas_dead(1, 0, 1), s.chain_dead(1, 0));
        // r = 2: copies {1,2,3} all down.
        assert!(s.replicas_dead(1, 0, 2));
        // r = 3: copy on disk 4 is live.
        assert!(!s.replicas_dead(1, 0, 3));
        assert_eq!(s.first_live_copy(1, 0, 3), Some(3));
        assert_eq!(s.first_live_copy(0, 0, 2), Some(0));
        assert_eq!(s.first_live_copy(1, 0, 2), None);
    }

    #[test]
    fn policy_names_roundtrip_and_reject_unknowns() {
        for p in ReplicaPolicy::ALL
            .into_iter()
            .chain(std::iter::once(ReplicaPolicy::Spread))
        {
            assert_eq!(ReplicaPolicy::parse(p.name()).unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(
            ReplicaPolicy::parse("Round-Robin").unwrap(),
            ReplicaPolicy::RoundRobin
        );
        assert_eq!(
            ReplicaPolicy::parse("NEAREST").unwrap(),
            ReplicaPolicy::NearestFreeQueue
        );
        assert_eq!(
            ReplicaPolicy::parse("SPREAD").unwrap(),
            ReplicaPolicy::Spread
        );
        // Spread is deliberately absent from the whole-query policy axis.
        assert!(!ReplicaPolicy::ALL.contains(&ReplicaPolicy::Spread));
        let err = ReplicaPolicy::parse("zorp").unwrap_err();
        assert!(matches!(err, SimError::UnknownPolicy { .. }));
        let msg = err.to_string();
        assert!(msg.contains("unknown replica policy"), "{msg}");
        for name in ["primary", "failover", "nearest", "roundrobin", "spread"] {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
        assert!(!msg.contains('\n'), "one-line error: {msg}");
    }

    #[test]
    fn r1_failover_matches_the_classic_chain_outcome() {
        let schedules = [
            FaultSchedule::healthy(5),
            FaultSchedule::healthy(5).fail_stop(2, 0).unwrap(),
            FaultSchedule::healthy(5)
                .fail_stop(0, 0)
                .unwrap()
                .fail_stop(1, 0)
                .unwrap(),
            FaultSchedule::healthy(5)
                .fail_stop(4, 0)
                .unwrap()
                .slow(0, 1.5, 0, 50)
                .unwrap(),
        ];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for schedule in &schedules {
            for seed in 0u64..40 {
                let hist: Vec<u64> = (0..5)
                    .map(|d| (seed.wrapping_mul(d + 3).wrapping_mul(2654435761) >> 29) % 7)
                    .collect();
                for t in [0u64, 25, 75] {
                    for policy in [RetryPolicy::default(), RetryPolicy::instant()] {
                        let classic =
                            degraded_outcome_with(&hist, schedule, t, &policy, true, &mut a);
                        let rway = degraded_outcome_r(
                            &hist,
                            schedule,
                            t,
                            &policy,
                            1,
                            ReplicaPolicy::FailoverOnly,
                            &mut b,
                        );
                        assert_eq!(classic, rway, "hist {hist:?} t {t}");
                        let unreplicated =
                            degraded_outcome_with(&hist, schedule, t, &policy, false, &mut a);
                        let r0 = degraded_outcome_r(
                            &hist,
                            schedule,
                            t,
                            &policy,
                            0,
                            ReplicaPolicy::FailoverOnly,
                            &mut b,
                        );
                        assert_eq!(unreplicated, r0, "hist {hist:?} t {t} (r = 0)");
                    }
                }
            }
        }
    }

    #[test]
    fn primary_only_ignores_live_backups() {
        let s = FaultSchedule::healthy(4).fail_stop(0, 0).unwrap();
        let out = degraded_outcome_r(
            &[2, 1, 1, 1],
            &s,
            0,
            &RetryPolicy::instant(),
            2,
            ReplicaPolicy::PrimaryOnly,
            &mut Vec::new(),
        );
        assert_eq!(out, QueryOutcome::Unavailable { dead_buckets: 2 });
    }

    #[test]
    fn deeper_chains_survive_adjacent_double_failures() {
        let s = FaultSchedule::healthy(4)
            .fail_stop(0, 0)
            .unwrap()
            .fail_stop(1, 0)
            .unwrap();
        let hist = [2u64, 1, 1, 1];
        // r = 1 dies (0's backup is 1); r = 2 fails over to disk 2.
        let r1 = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::instant(),
            1,
            ReplicaPolicy::FailoverOnly,
            &mut Vec::new(),
        );
        assert!(!r1.is_served());
        let r2 = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::instant(),
            2,
            ReplicaPolicy::FailoverOnly,
            &mut Vec::new(),
        );
        // Disk 2 serves its own 1 + disk 0's 2 + disk 1's 1 = 4.
        assert_eq!(
            r2,
            QueryOutcome::Served {
                response_time: 4,
                failover_buckets: 3,
                timeout_penalty: 0
            }
        );
        // With the default policy each skipped dead copy costs the
        // detection units: disk 0's batch skips two dead copies (2×2),
        // disk 1's skips one (2).
        let r2 = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::default(),
            2,
            ReplicaPolicy::FailoverOnly,
            &mut Vec::new(),
        );
        assert_eq!(
            r2,
            QueryOutcome::Served {
                response_time: 4 + 6,
                failover_buckets: 3,
                timeout_penalty: 6
            }
        );
    }

    #[test]
    fn nearest_free_queue_balances_across_copies() {
        // Healthy, r = 1: every batch may use primary or its successor;
        // nearest-free-queue picks whichever queue is shorter at that
        // point, so the max load can only improve on primary-only.
        let s = FaultSchedule::healthy(4);
        let hist = [6u64, 0, 2, 0];
        let nearest = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::instant(),
            1,
            ReplicaPolicy::NearestFreeQueue,
            &mut Vec::new(),
        );
        let primary = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::instant(),
            1,
            ReplicaPolicy::PrimaryOnly,
            &mut Vec::new(),
        );
        assert!(nearest.response_time().unwrap() <= primary.response_time().unwrap());
        assert!(nearest.is_served());
    }

    #[test]
    fn round_robin_rotates_on_the_logical_clock() {
        let s = FaultSchedule::healthy(3);
        let hist = [3u64, 0, 0];
        // r = 2, all live: t selects copy t % 3 for disk 0's batch.
        for t in 0u64..6 {
            let out = degraded_outcome_r(
                &hist,
                &s,
                t,
                &RetryPolicy::instant(),
                2,
                ReplicaPolicy::RoundRobin,
                &mut Vec::new(),
            );
            let expect_failover = if t % 3 == 0 { 0 } else { 3 };
            assert_eq!(
                out,
                QueryOutcome::Served {
                    response_time: 3,
                    failover_buckets: expect_failover,
                    timeout_penalty: 0
                },
                "t = {t}"
            );
        }
    }

    #[test]
    fn spread_splits_batches_across_live_copies() {
        let s = FaultSchedule::healthy(4);
        let hist = [7u64, 0, 0, 0];
        // r = 1, all live: 7 pages split 4/3 over disks 0 and 1.
        let out = degraded_outcome_r(
            &hist,
            &s,
            0,
            &RetryPolicy::instant(),
            1,
            ReplicaPolicy::Spread,
            &mut Vec::new(),
        );
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 4,
                failover_buckets: 3,
                timeout_penalty: 0
            }
        );
        // A dead primary shifts the whole batch to the live successor.
        let down = FaultSchedule::parse("fail:0@0", 4).unwrap();
        let out = degraded_outcome_r(
            &hist,
            &down,
            1,
            &RetryPolicy::instant(),
            1,
            ReplicaPolicy::Spread,
            &mut Vec::new(),
        );
        assert_eq!(
            out,
            QueryOutcome::Served {
                response_time: 7,
                failover_buckets: 7,
                timeout_penalty: 0
            }
        );
        // r = 0 degenerates to primary-only.
        let out = degraded_outcome_r(
            &hist,
            &down,
            1,
            &RetryPolicy::instant(),
            0,
            ReplicaPolicy::Spread,
            &mut Vec::new(),
        );
        assert!(matches!(out, QueryOutcome::Unavailable { dead_buckets: 7 }));
    }

    #[test]
    fn retry_policy_detection_units() {
        assert_eq!(RetryPolicy::default().detection_units(), 2);
        assert_eq!(RetryPolicy::instant().detection_units(), 0);
        assert_eq!(
            RetryPolicy {
                timeout_units: 3,
                max_retries: 2
            }
            .detection_units(),
            9
        );
    }

    mod rebuild {
        use super::*;
        use decluster_grid::{BucketCoord, BucketRegion, GridSpace};
        use decluster_methods::{DeclusteringMethod, DiskModulo};

        fn setup() -> (GridDirectory, Vec<BucketRegion>) {
            let space = GridSpace::new_2d(8, 8).unwrap();
            let dm = DiskModulo::new(&space, 4).unwrap();
            let dir = GridDirectory::build(space.clone(), 4, |b| dm.disk_of(b.as_slice()));
            let mut queries = Vec::new();
            for r in (0..7).step_by(2) {
                for c in (0..7).step_by(2) {
                    queries.push(
                        BucketRegion::new(
                            &space,
                            BucketCoord::from([r, c]),
                            BucketCoord::from([r + 1, c + 1]),
                        )
                        .unwrap(),
                    );
                }
            }
            (dir, queries)
        }

        #[test]
        fn rebuild_replays_the_failed_disks_pages() {
            let (dir, queries) = setup();
            let report = simulate_rebuild(&dir, &DiskParams::default(), 1, &queries, 2).unwrap();
            assert_eq!(report.failed_disk, 1);
            assert_eq!(report.pages_rebuilt, dir.load_vector()[1]);
            assert!(report.rebuild_ms > 0.0);
        }

        #[test]
        fn rebuild_interferes_with_foreground() {
            let (dir, queries) = setup();
            let report = simulate_rebuild(&dir, &DiskParams::default(), 0, &queries, 2).unwrap();
            assert!(report.degraded_qps > 0.0);
            assert!(
                report.degraded_qps <= report.healthy_qps + 1e-9,
                "degraded {} > healthy {}",
                report.degraded_qps,
                report.healthy_qps
            );
            assert!(report.interference_factor >= 1.0 - 1e-9);
        }

        #[test]
        fn rebuild_is_deterministic() {
            let (dir, queries) = setup();
            let a = simulate_rebuild(&dir, &DiskParams::default(), 2, &queries, 3).unwrap();
            let b = simulate_rebuild(&dir, &DiskParams::default(), 2, &queries, 3).unwrap();
            assert_eq!(a.rebuild_ms, b.rebuild_ms);
            assert_eq!(a.degraded_qps, b.degraded_qps);
        }

        #[test]
        fn rebuild_rejects_out_of_range_disk() {
            let (dir, queries) = setup();
            assert!(matches!(
                simulate_rebuild(&dir, &DiskParams::default(), 4, &queries, 1).unwrap_err(),
                SimError::BadFaultSpec { .. }
            ));
        }
    }
}
