use crate::eval::{DegradedContext, EvalContext};
use crate::events::{sharded_arrivals, DegradedServeConfig, LoopScratch, ServeConfig, ServeSample};
use crate::exec::{derive_point_seed, run_indexed, run_indexed_with};
use crate::faults::{FaultReport, FaultSchedule, ReplicaPolicy, RetryPolicy};
use crate::multiuser::{load_sweep_with_threads, LoadPoint, MultiUserEngine};
use crate::spec::ServeSpec;
use crate::stats::Quantiles;
use crate::workload::{
    partial_match_with_unspecified, random_region, rect_sides_for_area, InterArrival, ShapeSweep,
    SizeSweep,
};
use crate::{DiskParams, Result, SimError, Summary};
use decluster_grid::{BucketRegion, GridDirectory, GridSpace};
use decluster_methods::{AllocationMap, DeclusteringMethod, KernelCache, MethodRegistry, Scratch};
use decluster_obs::{Obs, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

/// One method's curve in a sweep: mean response time (or deviation) per
/// x-value. Points where the method does not apply (e.g. ECC at a
/// non-power-of-two disk count) are `NaN` and render as `-`.
#[derive(Clone, Debug)]
pub struct MethodSeries {
    /// Method name (`DM`, `FX`, `ECC`, `HCAM`, …).
    pub name: String,
    /// Mean response time at each x.
    pub means: Vec<f64>,
    /// Full summary statistics at each x (empty summary at NaN points).
    pub summaries: Vec<Summary>,
}

impl MethodSeries {
    fn new(name: String, len: usize) -> Self {
        MethodSeries {
            name,
            means: vec![f64::NAN; len],
            summaries: vec![Summary::of(&[]); len],
        }
    }
}

/// The output of one experiment: x-values, the optimal lower-bound curve,
/// and one series per method. This is the in-memory form of one paper
/// figure.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Human-readable experiment title.
    pub title: String,
    /// Label of the x axis.
    pub xlabel: String,
    /// The x-values visited.
    pub xs: Vec<f64>,
    /// Mean optimal response time `ceil(|Q|/M)` at each x.
    pub optimal: Vec<f64>,
    /// One curve per method.
    pub series: Vec<MethodSeries>,
}

impl SweepResult {
    /// The series for a method name, if present.
    pub fn series_for(&self, name: &str) -> Option<&MethodSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Mean of `series / optimal` across all points where both are finite
    /// and the optimum is nonzero — a single "deviation factor" per method.
    pub fn mean_deviation_factor(&self, name: &str) -> Option<f64> {
        let s = self.series_for(name)?;
        let mut ratios = Vec::new();
        for (m, o) in s.means.iter().zip(&self.optimal) {
            if m.is_finite() && *o > 0.0 {
                ratios.push(m / o);
            }
        }
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// A point of the database-size experiment (E6).
#[derive(Clone, Debug)]
pub struct DbSizePoint {
    /// Grid side length.
    pub side: u32,
    /// Query side length used at this grid size.
    pub query_side: u32,
}

/// One `(arrival rate, method)` cell of a serve sweep: offered versus
/// achieved throughput, latency mean and tails, utilization, the peak
/// in-flight count, and the mid-run samples.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// Offered arrival rate, queries/s.
    pub offered_qps: f64,
    /// Achieved completion throughput, queries/s.
    pub achieved_qps: f64,
    /// Mean issue-to-completion latency, ms.
    pub mean_latency_ms: f64,
    /// Exact nearest-rank p50/p95/p99 latency tails, ms.
    pub tail_ms: Quantiles,
    /// Mean disk utilization in `[0, 1]`.
    pub utilization: f64,
    /// High-water mark of concurrently in-flight queries.
    pub peak_in_flight: usize,
    /// Mid-run metric samples at the configured logical-time interval.
    pub samples: Vec<ServeSample>,
}

/// A per-method saturation curve: one [`ServePoint`] per offered rate
/// plus the knee — the largest offered rate the method still serves at
/// ≥95% of offered throughput.
#[derive(Clone, Debug)]
pub struct ServeCurve {
    /// Method name.
    pub method: String,
    /// One point per offered rate, in sweep order.
    pub points: Vec<ServePoint>,
    /// Saturation knee, queries/s (`0.0` when every rate saturates).
    pub knee_qps: f64,
}

/// Result of [`Experiment::run_serve_sweep`]: per-method saturation
/// curves over a shared arrival-rate sweep.
#[derive(Clone, Debug)]
pub struct ServeSweep {
    /// Human-readable description of the sweep.
    pub title: String,
    /// Arrivals simulated per (rate, method) cell.
    pub clients: usize,
    /// The offered rates, queries/s.
    pub rates_qps: Vec<f64>,
    /// One curve per method, in registry order.
    pub curves: Vec<ServeCurve>,
}

/// One `(method, overlap, replica count)` cell of a share sweep: the
/// same arrival stream served once without batching and once with the
/// shared-scan window, plus the merge accounting of the shared run.
#[derive(Clone, Debug)]
pub struct SharePoint {
    /// Method name.
    pub method: String,
    /// Fraction of queries redirected to the hot pool, in `[0, 1]`.
    pub overlap: f64,
    /// Chain replicas per bucket (`r`) the merged reads spread over.
    pub replicas: u32,
    /// Achieved throughput without batching, queries/s.
    pub unshared_qps: f64,
    /// Achieved throughput with the batch window, queries/s.
    pub shared_qps: f64,
    /// Mean latency without batching, ms.
    pub unshared_mean_ms: f64,
    /// Mean latency with the batch window, ms.
    pub shared_mean_ms: f64,
    /// Batch windows flushed in the shared run.
    pub windows: u64,
    /// Queries that shared their window with at least one other query.
    pub merged_queries: u64,
    /// Duplicate pages the merge eliminated.
    pub pages_saved: u64,
}

impl SharePoint {
    /// Shared-over-unshared throughput ratio (`> 1` means batching won).
    pub fn speedup(&self) -> f64 {
        self.shared_qps / self.unshared_qps
    }
}

/// Result of [`Experiment::run_share_sweep`]: one [`SharePoint`] per
/// `(method, overlap, replicas)` cell, in that nesting order.
#[derive(Clone, Debug)]
pub struct ShareSweep {
    /// Human-readable description of the sweep.
    pub title: String,
    /// Arrivals simulated per cell.
    pub clients: usize,
    /// Offered arrival rate, queries/s.
    pub rate_qps: f64,
    /// Length of the shared-scan merge window, ms.
    pub batch_window_ms: f64,
    /// One point per cell, in sweep order.
    pub points: Vec<SharePoint>,
}

/// One `(fault schedule, replica count, policy)` cell of an availability
/// sweep: the fraction of arrivals served, the loss/shed/retry volume,
/// and what the configuration costs in response time and storage
/// relative to the fault-free unreplicated baseline.
#[derive(Clone, Debug)]
pub struct AvailPoint {
    /// The fault schedule this cell ran under (CLI grammar).
    pub schedule: String,
    /// Extra copies per bucket (`r`).
    pub replicas: u32,
    /// Replica-selection policy.
    pub policy: ReplicaPolicy,
    /// Served fraction of all arrivals, in `[0, 1]`.
    pub availability: f64,
    /// Arrivals served to completion.
    pub served: u64,
    /// Arrivals shed at admission.
    pub shed: u64,
    /// Arrivals lost after exhausting retries.
    pub lost: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Failover timeout penalties paid (chain hops).
    pub timeouts: u64,
    /// Requests served by a non-primary copy.
    pub failovers: u64,
    /// Achieved completion throughput, queries/s.
    pub achieved_qps: f64,
    /// Mean issue-to-completion latency over served requests, ms.
    pub mean_latency_ms: f64,
    /// Exact nearest-rank latency tails, ms.
    pub tail_ms: Quantiles,
    /// Mean latency relative to the sweep's first cell (the fault-free
    /// `r = 1` primary-only baseline); `1.0` for the baseline itself.
    pub rt_overhead: f64,
    /// Storage cost relative to no replication: `1 + r`.
    pub storage_overhead: f64,
}

/// Result of [`Experiment::run_avail_sweep`]: one [`AvailPoint`] per
/// `(schedule, replica count, policy)` combination for a single method,
/// in `schedules × replicas × ReplicaPolicy::ALL` order.
#[derive(Clone, Debug)]
pub struct AvailSweep {
    /// Human-readable description of the sweep.
    pub title: String,
    /// The method under study.
    pub method: String,
    /// Arrivals simulated per cell.
    pub clients: usize,
    /// Offered arrival rate, queries/s.
    pub rate_qps: f64,
    /// One point per cell, in sweep order.
    pub points: Vec<AvailPoint>,
}

/// A splitmix64-finalized hash of a query index mapped to `[0, 1)`: the
/// share sweep's hot-pool redirect test. A pure function of the index,
/// so overlap streams are identical at any thread count.
fn index_hash01(i: u64) -> f64 {
    decluster_methods::splitmix64_unit(i)
}

/// One evaluated sweep point: the x-value plus each method's summary and
/// the mean optimal bound. Sweep points are independent — each is scored
/// from its own derived RNG stream — which is what lets the executor fan
/// them out over threads without changing any number.
struct PointScore {
    x: f64,
    names: Vec<String>,
    summaries: Vec<Summary>,
    optimal: f64,
}

/// The experiment harness: a grid, a disk count, a query budget per data
/// point, and a seed. Each `run_*` method regenerates one of the paper's
/// figures as a [`SweepResult`].
///
/// # Evaluation engine
///
/// Every sweep materializes its methods once into an [`EvalContext`]
/// (per sweep when the grid and `M` are fixed, per point when they
/// vary), scoring queries through the `O(M · 2^k)` prefix-sum kernel
/// with a naive-walk fallback. Points are evaluated by a deterministic
/// parallel executor: each point draws from an RNG seeded by
/// `(seed, point index)`, so results are bit-identical for any thread
/// count, including one.
#[derive(Clone, Debug)]
pub struct Experiment {
    space: GridSpace,
    m: u32,
    queries_per_point: usize,
    seed: u64,
    include_baselines: bool,
    threads: usize,
    shards: usize,
    method_filter: Option<String>,
    obs: Obs,
    kernel_cache: Option<Arc<Mutex<KernelCache>>>,
}

impl Experiment {
    /// An experiment on `space` with `m` disks, 1000 queries per point,
    /// seed 1994, paper methods only, single-threaded.
    pub fn new(space: GridSpace, m: u32) -> Self {
        Experiment {
            space,
            m,
            queries_per_point: 1000,
            seed: 1994,
            include_baselines: false,
            threads: 1,
            shards: 1,
            method_filter: None,
            obs: Obs::disabled(),
            kernel_cache: None,
        }
    }

    /// Attaches a persist-v3 [`KernelCache`]: engine and context
    /// construction consults it before compiling each count kernel (a
    /// hit skips the build phase entirely) and inserts freshly built
    /// kernels back, so a cold run warms the cache for the next start.
    /// Results are byte-identical with or without a cache — a stored
    /// kernel is revalidated against the live allocation and a stale
    /// entry simply misses. The default is no cache (always build).
    pub fn with_kernel_cache(mut self, cache: Arc<Mutex<KernelCache>>) -> Self {
        self.kernel_cache = Some(cache);
        self
    }

    /// Sets how many random query placements are averaged per data point.
    pub fn with_queries_per_point(mut self, q: usize) -> Self {
        self.queries_per_point = q.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Also evaluates the RR and RND baselines.
    pub fn with_baselines(mut self, yes: bool) -> Self {
        self.include_baselines = yes;
        self
    }

    /// Sets how many worker threads evaluate sweep points; `0` means one
    /// per available CPU. Results do not depend on this setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Splits each healthy open-loop serve run over `shards` disk shards
    /// (clamped to at least one; [`ServeSpec::shards`] documents the
    /// semantics). Results are byte-identical at any shard count; the
    /// degraded (fault-injected) serve path has global feedback and
    /// always runs serially regardless of this setting.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Restricts the multi-user and serve engine set to one method by
    /// name (e.g. `"HCAM"`). The query stream and arrival streams are
    /// unchanged, so the surviving method's numbers are bit-identical
    /// to its column in the unrestricted run.
    pub fn with_method_filter(mut self, name: &str) -> Self {
        self.method_filter = Some(name.to_owned());
        self
    }

    /// Attaches an observability handle; every context the experiment
    /// materializes shares it, sweep points record per-point wall time
    /// and logical counters, and (when tracing is on) each completed
    /// point emits a `point_done` event. Deterministic metric values do
    /// not depend on the thread count. The default is the no-op
    /// recorder.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The grid under study.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }

    /// The disk count under study.
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Materializes the method set (and RT kernels) for one grid and
    /// disk count, serially. This is the per-point constructor for
    /// sweeps whose grid or `M` varies: those build contexts *inside*
    /// executor workers, where spawning further build threads would
    /// oversubscribe the machine.
    fn context_for(&self, space: &GridSpace, m: u32) -> EvalContext {
        let registry = MethodRegistry::with_seed(self.seed);
        match &self.kernel_cache {
            Some(cache) => {
                let maps = Self::materialize_maps(&registry, space, m, self.include_baselines);
                let mut guard = cache.lock().expect("kernel cache lock");
                EvalContext::from_maps_cached(m, maps, &mut guard)
            }
            None => EvalContext::materialize(&registry, space, m, self.include_baselines),
        }
        .with_obs(self.obs.clone())
    }

    fn materialize_maps(
        registry: &MethodRegistry,
        space: &GridSpace,
        m: u32,
        baselines: bool,
    ) -> Vec<AllocationMap> {
        let methods = if baselines {
            registry.with_baselines(space, m)
        } else {
            registry.paper_methods(space, m)
        };
        methods
            .iter()
            .map(|method| {
                AllocationMap::from_method(space, method.as_ref())
                    .expect("experiment grids are materializable")
            })
            .collect()
    }

    /// As [`Experiment::context_for`], materializing methods and
    /// building kernels on the experiment's worker threads — used for
    /// the per-sweep shared context, where kernel build is the dominant
    /// serial section. The context is identical to the serial one; the
    /// build wall time lands in the `kernel.build_ms` phase (wall-clock
    /// section, outside the deterministic contract).
    fn context_for_parallel(&self, space: &GridSpace, m: u32) -> EvalContext {
        let _build = self.obs.time_phase("kernel.build_ms");
        let registry = MethodRegistry::with_seed(self.seed);
        match &self.kernel_cache {
            // With a kernel cache attached, every stored kernel is
            // adopted without any build work, so the (serial) cached
            // constructor beats the parallel builder on the warm path;
            // on a cold path it additionally populates the cache.
            Some(cache) => {
                let maps = Self::materialize_maps(&registry, space, m, self.include_baselines);
                let mut guard = cache.lock().expect("kernel cache lock");
                EvalContext::from_maps_cached(m, maps, &mut guard)
            }
            None => EvalContext::build_parallel(
                &registry,
                space,
                m,
                self.include_baselines,
                self.effective_threads(),
            ),
        }
        .with_obs(self.obs.clone())
    }

    /// Evaluates `total` sweep points through the parallel executor,
    /// handing each point an RNG derived from `(seed, index)` and its
    /// worker's reusable [`Scratch`] (accumulators + query-plan cache;
    /// never observable in the results).
    fn run_points<F>(&self, total: usize, eval: F) -> Result<Vec<PointScore>>
    where
        F: Fn(usize, &mut StdRng, &mut Scratch) -> Result<PointScore> + Sync,
    {
        run_indexed_with(
            self.effective_threads(),
            total,
            &self.obs,
            Scratch::new,
            |i, scratch| {
                let _point_timer = self.obs.time_phase("sweep.point_ms");
                let mut rng = StdRng::seed_from_u64(derive_point_seed(self.seed, i as u64));
                let point = eval(i, &mut rng, scratch);
                if self.obs.enabled() {
                    self.obs.counter_add("sweep.points", 1);
                }
                if self.obs.trace_enabled() {
                    if let Ok(p) = &point {
                        self.obs.emit(
                            TraceEvent::new("point_done")
                                .with("point", i)
                                .with("x", p.x)
                                .with("methods", p.names.len()),
                        );
                    }
                }
                point
            },
        )
        .into_iter()
        .collect()
    }

    /// Assembles evaluated points into a [`SweepResult`], padding series
    /// that were absent at some points with NaN.
    fn assemble(title: String, xlabel: String, points: Vec<PointScore>) -> SweepResult {
        let total = points.len();
        let mut xs = Vec::with_capacity(total);
        let mut optimal = Vec::with_capacity(total);
        let mut series: Vec<MethodSeries> = Vec::new();
        for (i, point) in points.into_iter().enumerate() {
            xs.push(point.x);
            optimal.push(point.optimal);
            for (name, summary) in point.names.into_iter().zip(point.summaries) {
                let entry = match series.iter_mut().find(|s| s.name == name) {
                    Some(e) => e,
                    None => {
                        series.push(MethodSeries::new(name, total));
                        series.last_mut().expect("just pushed")
                    }
                };
                entry.means[i] = summary.mean;
                entry.summaries[i] = summary;
            }
        }
        SweepResult {
            title,
            xlabel,
            xs,
            optimal,
            series,
        }
    }

    /// Scores one point's query population against a context through the
    /// worker's scratch. `score_with` resets the scratch's plan cache at
    /// batch start, so a scratch that last served a different point — or
    /// a different *grid* (the database-size sweep) — cannot influence
    /// results or metrics.
    fn score_point(
        ctx: &EvalContext,
        x: f64,
        regions: &[BucketRegion],
        scratch: &mut Scratch,
    ) -> PointScore {
        let (summaries, optimal) = ctx.score_with(regions, scratch);
        PointScore {
            x,
            names: ctx.names().into_iter().map(str::to_owned).collect(),
            summaries,
            optimal,
        }
    }

    /// **Experiment 1 (query size).** Near-square queries of each area in
    /// the sweep, placed uniformly at random; reports mean RT per method
    /// and the optimal curve. Paper: "The query size was varied from
    /// area = 1 to area = 1024."
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for an empty sweep;
    /// [`SimError::QueryDoesNotFit`] if an area cannot be realized.
    pub fn run_size_sweep(&self, sweep: &SizeSweep) -> Result<SweepResult> {
        if sweep.areas().is_empty() {
            return Err(SimError::EmptySweep);
        }
        // Resolve every area's rectangle up front so shape errors surface
        // before any evaluation starts.
        let sides: Vec<Vec<u32>> = sweep
            .areas()
            .iter()
            .map(|&area| {
                rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
                    SimError::QueryDoesNotFit {
                        extents: vec![area as u32],
                        dims: self.space.dims().to_vec(),
                    }
                })
            })
            .collect::<Result<_>>()?;
        let ctx = self.context_for_parallel(&self.space, self.m);
        let points = self.run_points(sweep.areas().len(), |i, rng, scratch| {
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(rng, &self.space, &sides[i]))
                .collect::<Result<_>>()?;
            Ok(Self::score_point(
                &ctx,
                sweep.areas()[i] as f64,
                &regions,
                scratch,
            ))
        })?;
        Ok(Self::assemble(
            format!(
                "Query-size sweep: mean response time vs query area (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            "query area (buckets)".into(),
            points,
        ))
    }

    /// **Experiment 2 (query shape).** Fixed-area queries swept from a
    /// square (aspect 1:1) toward a line (1:2^p). Paper: "vary the full
    /// range from a square to a line by varying the aspect ratio from 1:1
    /// to 1:M."
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] if no aspect ratio divides the area.
    pub fn run_shape_sweep(&self, sweep: &ShapeSweep) -> Result<SweepResult> {
        if sweep.powers().is_empty() {
            return Err(SimError::EmptySweep);
        }
        let ctx = self.context_for_parallel(&self.space, self.m);
        let points = self.run_points(sweep.powers().len(), |i, rng, scratch| {
            let p = sweep.powers()[i];
            let (a, b) = ShapeSweep::sides_for(sweep.area(), p).expect("sweep admitted this power");
            let sides = vec![a, b];
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(rng, &self.space, &sides))
                .collect::<Result<_>>()?;
            Ok(Self::score_point(
                &ctx,
                f64::from(1u32 << p),
                &regions,
                scratch,
            ))
        })?;
        Ok(Self::assemble(
            format!(
                "Shape sweep: mean response time vs aspect ratio 1:x at area {} (grid {:?}, M={})",
                sweep.area(),
                self.space.dims(),
                self.m
            ),
            "aspect ratio 1:x".into(),
            points,
        ))
    }

    /// **Figure 5 sweep (number of disks).** Fixed query area, `M` swept.
    /// Paper Figure 5(a) uses small queries, 5(b) large ones.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] / [`SimError::QueryDoesNotFit`] as above.
    pub fn run_disk_sweep(&self, disk_counts: &[u32], area: u64) -> Result<SweepResult> {
        if disk_counts.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let sides = rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
            SimError::QueryDoesNotFit {
                extents: vec![area as u32],
                dims: self.space.dims().to_vec(),
            }
        })?;
        // One shared query population, generated before the fan-out, so
        // every M sees identical queries.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let regions: Vec<BucketRegion> = (0..self.queries_per_point)
            .map(|_| random_region(&mut rng, &self.space, &sides))
            .collect::<Result<_>>()?;
        let points = self.run_points(disk_counts.len(), |i, _rng, scratch| {
            let m = disk_counts[i];
            let ctx = self.context_for(&self.space, m);
            Ok(Self::score_point(&ctx, f64::from(m), &regions, scratch))
        })?;
        Ok(Self::assemble(
            format!(
                "Disk sweep: response time vs M at query area {} (grid {:?})",
                area,
                self.space.dims()
            ),
            "number of disks M".into(),
            points,
        ))
    }

    /// **Experiment 6 (database size).** Square grids of growing side;
    /// the query side grows with each point as given. Reports mean RT per
    /// method at each grid size.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] / construction errors as above.
    pub fn run_dbsize_sweep(&self, points: &[DbSizePoint]) -> Result<SweepResult> {
        if points.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let k = self.space.k();
        let scored = self.run_points(points.len(), |i, rng, scratch| {
            let pt = &points[i];
            let space = GridSpace::new(vec![pt.side; k])?;
            let ctx = self.context_for(&space, self.m);
            let sides = vec![pt.query_side.min(pt.side).max(1); k];
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(rng, &space, &sides))
                .collect::<Result<_>>()?;
            Ok(Self::score_point(
                &ctx,
                f64::from(pt.side),
                &regions,
                scratch,
            ))
        })?;
        Ok(Self::assemble(
            format!(
                "Database-size sweep: mean response time vs grid side (M={})",
                self.m
            ),
            "grid side (partitions per attribute)".into(),
            scored,
        ))
    }

    /// **Mixed workload (extension).** One data point per workload mix:
    /// mean RT per method over a query stream drawn from the mix. The
    /// x-axis indexes the supplied mixes (0, 1, …).
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no mixes; generation errors.
    pub fn run_mix(&self, mixes: &[crate::workload::WorkloadMix]) -> Result<SweepResult> {
        if mixes.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let ctx = self.context_for_parallel(&self.space, self.m);
        let points = self.run_points(mixes.len(), |i, rng, scratch| {
            let regions = mixes[i].generate(rng, &self.space, self.queries_per_point)?;
            Ok(Self::score_point(&ctx, i as f64, &regions, scratch))
        })?;
        Ok(Self::assemble(
            format!(
                "Mixed-workload sweep: mean response time per mix (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            "workload mix index".into(),
            points,
        ))
    }

    /// **Fault-injection workload (extension).** A single query stream
    /// of near-square queries of `area`, executed against `schedule`
    /// (query `i` at logical fault time `i`) under `policy`. Every method
    /// is reported twice — unreplicated and with chained-declustering
    /// failover (`<name>+chain`) — so the table shows degraded response
    /// time, availability, and what replication buys, side by side.
    ///
    /// Methods are scored by the deterministic parallel executor, one
    /// task per method variant; since the query stream and the schedule
    /// are fixed up front, results are bit-identical for any thread
    /// count.
    ///
    /// # Errors
    /// [`SimError::ScheduleMismatch`] when the schedule covers a
    /// different disk count; [`SimError::QueryDoesNotFit`] as above.
    pub fn run_fault_workload(
        &self,
        area: u64,
        schedule: &FaultSchedule,
        policy: &RetryPolicy,
    ) -> Result<FaultReport> {
        self.run_fault_workload_with(area, schedule, policy, 1, ReplicaPolicy::FailoverOnly)
    }

    /// [`Experiment::run_fault_workload`] with the replication depth and
    /// replica-selection policy exposed: the `<name>+chain` rows walk an
    /// `r`-way chain under `selection` instead of the default one-backup
    /// failover. `replicas = 1` with [`ReplicaPolicy::FailoverOnly`] is
    /// bit-identical to [`Experiment::run_fault_workload`].
    ///
    /// # Errors
    /// As [`Experiment::run_fault_workload`].
    ///
    /// # Panics
    /// Panics when `replicas` falls outside `1..M`.
    pub fn run_fault_workload_with(
        &self,
        area: u64,
        schedule: &FaultSchedule,
        policy: &RetryPolicy,
        replicas: u32,
        selection: ReplicaPolicy,
    ) -> Result<FaultReport> {
        let sides = rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
            SimError::QueryDoesNotFit {
                extents: vec![area as u32],
                dims: self.space.dims().to_vec(),
            }
        })?;
        // One shared stream: the fault clock is the query index, so the
        // whole stream is generated before any fan-out.
        let mut rng = StdRng::seed_from_u64(derive_point_seed(self.seed, 0));
        let regions: Vec<BucketRegion> = (0..self.queries_per_point)
            .map(|_| random_region(&mut rng, &self.space, &sides))
            .collect::<Result<_>>()?;
        let ctx = self.context_for_parallel(&self.space, self.m);
        let dctx =
            DegradedContext::new(&ctx, schedule, *policy)?.with_replication(replicas, selection);
        let variants = ctx.maps().len() * 2;
        let rows = run_indexed(self.effective_threads(), variants, &self.obs, |i| {
            dctx.score_variant(i / 2, &regions, i % 2 == 1)
        });
        Ok(FaultReport {
            title: format!(
                "Fault workload: degraded RT and availability at query area {} (grid {:?}, M={}, faults: {})",
                area,
                self.space.dims(),
                self.m,
                schedule.describe()
            ),
            schedule: schedule.describe(),
            rows,
        })
    }

    /// Materializes one [`GridDirectory`] and [`MultiUserEngine`] per
    /// method (the paper set, plus baselines when enabled), serially and
    /// before any fan-out — the engines are shared read-only across
    /// worker threads, so building them up front is what keeps sweep
    /// results independent of the thread count. Build wall time lands in
    /// the `multiuser.build_ms` phase.
    fn multiuser_dirs(&self) -> Vec<(String, GridDirectory)> {
        let _build = self.obs.time_phase("multiuser.build_ms");
        let registry = MethodRegistry::with_seed(self.seed);
        let methods = if self.include_baselines {
            registry.with_baselines(&self.space, self.m)
        } else {
            registry.paper_methods(&self.space, self.m)
        };
        methods
            .iter()
            .filter(|method| {
                self.method_filter
                    .as_deref()
                    .is_none_or(|f| method.name() == f)
            })
            .map(|method| {
                let dir = GridDirectory::build(self.space.clone(), self.m, |b| {
                    method.disk_of(b.as_slice())
                });
                (method.name().to_owned(), dir)
            })
            .collect()
    }

    fn multiuser_engines(&self) -> Vec<(String, MultiUserEngine)> {
        let dirs = self.multiuser_dirs();
        let _build = self.obs.time_phase("multiuser.build_ms");
        dirs.into_iter()
            .map(|(name, dir)| {
                let engine = match &self.kernel_cache {
                    Some(cache) => {
                        let map = AllocationMap::from_table(
                            dir.space(),
                            dir.num_disks(),
                            dir.disk_table(),
                        )
                        .expect("directory disk table is grid-shaped by construction");
                        let mut guard = cache.lock().expect("kernel cache lock");
                        match guard.lookup(&name, &map) {
                            // Warm: adopt the stored compiled kernel —
                            // zero build-phase work for this engine.
                            Some(kernel) => MultiUserEngine::with_kernel(&dir, Some(kernel)),
                            // Cold (or stale image): build as usual and
                            // persist the fresh kernel for the next start.
                            None => {
                                let engine = MultiUserEngine::new(&dir);
                                if let Some(k) = engine.serving().counts().kernel() {
                                    guard.insert(&name, &map, k);
                                }
                                engine
                            }
                        }
                    }
                    None => MultiUserEngine::new(&dir),
                };
                (name, engine)
            })
            .collect()
    }

    /// One shared near-square query stream of `area`, generated before
    /// any fan-out so every method and every load level replays the
    /// identical queries.
    fn shared_regions(&self, area: u64) -> Result<Vec<BucketRegion>> {
        let sides = rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
            SimError::QueryDoesNotFit {
                extents: vec![area as u32],
                dims: self.space.dims().to_vec(),
            }
        })?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.queries_per_point)
            .map(|_| random_region(&mut rng, &self.space, &sides))
            .collect()
    }

    /// **Multi-user throughput grid (extension).** Closed-loop throughput
    /// per method as the client count grows: every `(client count,
    /// method)` cell replays the same query stream of near-square
    /// queries of `area` through that method's [`MultiUserEngine`].
    /// Cells run on the deterministic parallel executor, one reusable
    /// [`LoopScratch`] per worker, so results are bit-identical for any
    /// thread count.
    ///
    /// The returned [`SweepResult`] has client counts on the x-axis,
    /// throughput (queries/s) as each series' means, per-cell latency
    /// summaries, and as `optimal` the ideal-spread service bound: `M`
    /// disks continuously busy, every page at the minimum per-page cost.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no client counts;
    /// [`SimError::QueryDoesNotFit`] as above.
    ///
    /// # Panics
    /// Panics if any client count is zero.
    pub fn run_multiuser_grid(
        &self,
        params: &DiskParams,
        clients: &[usize],
        area: u64,
    ) -> Result<SweepResult> {
        if clients.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(
            clients.iter().all(|&c| c > 0),
            "closed loop needs at least one client"
        );
        let regions = self.shared_regions(area)?;
        let engines = self.multiuser_engines();
        let nm = engines.len();
        let cells = run_indexed_with(
            self.effective_threads(),
            clients.len() * nm,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let report = engines[i % nm].1.closed_loop_obs(
                    params,
                    &regions,
                    clients[i / nm],
                    &self.obs,
                    ls,
                );
                (report.throughput_qps, report.latency)
            },
        );
        let bound_qps = 1000.0 * f64::from(self.m) / (area as f64 * params.per_page_ms());
        let mut series: Vec<MethodSeries> = engines
            .iter()
            .map(|(name, _)| MethodSeries::new(name.clone(), clients.len()))
            .collect();
        for (i, (qps, latency)) in cells.into_iter().enumerate() {
            let (ci, mi) = (i / nm, i % nm);
            series[mi].means[ci] = qps;
            series[mi].summaries[ci] = latency;
        }
        Ok(SweepResult {
            title: format!(
                "Multi-user closed loop: throughput (q/s) vs clients at query area {} (grid {:?}, M={})",
                area,
                self.space.dims(),
                self.m
            ),
            xlabel: "clients".into(),
            xs: clients.iter().map(|&c| c as f64).collect(),
            optimal: vec![bound_qps; clients.len()],
            series,
        })
    }

    /// **Open-loop load sweep (extension).** The classic latency-vs-load
    /// curves over the same engines and query stream as
    /// [`Experiment::run_multiuser_grid`]: Poisson arrivals at each rate
    /// (same draws for every method), fanned over the deterministic
    /// executor with the experiment's thread setting.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no rates;
    /// [`SimError::QueryDoesNotFit`] as above.
    pub fn run_load_sweep(
        &self,
        params: &DiskParams,
        rates_qps: &[f64],
        area: u64,
    ) -> Result<Vec<LoadPoint>> {
        if rates_qps.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let regions = self.shared_regions(area)?;
        let named = self.multiuser_dirs();
        let dirs: Vec<(&str, &GridDirectory)> = named
            .iter()
            .map(|(name, dir)| (name.as_str(), dir))
            .collect();
        Ok(load_sweep_with_threads(
            &dirs,
            params,
            &regions,
            rates_qps,
            self.seed,
            self.effective_threads(),
        ))
    }

    /// **Serve sweep (extension).** Per-method saturation-knee curves
    /// from the event-driven serving core: for every offered arrival
    /// rate, `clients` Poisson arrivals — sharded deterministically
    /// across the executor and identical for every method — stream
    /// through each method's serving engine, with mid-run metric
    /// samples every 1/32nd of the expected span. A curve's knee is the
    /// largest offered rate the method still completes at ≥95% of the
    /// offered throughput (`0.0` when even the lowest rate saturates).
    ///
    /// Cells fan out on the deterministic executor with one reusable
    /// [`LoopScratch`] per worker, so every table and every sample is
    /// bit-identical for any thread count.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no rates;
    /// [`SimError::QueryDoesNotFit`] as above.
    ///
    /// # Panics
    /// Panics when `clients` is zero or any rate is non-positive.
    pub fn run_serve_sweep(
        &self,
        params: &DiskParams,
        clients: usize,
        rates_qps: &[f64],
        area: u64,
    ) -> Result<ServeSweep> {
        if rates_qps.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(clients > 0, "serve needs at least one client");
        assert!(
            rates_qps.iter().all(|&r| r > 0.0),
            "arrival rate must be positive"
        );
        let regions = self.shared_regions(area)?;
        let engines = self.multiuser_engines();
        let nm = engines.len();
        let threads = self.effective_threads();
        // One arrival stream per rate, built before the fan-out so every
        // method replays the identical stream.
        let arrivals: Vec<Vec<f64>> = rates_qps
            .iter()
            .enumerate()
            .map(|(r, &rate)| {
                sharded_arrivals(
                    derive_point_seed(self.seed, r as u64),
                    clients,
                    InterArrival::Poisson { rate_qps: rate },
                    threads,
                    &self.obs,
                )
            })
            .collect();
        let cells = run_indexed_with(
            threads,
            rates_qps.len() * nm,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let (ri, mi) = (i / nm, i % nm);
                let cfg = ServeConfig {
                    sample_every_ms: (clients as f64 * 1000.0 / rates_qps[ri]) / 32.0,
                    ..ServeConfig::default()
                };
                // Cells already fan out across the executor's workers, so
                // each sharded run walks its shards inline (threads = 1).
                let rep = engines[mi].1.serving().serve_core_sharded(
                    params,
                    &regions,
                    &arrivals[ri],
                    &cfg,
                    self.shards.min(self.m as usize),
                    1,
                    &self.obs,
                    ls,
                );
                ServePoint {
                    offered_qps: rates_qps[ri],
                    achieved_qps: rep.report.throughput_qps,
                    mean_latency_ms: rep.report.latency.mean,
                    tail_ms: rep.report.tail,
                    utilization: rep.report.utilization,
                    peak_in_flight: rep.peak_in_flight,
                    samples: ls.samples().to_vec(),
                }
            },
        );
        let mut curves: Vec<ServeCurve> = engines
            .iter()
            .map(|(name, _)| ServeCurve {
                method: name.clone(),
                points: Vec::with_capacity(rates_qps.len()),
                knee_qps: 0.0,
            })
            .collect();
        for (i, point) in cells.into_iter().enumerate() {
            curves[i % nm].points.push(point);
        }
        for curve in &mut curves {
            curve.knee_qps = curve
                .points
                .iter()
                .filter(|p| p.achieved_qps >= 0.95 * p.offered_qps)
                .map(|p| p.offered_qps)
                .fold(0.0, f64::max);
        }
        Ok(ServeSweep {
            title: format!(
                "Serve sweep: {} open-loop clients per rate at query area {} (grid {:?}, M={})",
                clients,
                area,
                self.space.dims(),
                self.m
            ),
            clients,
            rates_qps: rates_qps.to_vec(),
            curves,
        })
    }

    /// **Degraded serve sweep (extension).** [`Experiment::run_serve_sweep`]
    /// with a fault schedule injected mid-run: same rates, same arrival
    /// streams, same query stream, but every cell serves through
    /// `schedule` under `r`-way chained replication and `policy`, with
    /// `retry` governing backoff. With the healthy schedule, `r = 1`,
    /// [`ReplicaPolicy::PrimaryOnly`], and shedding off, every number is
    /// bit-identical to the fault-free sweep.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no rates;
    /// [`SimError::ScheduleMismatch`] for a schedule covering a
    /// different disk count; [`SimError::QueryDoesNotFit`] as above.
    ///
    /// # Panics
    /// Panics when `clients` is zero, any rate is non-positive, or
    /// `replicas` falls outside `1..M`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_serve_sweep_degraded(
        &self,
        params: &DiskParams,
        clients: usize,
        rates_qps: &[f64],
        area: u64,
        schedule: &FaultSchedule,
        replicas: u32,
        policy: ReplicaPolicy,
        retry: RetryPolicy,
    ) -> Result<ServeSweep> {
        if rates_qps.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(clients > 0, "serve needs at least one client");
        assert!(
            rates_qps.iter().all(|&r| r > 0.0),
            "arrival rate must be positive"
        );
        if schedule.num_disks() != self.m {
            return Err(SimError::ScheduleMismatch {
                schedule_disks: schedule.num_disks(),
                experiment_disks: self.m,
            });
        }
        let regions = self.shared_regions(area)?;
        let engines = self.multiuser_engines();
        let nm = engines.len();
        let threads = self.effective_threads();
        let arrivals: Vec<Vec<f64>> = rates_qps
            .iter()
            .enumerate()
            .map(|(r, &rate)| {
                sharded_arrivals(
                    derive_point_seed(self.seed, r as u64),
                    clients,
                    InterArrival::Poisson { rate_qps: rate },
                    threads,
                    &self.obs,
                )
            })
            .collect();
        let cells = run_indexed_with(
            threads,
            rates_qps.len() * nm,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let (ri, mi) = (i / nm, i % nm);
                let cfg = DegradedServeConfig {
                    serve: ServeConfig {
                        sample_every_ms: (clients as f64 * 1000.0 / rates_qps[ri]) / 32.0,
                        ..ServeConfig::default()
                    },
                    max_in_flight: 0,
                    retry,
                    seed: self.seed,
                };
                let rep = engines[mi]
                    .1
                    .serving()
                    .serve_degraded_core(
                        params,
                        &regions,
                        &arrivals[ri],
                        schedule,
                        replicas,
                        policy,
                        &cfg,
                        &self.obs,
                        ls,
                    )
                    .expect("schedule pre-validated against M");
                ServePoint {
                    offered_qps: rates_qps[ri],
                    achieved_qps: rep.serve.report.throughput_qps,
                    mean_latency_ms: rep.serve.report.latency.mean,
                    tail_ms: rep.serve.report.tail,
                    utilization: rep.serve.report.utilization,
                    peak_in_flight: rep.serve.peak_in_flight,
                    samples: ls.samples().to_vec(),
                }
            },
        );
        let mut curves: Vec<ServeCurve> = engines
            .iter()
            .map(|(name, _)| ServeCurve {
                method: name.clone(),
                points: Vec::with_capacity(rates_qps.len()),
                knee_qps: 0.0,
            })
            .collect();
        for (i, point) in cells.into_iter().enumerate() {
            curves[i % nm].points.push(point);
        }
        for curve in &mut curves {
            curve.knee_qps = curve
                .points
                .iter()
                .filter(|p| p.achieved_qps >= 0.95 * p.offered_qps)
                .map(|p| p.offered_qps)
                .fold(0.0, f64::max);
        }
        Ok(ServeSweep {
            title: format!(
                "Degraded serve sweep: {} open-loop clients per rate at query area {} (grid {:?}, M={}, r={replicas}, policy {}, faults: {})",
                clients,
                area,
                self.space.dims(),
                self.m,
                policy.name(),
                schedule.describe()
            ),
            clients,
            rates_qps: rates_qps.to_vec(),
            curves,
        })
    }

    /// **Shared serve sweep (extension).** [`Experiment::run_serve_sweep`]
    /// through the shared-scan batching path: an `overlap` fraction of the
    /// query stream is redirected to one hot scan, and arrivals inside a
    /// `batch_window_ms` window merge into one deduplicated schedule
    /// spread over the `1 + replicas` chain copies
    /// ([`ReplicaPolicy::Spread`]).
    ///
    /// With `overlap == 0` and `batch_window_ms == 0` this delegates to
    /// [`Experiment::run_serve_sweep`] outright, so the output is
    /// byte-identical to the unshared sweep — the CLI's `--share 0
    /// --batch-window 0` pin.
    ///
    /// # Errors
    /// As [`Experiment::run_serve_sweep`]; also [`SimError::Spec`] when
    /// `replicas` reaches `M`.
    ///
    /// # Panics
    /// Panics when `clients` is zero, any rate is non-positive, `overlap`
    /// falls outside `[0, 1]`, or the window is negative or non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn run_serve_sweep_shared(
        &self,
        params: &DiskParams,
        clients: usize,
        rates_qps: &[f64],
        area: u64,
        overlap: f64,
        batch_window_ms: f64,
        replicas: u32,
    ) -> Result<ServeSweep> {
        if overlap == 0.0 && batch_window_ms == 0.0 {
            return self.run_serve_sweep(params, clients, rates_qps, area);
        }
        if rates_qps.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(clients > 0, "serve needs at least one client");
        assert!(
            rates_qps.iter().all(|&r| r > 0.0),
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&overlap),
            "overlap fraction must lie in [0, 1]"
        );
        assert!(
            batch_window_ms.is_finite() && batch_window_ms >= 0.0,
            "batch window must be finite and non-negative"
        );
        let base = self.shared_regions(area)?;
        let hot = base.first().expect("shared_regions is non-empty").clone();
        let regions: Vec<BucketRegion> = base
            .iter()
            .enumerate()
            .map(|(i, region)| {
                if index_hash01(i as u64) < overlap {
                    hot.clone()
                } else {
                    region.clone()
                }
            })
            .collect();
        let engines = self.multiuser_engines();
        let nm = engines.len();
        let threads = self.effective_threads();
        let arrivals: Vec<Vec<f64>> = rates_qps
            .iter()
            .enumerate()
            .map(|(r, &rate)| {
                sharded_arrivals(
                    derive_point_seed(self.seed, r as u64),
                    clients,
                    InterArrival::Poisson { rate_qps: rate },
                    threads,
                    &self.obs,
                )
            })
            .collect();
        let cells: Vec<Result<ServePoint>> = run_indexed_with(
            threads,
            rates_qps.len() * nm,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let (ri, mi) = (i / nm, i % nm);
                let run = ServeSpec::open(rates_qps[ri])
                    .seed(self.seed)
                    .sampling((clients as f64 * 1000.0 / rates_qps[ri]) / 32.0)
                    .share(batch_window_ms)
                    .replicas(replicas)
                    .policy(ReplicaPolicy::Spread)
                    .shards(self.shards.min(self.m as usize))
                    .run_with_arrivals(
                        &engines[mi].1,
                        params,
                        &regions,
                        &arrivals[ri],
                        &self.obs,
                        ls,
                    )?;
                Ok(ServePoint {
                    offered_qps: rates_qps[ri],
                    achieved_qps: run.report.throughput_qps,
                    mean_latency_ms: run.report.latency.mean,
                    tail_ms: run.report.tail,
                    utilization: run.report.utilization,
                    peak_in_flight: run.peak_in_flight,
                    samples: ls.samples().to_vec(),
                })
            },
        );
        let mut curves: Vec<ServeCurve> = engines
            .iter()
            .map(|(name, _)| ServeCurve {
                method: name.clone(),
                points: Vec::with_capacity(rates_qps.len()),
                knee_qps: 0.0,
            })
            .collect();
        for (i, point) in cells.into_iter().enumerate() {
            curves[i % nm].points.push(point?);
        }
        for curve in &mut curves {
            curve.knee_qps = curve
                .points
                .iter()
                .filter(|p| p.achieved_qps >= 0.95 * p.offered_qps)
                .map(|p| p.offered_qps)
                .fold(0.0, f64::max);
        }
        Ok(ServeSweep {
            title: format!(
                "Shared serve sweep: {} open-loop clients per rate, overlap {:.2}, {} ms window, r={} (query area {}, grid {:?}, M={})",
                clients,
                overlap,
                batch_window_ms,
                replicas,
                area,
                self.space.dims(),
                self.m
            ),
            clients,
            rates_qps: rates_qps.to_vec(),
            curves,
        })
    }

    /// **Share sweep (extension).** Shared-scan batching versus the plain
    /// serving path across query overlap and replica depth: for every
    /// `(method, overlap, r)` cell, `clients` Poisson arrivals at
    /// `rate_qps` replay a query stream in which an `overlap` fraction of
    /// queries is redirected to a small hot pool of identical scans, once
    /// through the unbatched engine and once through a
    /// `batch_window_ms`-wide shared-scan window spreading merged reads
    /// over the `1 + r` chain copies ([`ReplicaPolicy::Spread`]).
    ///
    /// The redirect is a pure function of the query index, and both runs
    /// of a cell replay the identical arrival and query streams, so the
    /// shared-vs-unshared delta isolates the merge. Cells fan out on the
    /// deterministic executor with one reusable [`LoopScratch`] per
    /// worker; every number is bit-identical for any thread count.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no overlaps or no replica counts;
    /// [`SimError::QueryDoesNotFit`] as above; [`SimError::Spec`] when a
    /// replica count reaches `M`.
    ///
    /// # Panics
    /// Panics when `clients` is zero, `rate_qps` is non-positive, any
    /// overlap falls outside `[0, 1]`, or the window is negative or
    /// non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn run_share_sweep(
        &self,
        params: &DiskParams,
        clients: usize,
        rate_qps: f64,
        area: u64,
        overlaps: &[f64],
        replicas: &[u32],
        batch_window_ms: f64,
    ) -> Result<ShareSweep> {
        if overlaps.is_empty() || replicas.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(clients > 0, "serve needs at least one client");
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        assert!(
            overlaps.iter().all(|&o| (0.0..=1.0).contains(&o)),
            "overlap fractions must lie in [0, 1]"
        );
        assert!(
            batch_window_ms.is_finite() && batch_window_ms >= 0.0,
            "batch window must be finite and non-negative"
        );
        let base = self.shared_regions(area)?;
        // The hot pool: one fixed region every redirected query rescans.
        // Using a single target maximizes page overlap inside a window,
        // which is the regime the batching is supposed to win in.
        let hot = base.first().expect("shared_regions is non-empty").clone();
        let streams: Vec<Vec<BucketRegion>> = overlaps
            .iter()
            .map(|&overlap| {
                base.iter()
                    .enumerate()
                    .map(|(i, region)| {
                        if index_hash01(i as u64) < overlap {
                            hot.clone()
                        } else {
                            region.clone()
                        }
                    })
                    .collect()
            })
            .collect();
        let engines = self.multiuser_engines();
        let nm = engines.len();
        let threads = self.effective_threads();
        let arrivals = sharded_arrivals(
            self.seed,
            clients,
            InterArrival::Poisson { rate_qps },
            threads,
            &self.obs,
        );
        let no = overlaps.len();
        let nr = replicas.len();
        let cells: Vec<Result<SharePoint>> = run_indexed_with(
            threads,
            nm * no * nr,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let (mi, oi, ri) = (i / (no * nr), (i / nr) % no, i % nr);
                let engine = &engines[mi].1;
                let queries = &streams[oi];
                let shards = self.shards.min(self.m as usize);
                let unshared = ServeSpec::open(rate_qps)
                    .seed(self.seed)
                    .shards(shards)
                    .run_with_arrivals(engine, params, queries, &arrivals, &self.obs, ls)?;
                let shared = ServeSpec::open(rate_qps)
                    .seed(self.seed)
                    .share(batch_window_ms)
                    .replicas(replicas[ri])
                    .policy(ReplicaPolicy::Spread)
                    .shards(shards)
                    .run_with_arrivals(engine, params, queries, &arrivals, &self.obs, ls)?;
                let sharing = shared.sharing.unwrap_or_default();
                Ok(SharePoint {
                    method: engines[mi].0.clone(),
                    overlap: overlaps[oi],
                    replicas: replicas[ri],
                    unshared_qps: unshared.report.throughput_qps,
                    shared_qps: shared.report.throughput_qps,
                    unshared_mean_ms: unshared.report.latency.mean,
                    shared_mean_ms: shared.report.latency.mean,
                    windows: sharing.windows,
                    merged_queries: sharing.merged_queries,
                    pages_saved: sharing.pages_saved,
                })
            },
        );
        let points = cells.into_iter().collect::<Result<Vec<SharePoint>>>()?;
        Ok(ShareSweep {
            title: format!(
                "Share sweep: {clients} arrivals at {rate_qps} q/s, {batch_window_ms} ms window, query area {area} (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            clients,
            rate_qps,
            batch_window_ms,
            points,
        })
    }

    /// **Availability sweep (extension).** One fault-injected serve run
    /// per `(schedule, replica count, policy)` cell for a single method
    /// (the first survivor of the method filter): `clients` Poisson
    /// arrivals at `rate_qps` stream through the serving engine while
    /// the schedule fails, slows, and recovers disks mid-run, under
    /// every [`ReplicaPolicy`] and each requested `r`-way chain depth.
    ///
    /// The arrival stream and query stream are shared across all cells
    /// (and match [`Experiment::run_serve_sweep`] for a single-rate
    /// sweep at the same rate, which is what pins the fault-free
    /// baseline cell bit-for-bit to the plain serve path). Cells fan out
    /// on the deterministic executor, so every number is bit-identical
    /// for any thread count.
    ///
    /// Put the healthy schedule first and `r = 1` first: the sweep's
    /// first cell (fault-free, `r = 1`, primary-only) is the baseline
    /// every cell's `rt_overhead` is measured against.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no schedules or no replica counts;
    /// [`SimError::ScheduleMismatch`] when any schedule covers a
    /// different disk count; [`SimError::QueryDoesNotFit`] as above.
    ///
    /// # Panics
    /// Panics when `clients` is zero, `rate_qps` is non-positive, or any
    /// replica count falls outside `1..M`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_avail_sweep(
        &self,
        params: &DiskParams,
        clients: usize,
        rate_qps: f64,
        area: u64,
        schedules: &[(String, FaultSchedule)],
        replicas: &[u32],
        retry: RetryPolicy,
        max_in_flight: usize,
    ) -> Result<AvailSweep> {
        if schedules.is_empty() || replicas.is_empty() {
            return Err(SimError::EmptySweep);
        }
        assert!(clients > 0, "avail needs at least one client");
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        assert!(
            replicas.iter().all(|&r| r >= 1 && r < self.m),
            "replica counts must lie in 1..M"
        );
        for (_, schedule) in schedules {
            if schedule.num_disks() != self.m {
                return Err(SimError::ScheduleMismatch {
                    schedule_disks: schedule.num_disks(),
                    experiment_disks: self.m,
                });
            }
        }
        let regions = self.shared_regions(area)?;
        let engines = self.multiuser_engines();
        let Some((method, engine)) = engines.first() else {
            // A method filter that matches nothing leaves no engine to
            // sweep — the caller's filter name is the problem.
            return Err(SimError::EmptySweep);
        };
        let threads = self.effective_threads();
        // One arrival stream shared by every cell, drawn exactly as a
        // single-rate serve sweep draws its first rate.
        let arrivals = sharded_arrivals(
            derive_point_seed(self.seed, 0),
            clients,
            InterArrival::Poisson { rate_qps },
            threads,
            &self.obs,
        );
        let cfg = DegradedServeConfig {
            serve: ServeConfig {
                sample_every_ms: (clients as f64 * 1000.0 / rate_qps) / 32.0,
                ..ServeConfig::default()
            },
            max_in_flight,
            retry,
            seed: self.seed,
        };
        let np = ReplicaPolicy::ALL.len();
        let per_schedule = replicas.len() * np;
        let cells = run_indexed_with(
            threads,
            schedules.len() * per_schedule,
            &self.obs,
            LoopScratch::new,
            |i, ls| {
                let (si, rest) = (i / per_schedule, i % per_schedule);
                let (ri, pi) = (rest / np, rest % np);
                let rep = engine
                    .serving()
                    .serve_degraded_core(
                        params,
                        &regions,
                        &arrivals,
                        &schedules[si].1,
                        replicas[ri],
                        ReplicaPolicy::ALL[pi],
                        &cfg,
                        &self.obs,
                        ls,
                    )
                    .expect("schedules pre-validated against M");
                AvailPoint {
                    schedule: schedules[si].0.clone(),
                    replicas: replicas[ri],
                    policy: ReplicaPolicy::ALL[pi],
                    availability: rep.availability(),
                    served: rep.served,
                    shed: rep.shed,
                    lost: rep.lost,
                    retries: rep.retries,
                    timeouts: rep.timeouts,
                    failovers: rep.failovers,
                    achieved_qps: rep.serve.report.throughput_qps,
                    mean_latency_ms: rep.serve.report.latency.mean,
                    tail_ms: rep.serve.report.tail,
                    rt_overhead: 1.0,
                    storage_overhead: f64::from(1 + replicas[ri]),
                }
            },
        );
        let mut points = cells;
        let baseline = points[0].mean_latency_ms;
        for p in &mut points {
            p.rt_overhead = if baseline > 0.0 {
                p.mean_latency_ms / baseline
            } else {
                1.0
            };
        }
        Ok(AvailSweep {
            title: format!(
                "Availability sweep: {method} serving {clients} arrivals at {rate_qps} q/s, query area {} (grid {:?}, M={})",
                area,
                self.space.dims(),
                self.m
            ),
            method: method.clone(),
            clients,
            rate_qps,
            points,
        })
    }

    /// **Partial-match table.** Mean RT per method for partial-match
    /// queries with 1, 2, … `k − 1` unspecified attributes (sampled), plus
    /// point queries at x = 0.
    ///
    /// # Errors
    /// Construction errors as above.
    pub fn run_partial_match(&self) -> Result<SweepResult> {
        let ctx = self.context_for_parallel(&self.space, self.m);
        let k = self.space.k();
        let points = self.run_points(k, |unspec, rng, scratch| {
            let queries =
                partial_match_with_unspecified(rng, &self.space, unspec, self.queries_per_point);
            let regions: Vec<BucketRegion> = queries
                .iter()
                .map(|q| q.region(&self.space).map_err(SimError::from))
                .collect::<Result<_>>()?;
            Ok(Self::score_point(&ctx, unspec as f64, &regions, scratch))
        })?;
        Ok(Self::assemble(
            format!(
                "Partial-match sweep: mean response time vs unspecified attributes (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            "unspecified attributes".into(),
            points,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> Experiment {
        Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
            .with_queries_per_point(64)
            .with_seed(3)
    }

    #[test]
    fn size_sweep_has_all_methods_and_bounds_hold() {
        let r = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![1, 4, 16, 64]))
            .unwrap();
        assert_eq!(r.xs, vec![1.0, 4.0, 16.0, 64.0]);
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["DM", "FX", "ECC", "HCAM"]);
        for s in &r.series {
            assert_eq!(s.means.len(), 4);
            for (mean, opt) in s.means.iter().zip(&r.optimal) {
                assert!(mean + 1e-9 >= *opt, "{} mean {mean} < opt {opt}", s.name);
            }
        }
        // Area 1: every method retrieves exactly one bucket.
        for s in &r.series {
            assert_eq!(s.means[0], 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![16]))
            .unwrap();
        let b = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![16]))
            .unwrap();
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.means, sb.means);
        }
    }

    /// The determinism contract of the parallel executor: any thread
    /// count yields byte-identical sweeps.
    #[test]
    fn thread_count_does_not_change_results() {
        let sweep = SizeSweep::explicit(vec![1, 4, 16, 64]);
        let sequential = experiment().with_threads(1).run_size_sweep(&sweep).unwrap();
        for threads in [2, 4, 0] {
            let parallel = experiment()
                .with_threads(threads)
                .run_size_sweep(&sweep)
                .unwrap();
            assert_eq!(sequential.xs, parallel.xs);
            assert_eq!(sequential.optimal, parallel.optimal);
            assert_eq!(sequential.series.len(), parallel.series.len());
            for (sa, sb) in sequential.series.iter().zip(&parallel.series) {
                assert_eq!(sa.name, sb.name);
                assert_eq!(sa.means, sb.means);
                assert_eq!(sa.summaries, sb.summaries);
            }
        }
    }

    #[test]
    fn shape_sweep_runs_square_to_line() {
        let r = experiment()
            .run_shape_sweep(&ShapeSweep::new(16, 8))
            .unwrap();
        // 16 = 4^2: powers 0 (4x4), 2 (2x8), 4 (1x16).
        assert_eq!(r.xs, vec![1.0, 4.0, 16.0]);
        // Optimal is flat (area fixed): ceil(16/8) = 2.
        for &o in &r.optimal {
            assert_eq!(o, 2.0);
        }
    }

    #[test]
    fn disk_sweep_marks_ecc_gaps_with_nan() {
        let r = experiment().run_disk_sweep(&[4, 6, 8], 16).unwrap();
        let ecc = r.series_for("ECC").unwrap();
        assert!(ecc.means[0].is_finite());
        assert!(ecc.means[1].is_nan(), "ECC should not apply at M=6");
        assert!(ecc.means[2].is_finite());
        let dm = r.series_for("DM").unwrap();
        assert!(dm.means.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn dbsize_sweep_runs_multiple_grids() {
        let pts = vec![
            DbSizePoint {
                side: 8,
                query_side: 2,
            },
            DbSizePoint {
                side: 16,
                query_side: 4,
            },
        ];
        let r = experiment().run_dbsize_sweep(&pts).unwrap();
        assert_eq!(r.xs, vec![8.0, 16.0]);
        for s in &r.series {
            assert!(s.means.iter().all(|m| m.is_finite()), "{}", s.name);
        }
    }

    #[test]
    fn partial_match_point_queries_have_rt_one() {
        let r = experiment().run_partial_match().unwrap();
        assert_eq!(r.xs[0], 0.0);
        for s in &r.series {
            assert_eq!(s.means[0], 1.0, "{} point-query RT must be 1", s.name);
        }
        // One unspecified attribute on a 16-wide grid with M=8: DM is
        // provably optimal (RT = ceil(16/8) = 2).
        let dm = r.series_for("DM").unwrap();
        assert_eq!(dm.means[1], 2.0);
    }

    #[test]
    fn mix_sweep_scores_each_mix() {
        use crate::workload::WorkloadMix;
        let point_heavy = WorkloadMix {
            point: 1.0,
            partial_match: 0.0,
            small_range: 0.0,
            large_range: 0.0,
            small_area: 4,
            large_area: 64,
        };
        let range_heavy = WorkloadMix {
            point: 0.0,
            partial_match: 0.0,
            small_range: 0.0,
            large_range: 1.0,
            small_area: 4,
            large_area: 64,
        };
        let r = experiment().run_mix(&[point_heavy, range_heavy]).unwrap();
        assert_eq!(r.xs, vec![0.0, 1.0]);
        // Pure point queries: every method at RT 1. Pure 64-area ranges:
        // everything at least the optimal 8.
        for s in &r.series {
            assert_eq!(s.means[0], 1.0, "{}", s.name);
            assert!(s.means[1] >= 8.0, "{}", s.name);
        }
        assert!(matches!(
            experiment().run_mix(&[]).unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(matches!(
            experiment().run_disk_sweep(&[], 4).unwrap_err(),
            SimError::EmptySweep
        ));
        assert!(matches!(
            experiment()
                .run_size_sweep(&SizeSweep::explicit(vec![]))
                .unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn fault_workload_reports_both_variants_per_method() {
        let schedule = FaultSchedule::healthy(8).fail_stop(3, 32).unwrap();
        let r = experiment()
            .run_fault_workload(16, &schedule, &RetryPolicy::default())
            .unwrap();
        assert_eq!(r.rows.len(), 8); // 4 paper methods x {plain, +chain}
        assert!(r.title.contains("fail:3@32"));
        for pair in r.rows.chunks(2) {
            let (plain, chain) = (&pair[0], &pair[1]);
            assert_eq!(format!("{}+chain", plain.name), chain.name);
            // Single failure: chained serves everything, degraded >= healthy.
            assert_eq!(chain.availability, 1.0, "{}", chain.name);
            assert_eq!(chain.unavailable, 0);
            assert!(chain.degraded.mean >= chain.healthy.mean, "{}", chain.name);
            assert!(chain.degraded.max >= chain.degraded.mean);
            // Unreplicated: queries from time 32 on that touch disk 3 die.
            assert!(plain.availability < 1.0, "{}", plain.name);
            assert_eq!(plain.served + plain.unavailable, 64);
        }
    }

    #[test]
    fn fault_workload_is_thread_count_invariant() {
        let schedule = FaultSchedule::healthy(8)
            .fail_stop(1, 10)
            .unwrap()
            .slow(5, 2.0, 0, 40)
            .unwrap();
        let base = experiment()
            .with_threads(1)
            .run_fault_workload(16, &schedule, &RetryPolicy::default())
            .unwrap();
        for threads in [2, 8, 0] {
            let other = experiment()
                .with_threads(threads)
                .run_fault_workload(16, &schedule, &RetryPolicy::default())
                .unwrap();
            assert_eq!(base.rows.len(), other.rows.len());
            for (a, b) in base.rows.iter().zip(&other.rows) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.degraded, b.degraded, "{} at {threads} threads", a.name);
                assert_eq!(a.healthy, b.healthy);
                assert_eq!(a.served, b.served);
                assert_eq!(a.unavailable, b.unavailable);
                assert_eq!(a.failover_buckets, b.failover_buckets);
            }
        }
    }

    #[test]
    fn fault_workload_healthy_schedule_changes_nothing() {
        let r = experiment()
            .run_fault_workload(16, &FaultSchedule::healthy(8), &RetryPolicy::default())
            .unwrap();
        for row in &r.rows {
            assert_eq!(row.availability, 1.0, "{}", row.name);
            assert_eq!(row.degraded.mean, row.healthy.mean, "{}", row.name);
            assert_eq!(row.failover_buckets, 0);
        }
    }

    #[test]
    fn fault_workload_rejects_mismatched_schedule() {
        assert!(matches!(
            experiment()
                .run_fault_workload(16, &FaultSchedule::healthy(4), &RetryPolicy::default())
                .unwrap_err(),
            SimError::ScheduleMismatch { .. }
        ));
    }

    #[test]
    fn multiuser_grid_reports_all_methods_under_the_bound() {
        let r = experiment()
            .run_multiuser_grid(&DiskParams::default(), &[1, 4, 8], 16)
            .unwrap();
        assert_eq!(r.xs, vec![1.0, 4.0, 8.0]);
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["DM", "FX", "ECC", "HCAM"]);
        for s in &r.series {
            for (&qps, &bound) in s.means.iter().zip(&r.optimal) {
                assert!(qps.is_finite() && qps > 0.0, "{}", s.name);
                assert!(qps <= bound + 1e-9, "{} {qps} above bound {bound}", s.name);
            }
            // More clients never hurt makespan-derived throughput here.
            assert!(s.means[2] >= s.means[0] - 1e-9, "{}", s.name);
        }
        assert!(matches!(
            experiment()
                .run_multiuser_grid(&DiskParams::default(), &[], 16)
                .unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn multiuser_grid_is_thread_count_invariant() {
        let params = DiskParams::default();
        let base = experiment()
            .with_threads(1)
            .run_multiuser_grid(&params, &[1, 2, 4, 8], 16)
            .unwrap();
        for threads in [2, 8, 0] {
            let other = experiment()
                .with_threads(threads)
                .run_multiuser_grid(&params, &[1, 2, 4, 8], 16)
                .unwrap();
            assert_eq!(base.xs, other.xs);
            for (a, b) in base.series.iter().zip(&other.series) {
                assert_eq!(a.name, b.name);
                for (x, y) in a.means.iter().zip(&b.means) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} at {threads} threads", a.name);
                }
                assert_eq!(a.summaries, b.summaries);
            }
        }
    }

    #[test]
    fn experiment_load_sweep_is_thread_count_invariant() {
        let params = DiskParams::default();
        let rates = [5.0, 50.0, 500.0];
        let base = experiment()
            .with_threads(1)
            .run_load_sweep(&params, &rates, 16)
            .unwrap();
        assert_eq!(base.len(), 3);
        for threads in [4, 0] {
            let other = experiment()
                .with_threads(threads)
                .run_load_sweep(&params, &rates, 16)
                .unwrap();
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.rate_qps.to_bits(), b.rate_qps.to_bits());
                for (ma, mb) in a.methods.iter().zip(&b.methods) {
                    assert_eq!(ma.name, mb.name);
                    assert_eq!(ma.mean_latency_ms.to_bits(), mb.mean_latency_ms.to_bits());
                    assert_eq!(ma.utilization.to_bits(), mb.utilization.to_bits());
                    assert_eq!(ma.tail_ms.p95.to_bits(), mb.tail_ms.p95.to_bits());
                    assert_eq!(ma.tail_ms.p99.to_bits(), mb.tail_ms.p99.to_bits());
                }
            }
        }
        assert!(matches!(
            experiment().run_load_sweep(&params, &[], 16).unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn experiment_serve_sweep_is_thread_count_invariant() {
        let params = DiskParams::default();
        let rates = [2.0, 200.0];
        let base = experiment()
            .with_threads(1)
            .run_serve_sweep(&params, 300, &rates, 16)
            .unwrap();
        assert_eq!(base.rates_qps, rates);
        for threads in [4, 0] {
            let other = experiment()
                .with_threads(threads)
                .run_serve_sweep(&params, 300, &rates, 16)
                .unwrap();
            for (a, b) in base.curves.iter().zip(&other.curves) {
                assert_eq!(a.method, b.method);
                assert_eq!(a.knee_qps.to_bits(), b.knee_qps.to_bits());
                for (pa, pb) in a.points.iter().zip(&b.points) {
                    assert_eq!(pa.achieved_qps.to_bits(), pb.achieved_qps.to_bits());
                    assert_eq!(pa.mean_latency_ms.to_bits(), pb.mean_latency_ms.to_bits());
                    assert_eq!(pa.tail_ms, pb.tail_ms);
                    assert_eq!(pa.peak_in_flight, pb.peak_in_flight);
                    assert_eq!(pa.samples, pb.samples);
                }
            }
        }
    }

    #[test]
    fn share_sweep_is_thread_count_invariant() {
        let params = DiskParams::default();
        let base = experiment()
            .with_threads(1)
            .run_share_sweep(&params, 300, 400.0, 16, &[0.0, 0.9], &[0, 1], 8.0)
            .unwrap();
        for threads in [4, 0] {
            let other = experiment()
                .with_threads(threads)
                .run_share_sweep(&params, 300, 400.0, 16, &[0.0, 0.9], &[0, 1], 8.0)
                .unwrap();
            assert_eq!(base.points.len(), other.points.len());
            for (a, b) in base.points.iter().zip(&other.points) {
                assert_eq!(a.method, b.method);
                assert_eq!(a.unshared_qps.to_bits(), b.unshared_qps.to_bits());
                assert_eq!(a.shared_qps.to_bits(), b.shared_qps.to_bits());
                assert_eq!(a.unshared_mean_ms.to_bits(), b.unshared_mean_ms.to_bits());
                assert_eq!(a.shared_mean_ms.to_bits(), b.shared_mean_ms.to_bits());
                assert_eq!(
                    (a.windows, a.merged_queries, a.pages_saved),
                    (b.windows, b.merged_queries, b.pages_saved)
                );
            }
        }
    }

    #[test]
    fn share_sweep_saves_pages_at_high_overlap() {
        let params = DiskParams::default();
        let sweep = experiment()
            .run_share_sweep(&params, 400, 800.0, 16, &[0.0, 1.0], &[1], 8.0)
            .unwrap();
        // Points nest method-major: [m0 o=0, m0 o=1, m1 o=0, ...].
        for pair in sweep.points.chunks(2) {
            let (cold, hot) = (&pair[0], &pair[1]);
            assert_eq!(cold.method, hot.method);
            assert!(
                hot.pages_saved > 0,
                "{}: full overlap must dedup pages",
                hot.method
            );
            assert!(hot.merged_queries > 0, "{}", hot.method);
            assert!(
                hot.pages_saved >= cold.pages_saved,
                "{}: overlap 1.0 saved {} < overlap 0.0 saved {}",
                hot.method,
                hot.pages_saved,
                cold.pages_saved
            );
        }
        assert!(matches!(
            experiment()
                .run_share_sweep(&params, 400, 800.0, 16, &[], &[1], 8.0)
                .unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn experiment_serve_sweep_finds_a_knee_and_samples() {
        let params = DiskParams::default();
        // 2 q/s is far below saturation for area 16 on 8 disks; 500 q/s
        // is far above it.
        let sweep = experiment()
            .run_serve_sweep(&params, 2000, &[2.0, 500.0], 16)
            .unwrap();
        for curve in &sweep.curves {
            assert_eq!(curve.points.len(), 2);
            let slow = &curve.points[0];
            let fast = &curve.points[1];
            assert!(
                slow.achieved_qps >= 0.95 * slow.offered_qps,
                "{}",
                curve.method
            );
            assert!(
                fast.achieved_qps < 0.95 * fast.offered_qps,
                "{}",
                curve.method
            );
            assert_eq!(curve.knee_qps, 2.0, "{}", curve.method);
            assert!(!slow.samples.is_empty());
            assert!(slow.tail_ms.p50 <= slow.tail_ms.p95);
            assert!(fast.mean_latency_ms > slow.mean_latency_ms);
            assert!(fast.peak_in_flight > slow.peak_in_flight);
        }
        assert!(matches!(
            experiment()
                .run_serve_sweep(&params, 300, &[], 16)
                .unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn experiment_serve_sweep_rejects_zero_clients() {
        let _ = experiment().run_serve_sweep(&DiskParams::default(), 0, &[5.0], 16);
    }

    #[test]
    fn degraded_serve_sweep_with_no_faults_matches_the_plain_sweep_bitwise() {
        let params = DiskParams::default();
        let rates = [20.0, 80.0];
        let plain = experiment()
            .run_serve_sweep(&params, 300, &rates, 16)
            .unwrap();
        let degraded = experiment()
            .run_serve_sweep_degraded(
                &params,
                300,
                &rates,
                16,
                &FaultSchedule::healthy(8),
                1,
                ReplicaPolicy::PrimaryOnly,
                RetryPolicy::default(),
            )
            .unwrap();
        for (a, b) in plain.curves.iter().zip(&degraded.curves) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.knee_qps.to_bits(), b.knee_qps.to_bits());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.achieved_qps.to_bits(), pb.achieved_qps.to_bits());
                assert_eq!(pa.mean_latency_ms.to_bits(), pb.mean_latency_ms.to_bits());
                assert_eq!(pa.tail_ms, pb.tail_ms);
                assert_eq!(pa.peak_in_flight, pb.peak_in_flight);
                assert_eq!(pa.samples, pb.samples);
            }
        }
    }

    #[test]
    fn degraded_serve_sweep_serves_through_a_fail_stop_with_failover() {
        let params = DiskParams::default();
        let schedule = FaultSchedule::healthy(8).fail_stop(2, 1000).unwrap();
        let sweep = experiment()
            .with_method_filter("HCAM")
            .run_serve_sweep_degraded(
                &params,
                300,
                &[40.0],
                16,
                &schedule,
                1,
                ReplicaPolicy::FailoverOnly,
                RetryPolicy::default(),
            )
            .unwrap();
        assert_eq!(sweep.curves.len(), 1);
        let p = &sweep.curves[0].points[0];
        // Every arrival still completes: the chain absorbs the failure.
        assert!(p.achieved_qps > 0.0);
        assert!(p.mean_latency_ms.is_finite());
        assert!(sweep.title.contains("fail:2@1000"));
        assert!(matches!(
            experiment()
                .run_serve_sweep_degraded(
                    &params,
                    300,
                    &[40.0],
                    16,
                    &FaultSchedule::healthy(4),
                    1,
                    ReplicaPolicy::FailoverOnly,
                    RetryPolicy::default(),
                )
                .unwrap_err(),
            SimError::ScheduleMismatch { .. }
        ));
    }

    fn avail_schedules() -> Vec<(String, FaultSchedule)> {
        vec![
            ("none".into(), FaultSchedule::healthy(8)),
            (
                "fail:3@2000".into(),
                FaultSchedule::healthy(8).fail_stop(3, 2000).unwrap(),
            ),
        ]
    }

    /// The acceptance pin: the sweep's first cell (healthy schedule,
    /// `r = 1`, primary-only, shedding off) reproduces the plain serve
    /// path bit for bit.
    #[test]
    fn avail_sweep_baseline_cell_matches_serve_sweep_bitwise() {
        let params = DiskParams::default();
        let exp = experiment().with_method_filter("HCAM");
        let serve = exp.run_serve_sweep(&params, 400, &[40.0], 16).unwrap();
        let avail = exp
            .run_avail_sweep(
                &params,
                400,
                40.0,
                16,
                &avail_schedules(),
                &[1, 2],
                RetryPolicy::default(),
                0,
            )
            .unwrap();
        assert_eq!(avail.method, "HCAM");
        assert_eq!(avail.points.len(), 2 * 2 * ReplicaPolicy::ALL.len());
        let base = &avail.points[0];
        assert_eq!(base.schedule, "none");
        assert_eq!(base.replicas, 1);
        assert_eq!(base.policy, ReplicaPolicy::PrimaryOnly);
        let sp = &serve.curves[0].points[0];
        assert_eq!(base.achieved_qps.to_bits(), sp.achieved_qps.to_bits());
        assert_eq!(base.mean_latency_ms.to_bits(), sp.mean_latency_ms.to_bits());
        assert_eq!(base.tail_ms, sp.tail_ms);
        assert_eq!(base.availability, 1.0);
        assert_eq!(base.rt_overhead, 1.0);
        assert_eq!(base.storage_overhead, 2.0);
        assert_eq!(base.shed + base.lost + base.retries + base.failovers, 0);
    }

    #[test]
    fn avail_sweep_failover_beats_primary_only_through_a_failure() {
        let params = DiskParams::default();
        let avail = experiment()
            .with_method_filter("HCAM")
            .run_avail_sweep(
                &params,
                400,
                40.0,
                16,
                &avail_schedules(),
                &[1],
                RetryPolicy::default(),
                0,
            )
            .unwrap();
        // Second schedule block: fail-stop of disk 3 mid-run.
        let faulted = &avail.points[ReplicaPolicy::ALL.len()..];
        let by_policy = |p: ReplicaPolicy| faulted.iter().find(|c| c.policy == p).unwrap();
        let primary = by_policy(ReplicaPolicy::PrimaryOnly);
        let failover = by_policy(ReplicaPolicy::FailoverOnly);
        assert!(primary.availability < 1.0);
        assert!(primary.lost > 0);
        assert_eq!(failover.availability, 1.0);
        assert!(failover.failovers > 0);
        // Surviving the failure costs response time, not requests.
        assert!(failover.rt_overhead >= 1.0);
    }

    #[test]
    fn avail_sweep_is_thread_count_invariant() {
        let params = DiskParams::default();
        let run = |threads| {
            experiment()
                .with_threads(threads)
                .with_method_filter("HCAM")
                .run_avail_sweep(
                    &params,
                    300,
                    40.0,
                    16,
                    &avail_schedules(),
                    &[1, 2],
                    RetryPolicy::default(),
                    8,
                )
                .unwrap()
        };
        let base = run(1);
        for threads in [4, 0] {
            let other = run(threads);
            assert_eq!(base.points.len(), other.points.len());
            for (a, b) in base.points.iter().zip(&other.points) {
                assert_eq!(
                    (a.schedule.as_str(), a.replicas, a.policy),
                    (b.schedule.as_str(), b.replicas, b.policy)
                );
                assert_eq!(a.availability.to_bits(), b.availability.to_bits());
                assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
                assert_eq!(a.achieved_qps.to_bits(), b.achieved_qps.to_bits());
                assert_eq!(a.tail_ms, b.tail_ms);
                assert_eq!(
                    (a.served, a.shed, a.lost, a.retries, a.timeouts, a.failovers),
                    (b.served, b.shed, b.lost, b.retries, b.timeouts, b.failovers)
                );
            }
        }
    }

    #[test]
    fn avail_sweep_rejects_bad_inputs() {
        let params = DiskParams::default();
        assert!(matches!(
            experiment()
                .run_avail_sweep(&params, 100, 40.0, 16, &[], &[1], RetryPolicy::default(), 0)
                .unwrap_err(),
            SimError::EmptySweep
        ));
        assert!(matches!(
            experiment()
                .run_avail_sweep(
                    &params,
                    100,
                    40.0,
                    16,
                    &[("none".into(), FaultSchedule::healthy(4))],
                    &[1],
                    RetryPolicy::default(),
                    0
                )
                .unwrap_err(),
            SimError::ScheduleMismatch { .. }
        ));
    }

    #[test]
    fn mean_deviation_factor_computes() {
        let r = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![4, 16, 64]))
            .unwrap();
        let f = r.mean_deviation_factor("DM").unwrap();
        assert!(f >= 1.0);
        assert!(r.mean_deviation_factor("NOPE").is_none());
    }

    #[test]
    fn baselines_included_on_request() {
        let r = Experiment::new(GridSpace::new_2d(8, 8).unwrap(), 4)
            .with_queries_per_point(16)
            .with_baselines(true)
            .run_size_sweep(&SizeSweep::explicit(vec![4]))
            .unwrap();
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"RR"));
        assert!(names.contains(&"RND"));
    }
}
