use crate::workload::{
    partial_match_with_unspecified, random_region, rect_sides_for_area, ShapeSweep, SizeSweep,
};
use crate::{optimal_response_time, Result, SimError, Summary};
use decluster_grid::{BucketRegion, GridSpace};
use decluster_methods::{AllocationMap, DeclusteringMethod, MethodRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One method's curve in a sweep: mean response time (or deviation) per
/// x-value. Points where the method does not apply (e.g. ECC at a
/// non-power-of-two disk count) are `NaN` and render as `-`.
#[derive(Clone, Debug)]
pub struct MethodSeries {
    /// Method name (`DM`, `FX`, `ECC`, `HCAM`, …).
    pub name: String,
    /// Mean response time at each x.
    pub means: Vec<f64>,
    /// Full summary statistics at each x (empty summary at NaN points).
    pub summaries: Vec<Summary>,
}

impl MethodSeries {
    fn new(name: String, len: usize) -> Self {
        MethodSeries {
            name,
            means: vec![f64::NAN; len],
            summaries: vec![Summary::of(&[]); len],
        }
    }
}

/// The output of one experiment: x-values, the optimal lower-bound curve,
/// and one series per method. This is the in-memory form of one paper
/// figure.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Human-readable experiment title.
    pub title: String,
    /// Label of the x axis.
    pub xlabel: String,
    /// The x-values visited.
    pub xs: Vec<f64>,
    /// Mean optimal response time `ceil(|Q|/M)` at each x.
    pub optimal: Vec<f64>,
    /// One curve per method.
    pub series: Vec<MethodSeries>,
}

impl SweepResult {
    /// The series for a method name, if present.
    pub fn series_for(&self, name: &str) -> Option<&MethodSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Mean of `series / optimal` across all points where both are finite
    /// and the optimum is nonzero — a single "deviation factor" per method.
    pub fn mean_deviation_factor(&self, name: &str) -> Option<f64> {
        let s = self.series_for(name)?;
        let mut ratios = Vec::new();
        for (m, o) in s.means.iter().zip(&self.optimal) {
            if m.is_finite() && *o > 0.0 {
                ratios.push(m / o);
            }
        }
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// A point of the database-size experiment (E6).
#[derive(Clone, Debug)]
pub struct DbSizePoint {
    /// Grid side length.
    pub side: u32,
    /// Query side length used at this grid size.
    pub query_side: u32,
}

/// The experiment harness: a grid, a disk count, a query budget per data
/// point, and a seed. Each `run_*` method regenerates one of the paper's
/// figures as a [`SweepResult`].
#[derive(Clone, Debug)]
pub struct Experiment {
    space: GridSpace,
    m: u32,
    queries_per_point: usize,
    seed: u64,
    include_baselines: bool,
}

impl Experiment {
    /// An experiment on `space` with `m` disks, 1000 queries per point,
    /// seed 1994, paper methods only.
    pub fn new(space: GridSpace, m: u32) -> Self {
        Experiment {
            space,
            m,
            queries_per_point: 1000,
            seed: 1994,
            include_baselines: false,
        }
    }

    /// Sets how many random query placements are averaged per data point.
    pub fn with_queries_per_point(mut self, q: usize) -> Self {
        self.queries_per_point = q.max(1);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Also evaluates the RR and RND baselines.
    pub fn with_baselines(mut self, yes: bool) -> Self {
        self.include_baselines = yes;
        self
    }

    /// The grid under study.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }

    /// The disk count under study.
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    fn maps_for(&self, space: &GridSpace, m: u32) -> Vec<AllocationMap> {
        let registry = MethodRegistry::with_seed(self.seed);
        let methods = if self.include_baselines {
            registry.with_baselines(space, m)
        } else {
            registry.paper_methods(space, m)
        };
        methods
            .iter()
            .map(|method| {
                AllocationMap::from_method(space, method.as_ref())
                    .expect("experiment grids are materializable")
            })
            .collect()
    }

    /// Scores `maps` against `regions`, returning per-map summaries plus
    /// the mean optimal bound.
    fn score(
        maps: &[AllocationMap],
        regions: &[BucketRegion],
        m: u32,
    ) -> (Vec<Summary>, f64) {
        let mut summaries = Vec::with_capacity(maps.len());
        for map in maps {
            let rts: Vec<u64> = regions.iter().map(|r| map.response_time(r)).collect();
            summaries.push(Summary::of_counts(&rts));
        }
        let opt_mean = if regions.is_empty() {
            0.0
        } else {
            regions
                .iter()
                .map(|r| optimal_response_time(r.num_buckets(), m) as f64)
                .sum::<f64>()
                / regions.len() as f64
        };
        (summaries, opt_mean)
    }

    /// Merges one x-point's scores into the named series, padding series
    /// that were absent at this point with NaN.
    fn merge_point(
        series: &mut Vec<MethodSeries>,
        names: &[&str],
        summaries: Vec<Summary>,
        point: usize,
        total_points: usize,
    ) {
        for (name, summary) in names.iter().zip(summaries) {
            let entry = match series.iter_mut().find(|s| s.name == *name) {
                Some(e) => e,
                None => {
                    series.push(MethodSeries::new((*name).to_owned(), total_points));
                    series.last_mut().expect("just pushed")
                }
            };
            entry.means[point] = summary.mean;
            entry.summaries[point] = summary;
        }
    }

    /// **Experiment 1 (query size).** Near-square queries of each area in
    /// the sweep, placed uniformly at random; reports mean RT per method
    /// and the optimal curve. Paper: "The query size was varied from
    /// area = 1 to area = 1024."
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for an empty sweep;
    /// [`SimError::QueryDoesNotFit`] if an area cannot be realized.
    pub fn run_size_sweep(&self, sweep: &SizeSweep) -> Result<SweepResult> {
        if sweep.areas().is_empty() {
            return Err(SimError::EmptySweep);
        }
        let maps = self.maps_for(&self.space, self.m);
        let names: Vec<&str> = maps.iter().map(|m| m.name()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = sweep.areas().len();
        for (i, &area) in sweep.areas().iter().enumerate() {
            let sides = rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
                SimError::QueryDoesNotFit {
                    extents: vec![area as u32],
                    dims: self.space.dims().to_vec(),
                }
            })?;
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(&mut rng, &self.space, &sides))
                .collect::<Result<_>>()?;
            let (summaries, opt) = Self::score(&maps, &regions, self.m);
            xs.push(area as f64);
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!(
                "Query-size sweep: mean response time vs query area (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            xlabel: "query area (buckets)".into(),
            xs,
            optimal,
            series,
        })
    }

    /// **Experiment 2 (query shape).** Fixed-area queries swept from a
    /// square (aspect 1:1) toward a line (1:2^p). Paper: "vary the full
    /// range from a square to a line by varying the aspect ratio from 1:1
    /// to 1:M."
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] if no aspect ratio divides the area.
    pub fn run_shape_sweep(&self, sweep: &ShapeSweep) -> Result<SweepResult> {
        if sweep.powers().is_empty() {
            return Err(SimError::EmptySweep);
        }
        let maps = self.maps_for(&self.space, self.m);
        let names: Vec<&str> = maps.iter().map(|m| m.name()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = sweep.powers().len();
        for (i, &p) in sweep.powers().iter().enumerate() {
            let (a, b) =
                ShapeSweep::sides_for(sweep.area(), p).expect("sweep admitted this power");
            let sides = vec![a, b];
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(&mut rng, &self.space, &sides))
                .collect::<Result<_>>()?;
            let (summaries, opt) = Self::score(&maps, &regions, self.m);
            xs.push(f64::from(1u32 << p));
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!(
                "Shape sweep: mean response time vs aspect ratio 1:x at area {} (grid {:?}, M={})",
                sweep.area(),
                self.space.dims(),
                self.m
            ),
            xlabel: "aspect ratio 1:x".into(),
            xs,
            optimal,
            series,
        })
    }

    /// **Figure 5 sweep (number of disks).** Fixed query area, `M` swept.
    /// Paper Figure 5(a) uses small queries, 5(b) large ones.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] / [`SimError::QueryDoesNotFit`] as above.
    pub fn run_disk_sweep(&self, disk_counts: &[u32], area: u64) -> Result<SweepResult> {
        if disk_counts.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let sides = rect_sides_for_area(area, self.space.dims()).ok_or_else(|| {
            SimError::QueryDoesNotFit {
                extents: vec![area as u32],
                dims: self.space.dims().to_vec(),
            }
        })?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // One shared query population so every M sees identical queries.
        let regions: Vec<BucketRegion> = (0..self.queries_per_point)
            .map(|_| random_region(&mut rng, &self.space, &sides))
            .collect::<Result<_>>()?;
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = disk_counts.len();
        for (i, &m) in disk_counts.iter().enumerate() {
            let maps = self.maps_for(&self.space, m);
            let names: Vec<&str> = maps.iter().map(|mm| mm.name()).collect();
            let (summaries, opt) = Self::score(&maps, &regions, m);
            xs.push(f64::from(m));
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!(
                "Disk sweep: response time vs M at query area {} (grid {:?})",
                area,
                self.space.dims()
            ),
            xlabel: "number of disks M".into(),
            xs,
            optimal,
            series,
        })
    }

    /// **Experiment 6 (database size).** Square grids of growing side;
    /// the query side grows with each point as given. Reports mean RT per
    /// method at each grid size.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] / construction errors as above.
    pub fn run_dbsize_sweep(&self, points: &[DbSizePoint]) -> Result<SweepResult> {
        if points.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let k = self.space.k();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = points.len();
        for (i, pt) in points.iter().enumerate() {
            let space = GridSpace::new(vec![pt.side; k])?;
            let maps = self.maps_for(&space, self.m);
            let names: Vec<&str> = maps.iter().map(|mm| mm.name()).collect();
            let sides = vec![pt.query_side.min(pt.side).max(1); k];
            let regions: Vec<BucketRegion> = (0..self.queries_per_point)
                .map(|_| random_region(&mut rng, &space, &sides))
                .collect::<Result<_>>()?;
            let (summaries, opt) = Self::score(&maps, &regions, self.m);
            xs.push(f64::from(pt.side));
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!("Database-size sweep: mean response time vs grid side (M={})", self.m),
            xlabel: "grid side (partitions per attribute)".into(),
            xs,
            optimal,
            series,
        })
    }

    /// **Mixed workload (extension).** One data point per workload mix:
    /// mean RT per method over a query stream drawn from the mix. The
    /// x-axis indexes the supplied mixes (0, 1, …).
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] for no mixes; generation errors.
    pub fn run_mix(
        &self,
        mixes: &[crate::workload::WorkloadMix],
    ) -> Result<SweepResult> {
        if mixes.is_empty() {
            return Err(SimError::EmptySweep);
        }
        let maps = self.maps_for(&self.space, self.m);
        let names: Vec<&str> = maps.iter().map(|m| m.name()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = mixes.len();
        for (i, mix) in mixes.iter().enumerate() {
            let regions = mix.generate(&mut rng, &self.space, self.queries_per_point)?;
            let (summaries, opt) = Self::score(&maps, &regions, self.m);
            xs.push(i as f64);
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!(
                "Mixed-workload sweep: mean response time per mix (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            xlabel: "workload mix index".into(),
            xs,
            optimal,
            series,
        })
    }

    /// **Partial-match table.** Mean RT per method for partial-match
    /// queries with 1, 2, … `k − 1` unspecified attributes (sampled), plus
    /// point queries at x = 0.
    ///
    /// # Errors
    /// Construction errors as above.
    pub fn run_partial_match(&self) -> Result<SweepResult> {
        let maps = self.maps_for(&self.space, self.m);
        let names: Vec<&str> = maps.iter().map(|m| m.name()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = self.space.k();
        let mut xs = Vec::new();
        let mut optimal = Vec::new();
        let mut series: Vec<MethodSeries> = Vec::new();
        let total = k; // unspecified = 0..k-1
        for (i, unspec) in (0..k).enumerate() {
            let queries =
                partial_match_with_unspecified(&mut rng, &self.space, unspec, self.queries_per_point);
            let regions: Vec<BucketRegion> = queries
                .iter()
                .map(|q| q.region(&self.space).map_err(SimError::from))
                .collect::<Result<_>>()?;
            let (summaries, opt) = Self::score(&maps, &regions, self.m);
            xs.push(unspec as f64);
            optimal.push(opt);
            Self::merge_point(&mut series, &names, summaries, i, total);
        }
        Ok(SweepResult {
            title: format!(
                "Partial-match sweep: mean response time vs unspecified attributes (grid {:?}, M={})",
                self.space.dims(),
                self.m
            ),
            xlabel: "unspecified attributes".into(),
            xs,
            optimal,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> Experiment {
        Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
            .with_queries_per_point(64)
            .with_seed(3)
    }

    #[test]
    fn size_sweep_has_all_methods_and_bounds_hold() {
        let r = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![1, 4, 16, 64]))
            .unwrap();
        assert_eq!(r.xs, vec![1.0, 4.0, 16.0, 64.0]);
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["DM", "FX", "ECC", "HCAM"]);
        for s in &r.series {
            assert_eq!(s.means.len(), 4);
            for (mean, opt) in s.means.iter().zip(&r.optimal) {
                assert!(mean + 1e-9 >= *opt, "{} mean {mean} < opt {opt}", s.name);
            }
        }
        // Area 1: every method retrieves exactly one bucket.
        for s in &r.series {
            assert_eq!(s.means[0], 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![16]))
            .unwrap();
        let b = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![16]))
            .unwrap();
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.means, sb.means);
        }
    }

    #[test]
    fn shape_sweep_runs_square_to_line() {
        let r = experiment().run_shape_sweep(&ShapeSweep::new(16, 8)).unwrap();
        // 16 = 4^2: powers 0 (4x4), 2 (2x8), 4 (1x16).
        assert_eq!(r.xs, vec![1.0, 4.0, 16.0]);
        // Optimal is flat (area fixed): ceil(16/8) = 2.
        for &o in &r.optimal {
            assert_eq!(o, 2.0);
        }
    }

    #[test]
    fn disk_sweep_marks_ecc_gaps_with_nan() {
        let r = experiment().run_disk_sweep(&[4, 6, 8], 16).unwrap();
        let ecc = r.series_for("ECC").unwrap();
        assert!(ecc.means[0].is_finite());
        assert!(ecc.means[1].is_nan(), "ECC should not apply at M=6");
        assert!(ecc.means[2].is_finite());
        let dm = r.series_for("DM").unwrap();
        assert!(dm.means.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn dbsize_sweep_runs_multiple_grids() {
        let pts = vec![
            DbSizePoint { side: 8, query_side: 2 },
            DbSizePoint { side: 16, query_side: 4 },
        ];
        let r = experiment().run_dbsize_sweep(&pts).unwrap();
        assert_eq!(r.xs, vec![8.0, 16.0]);
        for s in &r.series {
            assert!(s.means.iter().all(|m| m.is_finite()), "{}", s.name);
        }
    }

    #[test]
    fn partial_match_point_queries_have_rt_one() {
        let r = experiment().run_partial_match().unwrap();
        assert_eq!(r.xs[0], 0.0);
        for s in &r.series {
            assert_eq!(s.means[0], 1.0, "{} point-query RT must be 1", s.name);
        }
        // One unspecified attribute on a 16-wide grid with M=8: DM is
        // provably optimal (RT = ceil(16/8) = 2).
        let dm = r.series_for("DM").unwrap();
        assert_eq!(dm.means[1], 2.0);
    }

    #[test]
    fn mix_sweep_scores_each_mix() {
        use crate::workload::WorkloadMix;
        let point_heavy = WorkloadMix {
            point: 1.0,
            partial_match: 0.0,
            small_range: 0.0,
            large_range: 0.0,
            small_area: 4,
            large_area: 64,
        };
        let range_heavy = WorkloadMix {
            point: 0.0,
            partial_match: 0.0,
            small_range: 0.0,
            large_range: 1.0,
            small_area: 4,
            large_area: 64,
        };
        let r = experiment().run_mix(&[point_heavy, range_heavy]).unwrap();
        assert_eq!(r.xs, vec![0.0, 1.0]);
        // Pure point queries: every method at RT 1. Pure 64-area ranges:
        // everything at least the optimal 8.
        for s in &r.series {
            assert_eq!(s.means[0], 1.0, "{}", s.name);
            assert!(s.means[1] >= 8.0, "{}", s.name);
        }
        assert!(matches!(
            experiment().run_mix(&[]).unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(matches!(
            experiment().run_disk_sweep(&[], 4).unwrap_err(),
            SimError::EmptySweep
        ));
        assert!(matches!(
            experiment().run_size_sweep(&SizeSweep::explicit(vec![])).unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn mean_deviation_factor_computes() {
        let r = experiment()
            .run_size_sweep(&SizeSweep::explicit(vec![4, 16, 64]))
            .unwrap();
        let f = r.mean_deviation_factor("DM").unwrap();
        assert!(f >= 1.0);
        assert!(r.mean_deviation_factor("NOPE").is_none());
    }

    #[test]
    fn baselines_included_on_request() {
        let r = Experiment::new(GridSpace::new_2d(8, 8).unwrap(), 4)
            .with_queries_per_point(16)
            .with_baselines(true)
            .run_size_sweep(&SizeSweep::explicit(vec![4]))
            .unwrap();
        let names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"RR"));
        assert!(names.contains(&"RND"));
    }
}
