//! Parallel-I/O simulator, workload generators, and experiment harness.
//!
//! This crate is the study's laboratory. It provides:
//!
//! * the paper's cost metric — [`response_time`] in bucket retrievals, with
//!   the [`optimal_response_time`] lower bound `ceil(|Q| / M)`;
//! * a physical disk timing model ([`DiskParams`], [`IoSimulator`]) that
//!   turns bucket counts into milliseconds for realism-oriented examples
//!   (the reproduced figures use the hardware-independent bucket metric,
//!   exactly as the paper does);
//! * deterministic workload generators ([`workload`]) for every query
//!   population the paper sweeps: query size (area 1..1024), query shape
//!   (aspect 1:1 → 1:M), dimensionality (2-D/3-D), partial-match and point
//!   queries;
//! * the [`Experiment`] harness and parameter sweeps that regenerate each
//!   figure as a [`SweepResult`] table.
//!
//! # Example
//!
//! ```
//! use decluster_grid::GridSpace;
//! use decluster_sim::{Experiment, workload::SizeSweep};
//!
//! let exp = Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
//!     .with_queries_per_point(50)
//!     .with_seed(7);
//! let result = exp.run_size_sweep(&SizeSweep::new(1, 64, 8)).unwrap();
//! assert!(!result.series.is_empty());
//! // Every method's mean RT is at least the optimal bound.
//! for s in &result.series {
//!     for (i, &rt) in s.means.iter().enumerate() {
//!         assert!(rt + 1e-9 >= result.optimal[i]);
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disk;
mod eval;
mod events;
mod exec;
mod experiment;
pub mod faults;
mod multiuser;
mod report;
mod rt;
mod shard;
mod spec;
mod stats;
pub mod workload;

pub use disk::{DiskParams, IoSimulator};
pub use eval::{DegradedContext, EvalContext};
pub use events::{
    sharded_arrivals, DegradedServeConfig, DegradedServeReport, Event, EventHeap, LoopScratch,
    ServeConfig, ServeReport, ServeSample, ServingEngine, SharedServeConfig, SharedServeReport,
};
pub use experiment::{
    AvailPoint, AvailSweep, DbSizePoint, Experiment, MethodSeries, ServeCurve, ServePoint,
    ServeSweep, SharePoint, ShareSweep, SweepResult,
};
pub use faults::{
    degraded_outcome, degraded_outcome_r, degraded_outcome_with, simulate_rebuild,
    simulate_rebuild_obs, DiskState, FaultEvent, FaultMethodStats, FaultReport, FaultSchedule,
    QueryOutcome, RebuildReport, ReplicaPolicy, RetryPolicy,
};
pub use multiuser::{
    load_sweep, load_sweep_with_threads, poisson_arrivals, DegradedMultiUserReport, LoadPoint,
    LoadPointMethod, MultiUserEngine, MultiUserReport,
};
pub use report::{Report, ReportFormat, TextTable};
pub use rt::{
    deviation_from_optimal, masked_response_time, masked_response_time_with, optimal_response_time,
    response_time, response_time_batched, response_time_batched_with,
};
pub use shard::merge_epoch_max;
pub use spec::{AvailStats, ServeRun, ServeSpec, ShareStats, SpecError, DEFAULT_SPEC_SEED};
pub use stats::{Quantiles, Summary};

/// Renders a sweep as an aligned plain-text table: one row per x-value,
/// one column per method, plus the optimal lower bound.
#[deprecated(note = "use `Report::render(ReportFormat::Table)`")]
pub fn render_table(result: &SweepResult) -> String {
    result.render(ReportFormat::Table)
}

/// Renders a sweep like [`render_table`] but annotates every mean with
/// its ~95% confidence half-width (`mean ±hw`), so readers can judge
/// whether method gaps exceed sampling noise.
#[deprecated(note = "use `Report::render(ReportFormat::TableWithCi)`")]
pub fn render_table_with_ci(result: &SweepResult) -> String {
    result.render(ReportFormat::TableWithCi)
}

/// Renders a sweep as CSV with a header row (`x, <methods…>, OPT`). NaN
/// points (method not applicable) are empty cells.
#[deprecated(note = "use `Report::render(ReportFormat::Csv)`")]
pub fn render_csv(result: &SweepResult) -> String {
    result.render(ReportFormat::Csv)
}

/// Renders a fault-injection report as an aligned plain-text table: one
/// row per method variant, with healthy vs degraded mean RT, worst-case
/// degraded RT, availability, and failover volume.
#[deprecated(note = "use `Report::render(ReportFormat::Table)`")]
pub fn render_fault_table(report: &FaultReport) -> String {
    report.render(ReportFormat::Table)
}

/// Renders a fault-injection report as CSV
/// (`method,healthy_mean_rt,degraded_mean_rt,degraded_max_rt,availability,served,unavailable,failover_buckets`).
#[deprecated(note = "use `Report::render(ReportFormat::Csv)`")]
pub fn render_fault_csv(report: &FaultReport) -> String {
    report.render(ReportFormat::Csv)
}

/// Errors from the simulator: configuration problems surface as the
/// underlying crates' errors.
///
/// Marked `#[non_exhaustive]`: future variants (e.g. observability I/O
/// errors) are not breaking changes, so match with a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A grid/query construction failed.
    Grid(decluster_grid::GridError),
    /// A method construction failed.
    Method(decluster_methods::MethodError),
    /// A sweep was configured with no points.
    EmptySweep,
    /// Queries of the requested size/shape cannot fit the grid.
    QueryDoesNotFit {
        /// Requested query extents.
        extents: Vec<u32>,
        /// Grid dimensions.
        dims: Vec<u32>,
    },
    /// A fault specification is malformed or out of range.
    BadFaultSpec {
        /// The offending clause or value.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A fault schedule was built for a different disk count than the
    /// experiment it was handed to.
    ScheduleMismatch {
        /// Disks the schedule covers.
        schedule_disks: u32,
        /// Disks the experiment uses.
        experiment_disks: u32,
    },
    /// A replica-selection policy name was not recognized.
    UnknownPolicy {
        /// The offending name.
        name: String,
    },
    /// A [`ServeSpec`] asked for a knob its mode cannot honor.
    Spec(SpecError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Grid(e) => write!(f, "grid error: {e}"),
            SimError::Method(e) => write!(f, "method error: {e}"),
            SimError::EmptySweep => write!(f, "sweep has no points"),
            SimError::QueryDoesNotFit { extents, dims } => {
                write!(f, "query extents {extents:?} do not fit grid {dims:?}")
            }
            SimError::BadFaultSpec { spec, reason } => {
                write!(f, "bad fault spec {spec:?}: {reason}")
            }
            SimError::ScheduleMismatch {
                schedule_disks,
                experiment_disks,
            } => {
                write!(
                    f,
                    "fault schedule covers {schedule_disks} disks but the experiment uses {experiment_disks}"
                )
            }
            SimError::UnknownPolicy { name } => {
                write!(
                    f,
                    "unknown replica policy {name:?} (accepted: {})",
                    faults::ReplicaPolicy::ACCEPTED_NAMES
                )
            }
            SimError::Spec(e) => write!(f, "bad serve spec: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Grid(e) => Some(e),
            SimError::Method(e) => Some(e),
            SimError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<decluster_grid::GridError> for SimError {
    fn from(e: decluster_grid::GridError) -> Self {
        SimError::Grid(e)
    }
}

impl From<decluster_methods::MethodError> for SimError {
    fn from(e: decluster_methods::MethodError) -> Self {
        SimError::Method(e)
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
