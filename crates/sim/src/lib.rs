//! Parallel-I/O simulator, workload generators, and experiment harness.
//!
//! This crate is the study's laboratory. It provides:
//!
//! * the paper's cost metric — [`response_time`] in bucket retrievals, with
//!   the [`optimal_response_time`] lower bound `ceil(|Q| / M)`;
//! * a physical disk timing model ([`DiskParams`], [`IoSimulator`]) that
//!   turns bucket counts into milliseconds for realism-oriented examples
//!   (the reproduced figures use the hardware-independent bucket metric,
//!   exactly as the paper does);
//! * deterministic workload generators ([`workload`]) for every query
//!   population the paper sweeps: query size (area 1..1024), query shape
//!   (aspect 1:1 → 1:M), dimensionality (2-D/3-D), partial-match and point
//!   queries;
//! * the [`Experiment`] harness and parameter sweeps that regenerate each
//!   figure as a [`SweepResult`] table.
//!
//! # Example
//!
//! ```
//! use decluster_grid::GridSpace;
//! use decluster_sim::{Experiment, workload::SizeSweep};
//!
//! let exp = Experiment::new(GridSpace::new_2d(16, 16).unwrap(), 8)
//!     .with_queries_per_point(50)
//!     .with_seed(7);
//! let result = exp.run_size_sweep(&SizeSweep::new(1, 64, 8)).unwrap();
//! assert!(!result.series.is_empty());
//! // Every method's mean RT is at least the optimal bound.
//! for s in &result.series {
//!     for (i, &rt) in s.means.iter().enumerate() {
//!         assert!(rt + 1e-9 >= result.optimal[i]);
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disk;
mod eval;
mod exec;
mod experiment;
pub mod faults;
mod multiuser;
mod report;
mod rt;
mod stats;
pub mod workload;

pub use disk::{DiskParams, IoSimulator};
pub use eval::{DegradedContext, EvalContext};
pub use experiment::{DbSizePoint, Experiment, MethodSeries, SweepResult};
pub use faults::{
    degraded_outcome, degraded_outcome_with, simulate_rebuild, simulate_rebuild_obs, DiskState,
    FaultEvent, FaultMethodStats, FaultReport, FaultSchedule, QueryOutcome, RebuildReport,
    RetryPolicy,
};
pub use multiuser::{
    load_sweep, load_sweep_with_threads, poisson_arrivals, run_closed_loop,
    run_closed_loop_degraded, run_closed_loop_degraded_obs, run_closed_loop_obs, run_open_loop,
    run_open_loop_obs, DegradedMultiUserReport, LoadPoint, LoopScratch, MultiUserEngine,
    MultiUserReport,
};
#[allow(deprecated)]
pub use report::{
    render_csv, render_fault_csv, render_fault_table, render_table, render_table_with_ci,
};
pub use report::{Report, ReportFormat, TextTable};
pub use rt::{
    deviation_from_optimal, masked_response_time, masked_response_time_with, optimal_response_time,
    response_time, response_time_batched, response_time_batched_with,
};
pub use stats::Summary;

/// Errors from the simulator: configuration problems surface as the
/// underlying crates' errors.
///
/// Marked `#[non_exhaustive]`: future variants (e.g. observability I/O
/// errors) are not breaking changes, so match with a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A grid/query construction failed.
    Grid(decluster_grid::GridError),
    /// A method construction failed.
    Method(decluster_methods::MethodError),
    /// A sweep was configured with no points.
    EmptySweep,
    /// Queries of the requested size/shape cannot fit the grid.
    QueryDoesNotFit {
        /// Requested query extents.
        extents: Vec<u32>,
        /// Grid dimensions.
        dims: Vec<u32>,
    },
    /// A fault specification is malformed or out of range.
    BadFaultSpec {
        /// The offending clause or value.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A fault schedule was built for a different disk count than the
    /// experiment it was handed to.
    ScheduleMismatch {
        /// Disks the schedule covers.
        schedule_disks: u32,
        /// Disks the experiment uses.
        experiment_disks: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Grid(e) => write!(f, "grid error: {e}"),
            SimError::Method(e) => write!(f, "method error: {e}"),
            SimError::EmptySweep => write!(f, "sweep has no points"),
            SimError::QueryDoesNotFit { extents, dims } => {
                write!(f, "query extents {extents:?} do not fit grid {dims:?}")
            }
            SimError::BadFaultSpec { spec, reason } => {
                write!(f, "bad fault spec {spec:?}: {reason}")
            }
            SimError::ScheduleMismatch {
                schedule_disks,
                experiment_disks,
            } => {
                write!(
                    f,
                    "fault schedule covers {schedule_disks} disks but the experiment uses {experiment_disks}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Grid(e) => Some(e),
            SimError::Method(e) => Some(e),
            _ => None,
        }
    }
}

impl From<decluster_grid::GridError> for SimError {
    fn from(e: decluster_grid::GridError) -> Self {
        SimError::Grid(e)
    }
}

impl From<decluster_methods::MethodError> for SimError {
    fn from(e: decluster_methods::MethodError) -> Self {
        SimError::Method(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
