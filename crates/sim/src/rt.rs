use decluster_grid::BucketRegion;
use decluster_methods::{DeclusteringMethod, DiskCounts, Scratch};

/// Response time of a query under a declustering method, in bucket
/// retrievals: the maximum number of the query's buckets that land on any
/// single disk (Definition 5 of the paper — all disks work in parallel, so
/// the busiest disk finishes last).
///
/// This is the naive `O(|Q|)` walk over every bucket of the region — the
/// reference implementation, and the only choice for an arbitrary
/// [`DeclusteringMethod`] trait object. When the same allocation is
/// queried repeatedly, materialize it and use
/// [`response_time_batched`], which answers each rectangular query in
/// `O(M · 2^k)` via the [`DiskCounts`] prefix-sum kernel.
pub fn response_time(method: &dyn DeclusteringMethod, region: &BucketRegion) -> u64 {
    let mut per_disk = vec![0u64; method.num_disks() as usize];
    for bucket in region.iter() {
        per_disk[method.disk_of(bucket.as_slice()).index()] += 1;
    }
    per_disk.into_iter().max().unwrap_or(0)
}

/// The batched path: response time through a prebuilt [`DiskCounts`]
/// kernel — `O(M · 2^k)` per query, independent of the query's area, and
/// exactly equal to [`response_time`] on the kernel's allocation (proven
/// by property tests in `decluster-methods`). Build the kernel once per
/// allocation with [`decluster_methods::AllocationMap::disk_counts`].
pub fn response_time_batched(kernel: &DiskCounts, region: &BucketRegion) -> u64 {
    kernel.response_time(region)
}

/// The kernel-v2 hot path: [`response_time_batched`] through a
/// caller-owned [`Scratch`], whose cached shape-compiled plan amortizes
/// the `2^k` corner derivation over every placement of one query shape
/// and whose accumulator removes the per-query allocation. Equal to
/// [`response_time_batched`] on every input.
pub fn response_time_batched_with(
    kernel: &DiskCounts,
    region: &BucketRegion,
    scratch: &mut Scratch,
) -> u64 {
    kernel.response_time_with(region, scratch)
}

/// Degraded-mode response time restricted to live disks: the max
/// per-disk count over the disks marked live, through the prefix-sum
/// kernel — still `O(M · 2^k)`, so fault-injection sweeps keep the
/// batched engine's cost profile. What happens to the *dead* disks'
/// buckets (chained failover or unavailability) is the fault executor's
/// business ([`crate::faults::degraded_outcome`]); this is the surviving
/// load it builds on.
pub fn masked_response_time(kernel: &DiskCounts, region: &BucketRegion, live: &[bool]) -> u64 {
    kernel.masked_response_time(region, live)
}

/// [`masked_response_time`] through a caller-owned [`Scratch`] — the
/// degraded-mode analogue of [`response_time_batched_with`], for fault
/// sweeps that mask the same query shape at many placements/times.
pub fn masked_response_time_with(
    kernel: &DiskCounts,
    region: &BucketRegion,
    live: &[bool],
    scratch: &mut Scratch,
) -> u64 {
    kernel.masked_response_time_with(region, live, scratch)
}

/// The unbeatable lower bound on response time: `ceil(|Q| / M)` for a
/// query touching `num_buckets` buckets on `m` disks. An allocation
/// achieving this for a query is *optimal* for it.
pub fn optimal_response_time(num_buckets: u64, m: u32) -> u64 {
    if m == 0 {
        return num_buckets;
    }
    num_buckets.div_ceil(u64::from(m))
}

/// Additive deviation from optimality: `RT − ceil(|Q|/M)`; zero iff the
/// method is optimal for this query.
pub fn deviation_from_optimal(method: &dyn DeclusteringMethod, region: &BucketRegion) -> u64 {
    response_time(method, region) - optimal_response_time(region.num_buckets(), method.num_disks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{GridSpace, RangeQuery};
    use decluster_methods::{AllocationMap, DiskModulo, FieldwiseXor};

    #[test]
    fn batched_path_matches_naive_path() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        let kernel = map.disk_counts().unwrap();
        for (lo, hi) in [
            ([0u32, 0u32], [3u32, 3u32]),
            ([2, 5], [9, 14]),
            ([0, 0], [15, 15]),
        ] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            assert_eq!(response_time_batched(&kernel, &r), response_time(&dm, &r));
        }
    }

    #[test]
    fn scratch_wrappers_match_their_plain_forms() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let fx = FieldwiseXor::new(&g, 5).unwrap();
        let map = AllocationMap::from_method(&g, &fx).unwrap();
        let kernel = map.disk_counts().unwrap();
        let mut scratch = Scratch::new();
        let mut live = [true; 5];
        live[2] = false;
        for (lo, hi) in [([0u32, 0u32], [3u32, 3u32]), ([2, 5], [9, 14])] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            assert_eq!(
                response_time_batched_with(&kernel, &r, &mut scratch),
                response_time_batched(&kernel, &r)
            );
            assert_eq!(
                masked_response_time_with(&kernel, &r, &live, &mut scratch),
                masked_response_time(&kernel, &r, &live)
            );
        }
    }

    #[test]
    fn masked_rt_with_all_disks_live_is_the_plain_rt() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        let map = AllocationMap::from_method(&g, &dm).unwrap();
        let kernel = map.disk_counts().unwrap();
        let r = RangeQuery::new([2, 5], [9, 14])
            .unwrap()
            .region(&g)
            .unwrap();
        assert_eq!(
            masked_response_time(&kernel, &r, &[true; 5]),
            response_time_batched(&kernel, &r)
        );
        // Masking out the busiest disk can only lower the survivors' max.
        for dead in 0..5usize {
            let mut live = [true; 5];
            live[dead] = false;
            assert!(masked_response_time(&kernel, &r, &live) <= response_time_batched(&kernel, &r));
        }
        assert_eq!(masked_response_time(&kernel, &r, &[false; 5]), 0);
    }

    #[test]
    fn optimal_bound_rounds_up() {
        assert_eq!(optimal_response_time(0, 4), 0);
        assert_eq!(optimal_response_time(1, 4), 1);
        assert_eq!(optimal_response_time(4, 4), 1);
        assert_eq!(optimal_response_time(5, 4), 2);
        assert_eq!(optimal_response_time(17, 4), 5);
        assert_eq!(optimal_response_time(7, 0), 7);
    }

    #[test]
    fn response_time_never_beats_optimal() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 5).unwrap();
        for (lo, hi) in [
            ([0u32, 0u32], [3u32, 3u32]),
            ([2, 5], [9, 14]),
            ([0, 0], [15, 15]),
        ] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            let rt = response_time(&dm, &r);
            assert!(rt >= optimal_response_time(r.num_buckets(), 5));
        }
    }

    #[test]
    fn dm_is_optimal_on_full_rows() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 16).unwrap();
        let row = RangeQuery::new([3, 0], [3, 15])
            .unwrap()
            .region(&g)
            .unwrap();
        assert_eq!(response_time(&dm, &row), 1);
        assert_eq!(deviation_from_optimal(&dm, &row), 0);
    }

    #[test]
    fn dm_antidiagonal_is_pessimal() {
        // A square aligned with DM's anti-diagonals: the middle diagonal
        // gets ~side buckets on one disk.
        let g = GridSpace::new_2d(16, 16).unwrap();
        let dm = DiskModulo::new(&g, 16).unwrap();
        let sq = RangeQuery::new([0, 0], [7, 7]).unwrap().region(&g).unwrap();
        let rt = response_time(&dm, &sq);
        assert_eq!(rt, 8); // longest anti-diagonal of an 8x8 square
        assert_eq!(optimal_response_time(64, 16), 4);
        assert_eq!(deviation_from_optimal(&dm, &sq), 4);
    }

    #[test]
    fn fx_beats_dm_on_an_unaligned_square() {
        // 4x4 square at offset <1,2>, M=16. FX spreads it better than DM:
        // hand-computing i^j over i in 1..5, j in 2..6 gives a max disk
        // count of 3, while DM's middle anti-diagonal holds 4 buckets.
        let g = GridSpace::new_2d(16, 16).unwrap();
        let fx = FieldwiseXor::new(&g, 16).unwrap();
        let dm = DiskModulo::new(&g, 16).unwrap();
        let sq = RangeQuery::new([1, 2], [4, 5]).unwrap().region(&g).unwrap();
        assert_eq!(response_time(&fx, &sq), 3);
        assert_eq!(response_time(&dm, &sq), 4);
    }

    #[test]
    fn single_bucket_query_rt_is_one() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&g, 4).unwrap();
        let r = RangeQuery::new([5, 5], [5, 5]).unwrap().region(&g).unwrap();
        assert_eq!(response_time(&dm, &r), 1);
        assert_eq!(deviation_from_optimal(&dm, &r), 0);
    }
}
