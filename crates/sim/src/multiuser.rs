//! Closed-loop multi-user simulation of the parallel I/O subsystem.
//!
//! The paper's motivation cites multi-user performance analyses of
//! declustering (Ghandeharizadeh & DeWitt, ICDE'90 / SIGMOD'92); this
//! module provides that view: `clients` concurrent users issue queries
//! back-to-back from a shared workload, each query fans out one page
//! batch per disk, disks serve batches FCFS, and a query completes when
//! its slowest batch does. Declustering quality shows up as throughput:
//! methods that spread each query thinly across disks keep all spindles
//! busy and finish the workload sooner.
//!
//! # The event core
//!
//! Every loop here is a driver over the serving core in
//! [`crate::events`]: client readiness and query completions flow
//! through the deterministic [`crate::events::EventHeap`], and the
//! per-query FCFS fan-out is [`ServingEngine::fan_out`] — the identical
//! float sequence the loops always computed, now shared. The streaming
//! serve (reached through [`crate::ServeSpec::open`]) generalizes the
//! open loop to unbounded arrival streams with mid-run sampling.
//!
//! # The counts fast path
//!
//! None of the loops here ever look at page *identities* — FCFS queueing
//! needs only "how many pages must disk `d` fetch", which is exactly what
//! the [`PlanCounts`] kernel answers in `O(M · 2^k)` per query. The
//! [`MultiUserEngine`] caches that kernel per directory and runs every
//! loop allocation-free through a caller-owned [`LoopScratch`]; batch
//! service times come from [`DiskParams::batch_ms_counts`]. Consumers
//! that do need page positions (the rebuild replay in
//! [`crate::faults`]) use the flat [`IoPlan`] arena and the position
//! model instead — see `run_closed_loop_positions_obs`.

use crate::events::{EventHeap, LoopScratch, ServingEngine};
use crate::faults::{DiskState, FaultSchedule, RetryPolicy};
use crate::stats::Quantiles;
use crate::{DiskParams, Result, SimError, Summary};
use decluster_grid::{BucketRegion, GridDirectory, IoPlan};
#[allow(unused_imports)] // rustdoc links
use decluster_methods::PlanCounts;
use decluster_obs::{CounterHandle, GaugeHandle, HistogramHandle, Obs, TraceEvent};

/// Pre-interned handles for the shared closed/open-loop metrics: every
/// name is formatted and resolved once per run, never inside the
/// per-query or per-disk recording loops. Everything recorded here is
/// derived from simulated (logical) milliseconds and counts, so the
/// deterministic sections stay bit-identical across runs; only the
/// sub-millisecond float rounding is quantized (to microseconds for busy
/// time, milliseconds for latencies).
pub(crate) struct LoopMeters {
    queries: CounterHandle,
    batches: CounterHandle,
    queued_batches: CounterHandle,
    disk_busy_us: Vec<CounterHandle>,
    latency_ms: HistogramHandle,
    max_latency_ms: GaugeHandle,
}

impl LoopMeters {
    pub(crate) fn new(obs: &Obs, prefix: &str, m: usize) -> Self {
        LoopMeters {
            queries: obs.counter_handle(&format!("{prefix}.queries")),
            batches: obs.counter_handle(&format!("{prefix}.batches")),
            queued_batches: obs.counter_handle(&format!("{prefix}.queued_batches")),
            disk_busy_us: (0..m)
                .map(|d| obs.counter_handle(&format!("{prefix}.disk{d:02}.busy_us")))
                .collect(),
            latency_ms: obs.histogram_handle(&format!("{prefix}.latency_ms")),
            max_latency_ms: obs.gauge_handle(&format!("{prefix}.max_latency_ms")),
        }
    }

    pub(crate) fn record(
        &self,
        queries: usize,
        batches: u64,
        queued_batches: u64,
        disk_busy_ms: &[f64],
        latencies: &[f64],
    ) {
        self.queries.add(queries as u64);
        self.batches.add(batches);
        self.queued_batches.add(queued_batches);
        for (handle, &busy) in self.disk_busy_us.iter().zip(disk_busy_ms) {
            handle.add((busy * 1000.0).round() as u64);
        }
        let mut max_latency = 0u64;
        for &l in latencies {
            let ms = l.round() as u64;
            self.latency_ms.observe(ms);
            max_latency = max_latency.max(ms);
        }
        self.max_latency_ms.max(max_latency);
    }
}

/// Aggregate results of one closed-loop run.
#[derive(Clone, Debug)]
pub struct MultiUserReport {
    /// Number of queries completed.
    pub queries: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Time the last query completed, ms.
    pub makespan_ms: f64,
    /// Completed queries per second.
    pub throughput_qps: f64,
    /// Per-query latency statistics (issue → completion), ms.
    pub latency: Summary,
    /// Exact nearest-rank p50/p95/p99 latency tails, ms.
    pub tail: Quantiles,
    /// Mean disk utilization in `[0, 1]`: busy time over `M · makespan`.
    pub utilization: f64,
}

/// Builds the aggregate report. Sorts `latencies` in place for the tail
/// quantiles — the summary moments are taken first, in recording order,
/// so their floating-point sums keep their historical bit patterns.
pub(crate) fn assemble_report(
    queries: usize,
    clients: usize,
    makespan: f64,
    m: usize,
    disk_busy_ms: &[f64],
    latencies: &mut [f64],
) -> MultiUserReport {
    let throughput_qps = if makespan > 0.0 {
        queries as f64 / (makespan / 1000.0)
    } else {
        0.0
    };
    let utilization = if makespan > 0.0 && m > 0 {
        disk_busy_ms.iter().sum::<f64>() / (makespan * m as f64)
    } else {
        0.0
    };
    let latency = Summary::of(latencies);
    let tail = Quantiles::of_unsorted(latencies);
    MultiUserReport {
        queries,
        clients,
        makespan_ms: makespan,
        throughput_qps,
        latency,
        tail,
        utilization,
    }
}

/// A directory's multi-user simulation engine: a [`ServingEngine`] (the
/// cached [`PlanCounts`] kernel plus the static load vector) with the
/// whole-run loop drivers on top. Build once per directory (the kernel
/// build walks the grid once), then run any number of closed-loop,
/// open-loop, or degraded workloads against it — each query costs
/// `O(M · 2^k)` kernel lookups and zero heap allocations.
///
/// The engine is immutable and `Sync`: parallel sweeps share one engine
/// per method across worker threads, each worker carrying its own
/// [`LoopScratch`].
#[derive(Clone, Debug)]
pub struct MultiUserEngine {
    core: ServingEngine,
    dir: GridDirectory,
}

impl MultiUserEngine {
    /// Builds the count kernel for `dir` and snapshots its load vector.
    pub fn new(dir: &GridDirectory) -> Self {
        MultiUserEngine {
            core: ServingEngine::new(dir),
            dir: dir.clone(),
        }
    }

    /// Warm-start constructor: adopts a previously compiled kernel (from
    /// a persist-v3 [`decluster_methods::KernelCache`] image) instead of
    /// building one; see [`ServingEngine::with_kernel`].
    ///
    /// # Panics
    /// Panics if the kernel's disk count disagrees with the directory's.
    pub fn with_kernel(dir: &GridDirectory, kernel: Option<decluster_methods::DiskCounts>) -> Self {
        MultiUserEngine {
            core: ServingEngine::with_kernel(dir, kernel),
            dir: dir.clone(),
        }
    }

    /// Disks (`M`).
    pub fn num_disks(&self) -> usize {
        self.core.num_disks()
    }

    /// The directory this engine was built from (shared-scan runs need
    /// the page-level [`GridDirectory::io_plan_into`] arena, not just the
    /// count kernel).
    pub fn directory(&self) -> &GridDirectory {
        &self.dir
    }

    /// Whether queries are served by the prefix-sum kernel (false means
    /// the grid was too large for a table and the engine walks buckets).
    pub fn kernel_backed(&self) -> bool {
        self.core.kernel_backed()
    }

    /// The underlying streaming serving core (for
    /// [`crate::ServeSpec`] arrival-stream runs).
    pub fn serving(&self) -> &ServingEngine {
        &self.core
    }

    /// Closed-loop run against this engine: `clients` users repeatedly
    /// take the next query from `queries` (in order), waiting for their
    /// previous query to finish first. Returns aggregate
    /// throughput/latency/utilization. Deterministic: the only inputs
    /// are the directory, the disk parameters, and the query order. With
    /// observability enabled it records `multiuser.*` counters, the
    /// latency histogram, and a `closed_loop_done` trace event. Reach it
    /// through [`crate::ServeSpec::closed`].
    ///
    /// # Panics
    /// Panics if `clients == 0`.
    pub fn closed_loop_obs(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        clients: usize,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> MultiUserReport {
        assert!(clients > 0, "closed loop needs at least one client");
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "multiuser", self.core.num_disks()));
        let m = self.core.num_disks();
        ls.begin(m, queries.len());
        let mut makespan: f64 = 0.0;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;
        // A client-ready event per client; the earliest-free client
        // (ties by event order) issues the next query.
        for _ in 0..clients {
            ls.events.push(0.0, 0.0);
        }

        for region in queries {
            let issue_at = ls.events.pop().expect("clients > 0").time;
            self.core
                .counts_into(region, &mut ls.plans, &mut ls.scratch, &mut ls.hist);
            let completion = self.core.fan_out(
                params,
                issue_at,
                &ls.hist,
                &mut ls.disk_free_at,
                &mut ls.disk_busy_ms,
                record,
                &mut batches,
                &mut queued_batches,
            );
            ls.latencies.push(completion - issue_at);
            makespan = makespan.max(completion);
            ls.events.push(completion, completion - issue_at);
        }

        let (shape_hits, shape_misses) = ls.plans.drain_stats();
        if let Some(meters) = &meters {
            meters.record(
                queries.len(),
                batches,
                queued_batches,
                &ls.disk_busy_ms,
                &ls.latencies,
            );
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
        }
        let report = assemble_report(
            queries.len(),
            clients,
            makespan,
            m,
            &ls.disk_busy_ms,
            &mut ls.latencies,
        );
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("closed_loop_done")
                    .with("queries", queries.len())
                    .with("clients", clients)
                    .with("makespan_ms", report.makespan_ms)
                    .with("utilization", report.utilization),
            );
        }
        report
    }

    /// Open-loop run against this engine: query `i` is issued at
    /// `arrivals_ms[i]` regardless of completions (a load generator, not
    /// a closed set of clients). Disks serve batches FCFS in arrival
    /// order; use [`poisson_arrivals`] to generate arrival times at a
    /// target rate. Records the `openloop.*` loop metrics and an
    /// `open_loop_done` trace event when observability is enabled. Reach
    /// it through [`crate::ServeSpec::open`].
    ///
    /// # Panics
    /// Panics if `arrivals_ms` is shorter than `queries` or not
    /// non-decreasing.
    pub fn open_loop_obs(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> MultiUserReport {
        assert!(
            arrivals_ms.len() >= queries.len(),
            "need one arrival time per query"
        );
        assert!(
            arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be non-decreasing"
        );
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "openloop", self.core.num_disks()));
        let m = self.core.num_disks();
        ls.begin(m, queries.len());
        let mut makespan: f64 = 0.0;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;

        for (region, &issue_at) in queries.iter().zip(arrivals_ms) {
            // Retire completion events that precede this arrival, so the
            // heap tracks the in-flight set (arrivals never wait on it —
            // the open loop has unbounded concurrency).
            while ls.events.peek_time().is_some_and(|t| t <= issue_at) {
                ls.events.pop();
            }
            self.core
                .counts_into(region, &mut ls.plans, &mut ls.scratch, &mut ls.hist);
            let completion = self.core.fan_out(
                params,
                issue_at,
                &ls.hist,
                &mut ls.disk_free_at,
                &mut ls.disk_busy_ms,
                record,
                &mut batches,
                &mut queued_batches,
            );
            ls.latencies.push(completion - issue_at);
            makespan = makespan.max(completion);
            ls.events.push(completion, completion - issue_at);
        }
        ls.events.clear();

        let (shape_hits, shape_misses) = ls.plans.drain_stats();
        if let Some(meters) = &meters {
            meters.record(
                queries.len(),
                batches,
                queued_batches,
                &ls.disk_busy_ms,
                &ls.latencies,
            );
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
        }
        // Open loop: unbounded concurrency, reported as 0 clients.
        let report = assemble_report(
            queries.len(),
            0,
            makespan,
            m,
            &ls.disk_busy_ms,
            &mut ls.latencies,
        );
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("open_loop_done")
                    .with("queries", queries.len())
                    .with("makespan_ms", report.makespan_ms)
                    .with("utilization", report.utilization),
            );
        }
        report
    }

    /// Degraded closed-loop run against this engine: the closed-loop
    /// workload under a fault schedule with chained-declustering
    /// failover. Query `i` executes at logical fault time `i`, so the
    /// result is a pure function of the inputs — reproducible under any
    /// thread count of the surrounding sweep.
    ///
    /// Batches to a down disk fail over to the chain successor
    /// `(d + 1) mod M`, starting no earlier than
    /// `issue + detection_units × transfer_ms` (the client's timeout and
    /// retries); batches on a gray disk take its latency factor times as
    /// long. A query whose down disk has a down successor is counted
    /// unavailable and abandoned — its client immediately moves on. The
    /// simulation never panics on a fault. Reach it through
    /// [`crate::ServeSpec::closed`] plus [`crate::ServeSpec::faults`].
    ///
    /// # Errors
    /// [`SimError::ScheduleMismatch`] when the schedule's disk count
    /// differs from the engine's.
    ///
    /// # Panics
    /// Panics if `clients == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn degraded_obs(
        &self,
        params: &DiskParams,
        queries: &[BucketRegion],
        clients: usize,
        schedule: &FaultSchedule,
        policy: &RetryPolicy,
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> Result<DegradedMultiUserReport> {
        assert!(clients > 0, "closed loop needs at least one client");
        let m = self.core.num_disks();
        if schedule.num_disks() as usize != m {
            return Err(SimError::ScheduleMismatch {
                schedule_disks: schedule.num_disks(),
                experiment_disks: m as u32,
            });
        }
        let record = obs.enabled();
        let meters = record.then(|| LoopMeters::new(obs, "multiuser_degraded", m));
        let timeout_ms = policy.detection_units() as f64 * params.transfer_ms;
        ls.begin(m, queries.len());
        let mut makespan: f64 = 0.0;
        let mut unavailable = 0usize;
        let mut failover_batches = 0usize;
        let mut batches = 0u64;
        let mut queued_batches = 0u64;
        for _ in 0..clients {
            ls.events.push(0.0, 0.0);
        }

        for (i, region) in queries.iter().enumerate() {
            let t = i as u64;
            let issue_at = ls.events.pop().expect("clients > 0").time;
            self.core
                .counts_into(region, &mut ls.plans, &mut ls.scratch, &mut ls.hist);
            // Availability first: abandon (don't half-schedule) a query
            // whose down disk has a down chain successor.
            let lost = ls
                .hist
                .iter()
                .enumerate()
                .any(|(d, &count)| count > 0 && schedule.chain_dead(d as u32, t));
            if lost {
                unavailable += 1;
                ls.events.push(issue_at, 0.0);
                continue;
            }
            let mut completion = issue_at;
            for (d, &count) in ls.hist.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                match schedule.state_at(d as u32, t) {
                    state @ (DiskState::Up | DiskState::Slow(_)) => {
                        let start = issue_at.max(ls.disk_free_at[d]);
                        let service = params.batch_ms_counts(count, self.core.load_of(d))
                            * state.latency_factor();
                        ls.disk_free_at[d] = start + service;
                        ls.disk_busy_ms[d] += service;
                        completion = completion.max(start + service);
                        if record {
                            batches += 1;
                            if start > issue_at {
                                queued_batches += 1;
                            }
                        }
                    }
                    DiskState::Down => {
                        let b = (d + 1) % m;
                        let backup_state = schedule.state_at(b as u32, t);
                        let start = (issue_at + timeout_ms).max(ls.disk_free_at[b]);
                        let service = params.batch_ms_counts(count, self.core.load_of(b))
                            * backup_state.latency_factor();
                        ls.disk_free_at[b] = start + service;
                        ls.disk_busy_ms[b] += service;
                        completion = completion.max(start + service);
                        failover_batches += 1;
                        if record {
                            batches += 1;
                            if start > issue_at + timeout_ms {
                                queued_batches += 1;
                            }
                        }
                    }
                }
            }
            ls.latencies.push(completion - issue_at);
            makespan = makespan.max(completion);
            ls.events.push(completion, completion - issue_at);
        }

        let served = ls.latencies.len();
        let (shape_hits, shape_misses) = ls.plans.drain_stats();
        if let Some(meters) = &meters {
            meters.record(
                served,
                batches,
                queued_batches,
                &ls.disk_busy_ms,
                &ls.latencies,
            );
            obs.counter_add("kernel.shape_cache_hits", shape_hits);
            obs.counter_add("kernel.shape_cache_misses", shape_misses);
            obs.counter_add("multiuser_degraded.unavailable", unavailable as u64);
            obs.counter_add(
                "multiuser_degraded.failover_batches",
                failover_batches as u64,
            );
        }
        let report = assemble_report(
            served,
            clients,
            makespan,
            m,
            &ls.disk_busy_ms,
            &mut ls.latencies,
        );
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("degraded_loop_done")
                    .with("served", served)
                    .with("unavailable", unavailable)
                    .with("failover_batches", failover_batches)
                    .with("makespan_ms", report.makespan_ms),
            );
        }
        Ok(DegradedMultiUserReport {
            report,
            served,
            unavailable,
            failover_batches,
        })
    }
}

/// Position-model closed loop over the flat [`IoPlan`] arena: identical
/// queueing structure to the engine's counts loop, but batch service
/// times come from [`DiskParams::batch_ms`] over actual page positions.
/// The rebuild simulation keeps using this so its healthy baseline and
/// its degraded replay (both position-based) stay directly comparable.
pub(crate) fn run_closed_loop_positions_obs(
    dir: &GridDirectory,
    params: &DiskParams,
    queries: &[BucketRegion],
    clients: usize,
    obs: &Obs,
) -> MultiUserReport {
    assert!(clients > 0, "closed loop needs at least one client");
    let record = obs.enabled();
    let m = dir.num_disks() as usize;
    let meters = record.then(|| LoopMeters::new(obs, "multiuser", m));
    let loads = dir.load_vector();
    let mut plan = IoPlan::new();
    let mut disk_free_at = vec![0.0f64; m];
    let mut disk_busy_ms = vec![0.0f64; m];
    let mut latencies = Vec::with_capacity(queries.len());
    let mut makespan: f64 = 0.0;
    let mut batches = 0u64;
    let mut queued_batches = 0u64;

    let mut ready: EventHeap<()> = EventHeap::new();
    for _ in 0..clients {
        ready.push(0.0, ());
    }

    for region in queries {
        let issue_at = ready.pop().expect("clients > 0").time;
        dir.io_plan_into(region, &mut plan);
        let mut completion = issue_at;
        for (d, pages) in plan.iter().enumerate() {
            if pages.is_empty() {
                continue;
            }
            let start = issue_at.max(disk_free_at[d]);
            let service = params.batch_ms(pages, loads[d]);
            disk_free_at[d] = start + service;
            disk_busy_ms[d] += service;
            completion = completion.max(start + service);
            if record {
                batches += 1;
                if start > issue_at {
                    queued_batches += 1;
                }
            }
        }
        latencies.push(completion - issue_at);
        makespan = makespan.max(completion);
        ready.push(completion, ());
    }

    if let Some(meters) = &meters {
        meters.record(
            queries.len(),
            batches,
            queued_batches,
            &disk_busy_ms,
            &latencies,
        );
    }
    let report = assemble_report(
        queries.len(),
        clients,
        makespan,
        m,
        &disk_busy_ms,
        &mut latencies,
    );
    if obs.trace_enabled() {
        obs.emit(
            TraceEvent::new("closed_loop_done")
                .with("queries", queries.len())
                .with("clients", clients)
                .with("makespan_ms", report.makespan_ms)
                .with("utilization", report.utilization),
        );
    }
    report
}

/// A [`MultiUserReport`] plus the fault accounting of a degraded run.
#[derive(Clone, Debug)]
pub struct DegradedMultiUserReport {
    /// Aggregate stats over the *served* queries (throughput counts only
    /// completed queries; the makespan covers the whole run).
    pub report: MultiUserReport,
    /// Queries that completed.
    pub served: usize,
    /// Queries abandoned because some batch had no live copy.
    pub unavailable: usize,
    /// Batches served by a chain backup instead of their primary disk.
    pub failover_batches: usize,
}

/// One method's measurements at one offered load.
#[derive(Clone, Debug)]
pub struct LoadPointMethod {
    /// Declustering method name.
    pub name: String,
    /// Mean query latency, ms.
    pub mean_latency_ms: f64,
    /// Mean disk utilization in `[0, 1]`.
    pub utilization: f64,
    /// Exact p50/p95/p99 latency tails, ms.
    pub tail_ms: Quantiles,
}

/// One point of a latency-vs-load curve: the offered arrival rate and
/// the per-method measurements at it.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load, queries per second.
    pub rate_qps: f64,
    /// Per-method latency/utilization/tail measurements.
    pub methods: Vec<LoadPointMethod>,
}

/// Sweeps open-loop arrival rates against a set of directories (one per
/// method), producing the classic latency-vs-load curves. The same
/// queries and the same Poisson arrival draws are replayed against every
/// method at every rate, so curves differ only by the declustering.
pub fn load_sweep(
    dirs: &[(&str, &GridDirectory)],
    params: &DiskParams,
    queries: &[BucketRegion],
    rates_qps: &[f64],
    seed: u64,
) -> Vec<LoadPoint> {
    load_sweep_with_threads(dirs, params, queries, rates_qps, seed, 1)
}

/// [`load_sweep`] fanned over the deterministic executor: every
/// `(rate, method)` cell runs as an independent point on up to `threads`
/// worker threads, each worker carrying its own [`LoopScratch`]. Engines
/// and arrival draws are built before the fan-out, so the result is
/// bit-identical for any thread count.
pub fn load_sweep_with_threads(
    dirs: &[(&str, &GridDirectory)],
    params: &DiskParams,
    queries: &[BucketRegion],
    rates_qps: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<LoadPoint> {
    use rand::SeedableRng;
    let engines: Vec<MultiUserEngine> = dirs
        .iter()
        .map(|(_, dir)| MultiUserEngine::new(dir))
        .collect();
    let arrivals: Vec<Vec<f64>> = rates_qps
        .iter()
        .map(|&rate| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            poisson_arrivals(&mut rng, queries.len(), rate)
        })
        .collect();
    let nm = dirs.len();
    let obs = Obs::disabled();
    let cells = crate::exec::run_indexed_with(
        threads,
        rates_qps.len() * nm,
        &obs,
        LoopScratch::new,
        |i, ls| {
            let report =
                engines[i % nm].open_loop_obs(params, queries, &arrivals[i / nm], &obs, ls);
            (report.latency.mean, report.utilization, report.tail)
        },
    );
    rates_qps
        .iter()
        .enumerate()
        .map(|(ri, &rate)| LoadPoint {
            rate_qps: rate,
            methods: dirs
                .iter()
                .enumerate()
                .map(|(mi, (name, _))| {
                    let (mean_latency_ms, utilization, tail_ms) = cells[ri * nm + mi];
                    LoadPointMethod {
                        name: (*name).to_owned(),
                        mean_latency_ms,
                        utilization,
                        tail_ms,
                    }
                })
                .collect(),
        })
        .collect()
}

/// Exponential (Poisson-process) arrival times for `n` queries at
/// `rate_qps` queries per second, starting at time 0, from any
/// [`rand::Rng`]. Deterministic per seed.
pub fn poisson_arrivals<R: rand::Rng>(rng: &mut R, n: usize, rate_qps: f64) -> Vec<f64> {
    assert!(rate_qps > 0.0, "arrival rate must be positive");
    let mean_gap_ms = 1000.0 / rate_qps;
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() * mean_gap_ms;
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{BucketCoord, DiskId, GridSpace};
    use decluster_methods::{DeclusteringMethod, DiskModulo, Hcam};

    fn directory(m: u32, method: &dyn DeclusteringMethod, space: &GridSpace) -> GridDirectory {
        GridDirectory::build(space.clone(), m, |b| method.disk_of(b.as_slice()))
    }

    // Test-local shorthands mirroring the removed free-function wrappers:
    // one engine + fresh scratch per call, observability off.
    fn run_closed_loop(
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
        clients: usize,
    ) -> MultiUserReport {
        MultiUserEngine::new(dir).closed_loop_obs(
            params,
            queries,
            clients,
            &Obs::disabled(),
            &mut LoopScratch::new(),
        )
    }

    fn run_open_loop(
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
    ) -> MultiUserReport {
        MultiUserEngine::new(dir).open_loop_obs(
            params,
            queries,
            arrivals_ms,
            &Obs::disabled(),
            &mut LoopScratch::new(),
        )
    }

    fn run_closed_loop_degraded(
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
        clients: usize,
        schedule: &FaultSchedule,
        policy: &RetryPolicy,
    ) -> Result<DegradedMultiUserReport> {
        MultiUserEngine::new(dir).degraded_obs(
            params,
            queries,
            clients,
            schedule,
            policy,
            &Obs::disabled(),
            &mut LoopScratch::new(),
        )
    }

    fn small_squares(space: &GridSpace) -> Vec<BucketRegion> {
        let mut v = Vec::new();
        for r in (0..space.dim(0) - 1).step_by(2) {
            for c in (0..space.dim(1) - 1).step_by(2) {
                v.push(
                    BucketRegion::new(
                        space,
                        BucketCoord::from([r, c]),
                        BucketCoord::from([r + 1, c + 1]),
                    )
                    .unwrap(),
                );
            }
        }
        v
    }

    /// Count-model response time of a lone query: max over disks of
    /// `batch_ms_counts` over the I/O plan's group sizes — an
    /// independent (arena-based) derivation of what the engine's kernel
    /// path must produce.
    fn solo_ms(dir: &GridDirectory, params: &DiskParams, region: &BucketRegion) -> f64 {
        let mut plan = IoPlan::new();
        dir.io_plan_into(region, &mut plan);
        let loads = dir.load_vector();
        plan.iter()
            .zip(&loads)
            .map(|(pages, &disk_pages)| params.batch_ms_counts(pages.len() as u64, disk_pages))
            .fold(0.0, f64::max)
    }

    #[test]
    fn single_client_latency_equals_single_query_time() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let report = run_closed_loop(&dir, &params, &queries[..1], 1);
        assert_eq!(report.queries, 1);
        let expected = solo_ms(&dir, &params, &queries[0]);
        assert!((report.latency.mean - expected).abs() < 1e-9);
        assert!((report.makespan_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn engine_reuse_is_bit_identical_to_fresh_runs() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let dir = directory(8, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let engine = MultiUserEngine::new(&dir);
        assert!(engine.kernel_backed());
        assert_eq!(engine.num_disks(), 8);
        let obs = Obs::disabled();
        let mut ls = LoopScratch::new();
        // A warm scratch (reused across runs) must not change any bit of
        // the output relative to one-shot wrapper runs.
        let _warmup = engine.closed_loop_obs(&params, &queries, 4, &obs, &mut ls);
        let reused = engine.closed_loop_obs(&params, &queries, 4, &obs, &mut ls);
        let fresh = run_closed_loop(&dir, &params, &queries, 4);
        assert_eq!(reused.makespan_ms.to_bits(), fresh.makespan_ms.to_bits());
        assert_eq!(reused.latency.mean.to_bits(), fresh.latency.mean.to_bits());
        assert_eq!(
            reused.throughput_qps.to_bits(),
            fresh.throughput_qps.to_bits()
        );
        assert_eq!(reused.tail, fresh.tail);
    }

    #[test]
    fn more_clients_increase_throughput_until_saturation() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let dir = directory(8, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let t1 = run_closed_loop(&dir, &params, &queries, 1).throughput_qps;
        let t4 = run_closed_loop(&dir, &params, &queries, 4).throughput_qps;
        assert!(
            t4 > t1,
            "4 clients ({t4:.1} qps) should beat 1 ({t1:.1} qps)"
        );
    }

    #[test]
    fn better_declustering_gives_higher_throughput() {
        // All-on-one-disk versus HCAM on the same workload: the spread
        // allocation must win on throughput and utilization.
        let space = GridSpace::new_2d(16, 16).unwrap();
        let m = 8;
        let hcam = Hcam::new(&space, m).unwrap();
        let spread = directory(m, &hcam, &space);
        let stacked = GridDirectory::build(space.clone(), m, |_| DiskId(0));
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let good = run_closed_loop(&spread, &params, &queries, 4);
        let bad = run_closed_loop(&stacked, &params, &queries, 4);
        assert!(good.throughput_qps > bad.throughput_qps);
        assert!(good.utilization > bad.utilization);
    }

    #[test]
    fn latency_suffers_under_contention() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let solo = run_closed_loop(&dir, &params, &queries, 1);
        let busy = run_closed_loop(&dir, &params, &queries, 8);
        assert!(busy.latency.mean >= solo.latency.mean);
    }

    #[test]
    fn reports_are_deterministic() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let a = run_closed_loop(&dir, &params, &queries, 3);
        let b = run_closed_loop(&dir, &params, &queries, 3);
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tail, b.tail);
    }

    #[test]
    fn report_tails_are_ordered_and_within_range() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let report = run_closed_loop(&dir, &DiskParams::default(), &small_squares(&space), 4);
        assert!(report.latency.min <= report.tail.p50);
        assert!(report.tail.p50 <= report.tail.p95);
        assert!(report.tail.p95 <= report.tail.p99);
        assert!(report.tail.p99 <= report.latency.max);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let report = run_closed_loop(&dir, &params, &queries, 2);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    }

    #[test]
    fn open_loop_light_load_has_unqueued_latencies() {
        // With arrivals far apart, each query sees an idle subsystem:
        // its latency equals the single-query response time.
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let arrivals: Vec<f64> = (0..queries.len()).map(|i| i as f64 * 1e6).collect();
        let report = run_open_loop(&dir, &params, &queries, &arrivals);
        // Mean latency equals mean solo response time.
        let solo_mean: f64 = queries
            .iter()
            .map(|q| solo_ms(&dir, &params, q))
            .sum::<f64>()
            / queries.len() as f64;
        assert!((report.latency.mean - solo_mean).abs() < 1e-9);
    }

    #[test]
    fn open_loop_heavy_load_queues_up() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        // All queries arrive at t=0: maximal queueing.
        let slammed = run_open_loop(&dir, &params, &queries, &vec![0.0; queries.len()]);
        let spaced: Vec<f64> = (0..queries.len()).map(|i| i as f64 * 1e5).collect();
        let idle = run_open_loop(&dir, &params, &queries, &spaced);
        assert!(slammed.latency.mean > idle.latency.mean * 2.0);
        assert!(slammed.utilization > idle.utilization);
    }

    #[test]
    fn load_sweep_produces_monotone_curves() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let m = 4;
        let dm = DiskModulo::new(&space, m).unwrap();
        let hcam = Hcam::new(&space, m).unwrap();
        let dir_dm = directory(m, &dm, &space);
        let dir_hcam = directory(m, &hcam, &space);
        let queries = small_squares(&space);
        let points = load_sweep(
            &[("DM", &dir_dm), ("HCAM", &dir_hcam)],
            &DiskParams::default(),
            &queries,
            &[1.0, 20.0, 200.0],
            42,
        );
        assert_eq!(points.len(), 3);
        // Per method, latency never decreases with rate.
        for mi in 0..2 {
            let lats: Vec<f64> = points
                .iter()
                .map(|p| p.methods[mi].mean_latency_ms)
                .collect();
            assert!(lats.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{lats:?}");
        }
        // At the light-load end, HCAM (better spreader on 2x2s) is at
        // least as fast as DM.
        let (dm_lat, hcam_lat) = (
            points[0].methods[0].mean_latency_ms,
            points[0].methods[1].mean_latency_ms,
        );
        assert!(hcam_lat <= dm_lat + 1e-9, "HCAM {hcam_lat} vs DM {dm_lat}");
        // Tails are ordered per cell.
        for p in &points {
            for mm in &p.methods {
                assert!(mm.tail_ms.p50 <= mm.tail_ms.p95);
                assert!(mm.tail_ms.p95 <= mm.tail_ms.p99);
            }
        }
    }

    #[test]
    fn load_sweep_is_thread_count_invariant() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let m = 4;
        let dm = DiskModulo::new(&space, m).unwrap();
        let hcam = Hcam::new(&space, m).unwrap();
        let dir_dm = directory(m, &dm, &space);
        let dir_hcam = directory(m, &hcam, &space);
        let dirs: Vec<(&str, &GridDirectory)> = vec![("DM", &dir_dm), ("HCAM", &dir_hcam)];
        let queries = small_squares(&space);
        let rates = [1.0, 10.0, 50.0, 200.0];
        let params = DiskParams::default();
        let serial = load_sweep_with_threads(&dirs, &params, &queries, &rates, 42, 1);
        let parallel = load_sweep_with_threads(&dirs, &params, &queries, &rates, 42, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.rate_qps.to_bits(), b.rate_qps.to_bits());
            for (ma, mb) in a.methods.iter().zip(&b.methods) {
                assert_eq!(ma.name, mb.name);
                assert_eq!(
                    ma.mean_latency_ms.to_bits(),
                    mb.mean_latency_ms.to_bits(),
                    "latency differs"
                );
                assert_eq!(
                    ma.utilization.to_bits(),
                    mb.utilization.to_bits(),
                    "utilization differs"
                );
                assert_eq!(ma.tail_ms, mb.tail_ms, "tails differ");
            }
        }
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let arrivals = poisson_arrivals(&mut rng, 10_000, 50.0);
        assert_eq!(arrivals.len(), 10_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap ~ 20ms within 10%.
        let span = arrivals.last().unwrap() - arrivals[0];
        let mean_gap = span / 9_999.0;
        assert!((mean_gap - 20.0).abs() < 2.0, "mean gap {mean_gap}");
    }

    #[test]
    fn degraded_loop_with_healthy_schedule_matches_plain_loop() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let plain = run_closed_loop(&dir, &params, &queries, 3);
        let degraded = run_closed_loop_degraded(
            &dir,
            &params,
            &queries,
            3,
            &FaultSchedule::healthy(4),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(degraded.served, queries.len());
        assert_eq!(degraded.unavailable, 0);
        assert_eq!(degraded.failover_batches, 0);
        assert_eq!(degraded.report.makespan_ms, plain.makespan_ms);
        assert_eq!(degraded.report.latency, plain.latency);
        assert_eq!(degraded.report.tail, plain.tail);
    }

    #[test]
    fn mid_workload_failure_degrades_but_serves_everything() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let half = queries.len() as u64 / 2;
        let schedule = FaultSchedule::healthy(4).fail_stop(1, half).unwrap();
        let healthy = run_closed_loop(&dir, &params, &queries, 2);
        let degraded = run_closed_loop_degraded(
            &dir,
            &params,
            &queries,
            2,
            &schedule,
            &RetryPolicy::default(),
        )
        .unwrap();
        // Chained failover keeps every query alive...
        assert_eq!(degraded.served, queries.len());
        assert_eq!(degraded.unavailable, 0);
        assert!(degraded.failover_batches > 0);
        // ...at a throughput cost.
        assert!(degraded.report.throughput_qps <= healthy.throughput_qps + 1e-9);
        assert!(degraded.report.makespan_ms >= healthy.makespan_ms - 1e-9);
    }

    #[test]
    fn adjacent_double_failure_drops_queries_without_panicking() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let queries = small_squares(&space);
        let schedule = FaultSchedule::healthy(4)
            .fail_stop(1, 0)
            .unwrap()
            .fail_stop(2, 0)
            .unwrap();
        let degraded = run_closed_loop_degraded(
            &dir,
            &DiskParams::default(),
            &queries,
            2,
            &schedule,
            &RetryPolicy::default(),
        )
        .unwrap();
        // 2x2 queries under HCAM at M=4 touch disk 1 (whose backup, disk
        // 2, is also down) often enough that some queries are lost — but
        // the run completes and accounts for every query.
        assert_eq!(degraded.served + degraded.unavailable, queries.len());
        assert!(degraded.unavailable > 0);
    }

    #[test]
    fn slow_disk_stretches_latency() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 4).unwrap();
        let dir = directory(4, &hcam, &space);
        let params = DiskParams::default();
        let queries = small_squares(&space);
        let schedule = FaultSchedule::healthy(4).slow(0, 4.0, 0, u64::MAX).unwrap();
        let healthy = run_closed_loop(&dir, &params, &queries, 2);
        let gray = run_closed_loop_degraded(
            &dir,
            &params,
            &queries,
            2,
            &schedule,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(gray.served, queries.len());
        assert!(gray.report.latency.mean > healthy.latency.mean);
    }

    #[test]
    fn degraded_loop_rejects_mismatched_schedule() {
        let space = GridSpace::new_2d(8, 8).unwrap();
        let dm = DiskModulo::new(&space, 4).unwrap();
        let dir = directory(4, &dm, &space);
        let queries = small_squares(&space);
        assert!(matches!(
            run_closed_loop_degraded(
                &dir,
                &DiskParams::default(),
                &queries,
                1,
                &FaultSchedule::healthy(8),
                &RetryPolicy::default(),
            )
            .unwrap_err(),
            SimError::ScheduleMismatch { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn open_loop_rejects_unsorted_arrivals() {
        let space = GridSpace::new_2d(4, 4).unwrap();
        let dm = DiskModulo::new(&space, 2).unwrap();
        let dir = directory(2, &dm, &space);
        let queries = small_squares(&space);
        let n = queries.len();
        let mut arrivals = vec![0.0; n];
        if n >= 2 {
            arrivals[0] = 5.0;
        }
        let _ = run_open_loop(&dir, &DiskParams::default(), &queries, &arrivals);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let space = GridSpace::new_2d(4, 4).unwrap();
        let dm = DiskModulo::new(&space, 2).unwrap();
        let dir = directory(2, &dm, &space);
        let _ = run_closed_loop(&dir, &DiskParams::default(), &[], 0);
    }
}
