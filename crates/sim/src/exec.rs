//! Deterministic parallel sweep execution.
//!
//! Sweep points are independent once each point draws from its own
//! derived RNG stream, so the executor fans them out over scoped worker
//! threads pulling indices from a shared atomic counter. Results land in
//! their index's slot, which makes the output a pure function of the
//! inputs: one thread and N threads produce bit-identical sweeps.

use decluster_obs::Obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the RNG seed for sweep point `index` from the experiment
/// seed (SplitMix64 finalizer over the pair), so every point gets an
/// independent stream regardless of which thread runs it or in what
/// order.
pub(crate) fn derive_point_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates `eval(0..total)` on up to `threads` worker threads and
/// returns the results in index order. `threads <= 1` (or a single
/// point) runs inline with no thread machinery; the parallel path uses
/// `std::thread::scope`, so borrowed state in `eval` needs no `'static`
/// bound. A panicking evaluation propagates when the scope joins.
///
/// When `obs` is live, each worker reports its busy wall time and how
/// many indices it claimed. Both land in the snapshot's wall-clock
/// section: which worker claims which index is scheduling-dependent, so
/// per-worker counts are *not* part of the deterministic contract (the
/// `exec.worker_points` total across workers still equals `total`).
pub(crate) fn run_indexed<T, F>(threads: usize, total: usize, obs: &Obs, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads, total, obs, || (), |i, ()| eval(i))
}

/// As [`run_indexed`], but each worker thread carries private mutable
/// state built by `init` once at worker start and passed to every
/// evaluation that worker claims. This is how the sweep engine threads a
/// per-worker `Scratch` (accumulators + the kernel's query-plan cache)
/// through the scoring loop without locking or per-point allocation.
///
/// The state must not influence results (the determinism contract:
/// which worker — and therefore which state instance — evaluates an
/// index is scheduling-dependent). Evaluations that report per-batch
/// statistics from the state must reset it at batch start.
pub(crate) fn run_indexed_with<T, S, I, F>(
    threads: usize,
    total: usize,
    obs: &Obs,
    init: I,
    eval: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let threads = threads.clamp(1, total.max(1));
    if threads <= 1 {
        let _busy = obs.time_phase("exec.worker_busy_ms");
        if obs.enabled() {
            obs.wall_add("exec.worker_points", total as f64);
        }
        let mut state = init();
        return (0..total).map(|i| eval(i, &mut state)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _busy = obs.time_phase("exec.worker_busy_ms");
                let mut state = init();
                let mut claimed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let result = eval(i, &mut state);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                    claimed += 1;
                }
                if obs.enabled() {
                    obs.wall_add("exec.worker_points", claimed as f64);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = run_indexed(4, 100, &Obs::disabled(), |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let obs = Obs::disabled();
        assert_eq!(run_indexed(1, 3, &obs, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(8, 0, &obs, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_matches_sequential() {
        let obs = Obs::disabled();
        let f = |i: usize| derive_point_seed(42, i as u64);
        assert_eq!(run_indexed(1, 64, &obs, f), run_indexed(7, 64, &obs, f));
    }

    #[test]
    fn worker_point_totals_account_for_every_index() {
        use decluster_obs::{MetricsRecorder, Recorder};
        use std::sync::Arc;
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        let out = run_indexed(4, 37, &obs, |i| i);
        assert_eq!(out.len(), 37);
        let snap = rec.snapshot();
        let points: f64 = snap
            .walls
            .iter()
            .find(|(n, _)| n == "exec.worker_points")
            .map(|(_, s)| s.total_ms)
            .unwrap();
        assert_eq!(points, 37.0);
    }

    #[test]
    fn per_worker_state_is_private_and_reused() {
        let obs = Obs::disabled();
        // Each worker counts how many indices it evaluated in its own
        // state; results carry the pre-increment count, so within any
        // worker's claimed set the counts are 0,1,2,... — and the result
        // vector stays a permutation-independent function of the input.
        let out = run_indexed_with(
            4,
            64,
            &obs,
            || 0usize,
            |i, seen| {
                *seen += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        let serial = run_indexed_with(
            1,
            64,
            &obs,
            || 0usize,
            |i, seen| {
                *seen += 1;
                assert_eq!(*seen, i + 1, "serial worker sees every index in order");
                i * 2
            },
        );
        assert_eq!(serial, out);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|i| derive_point_seed(1994, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }
}
