use decluster_grid::{BucketRegion, GridDirectory};

/// Timing parameters of one disk in the parallel I/O subsystem.
///
/// Defaults model an early-1990s drive of the kind the paper's era assumed
/// (Seagate Wren-class: ~16 ms average seek, 3600 RPM spindle, ~1 MB/s
/// media rate with 8 KiB bucket pages). The reproduced figures never use
/// wall-clock time — the paper's metric is bucket retrievals — but the
/// millisecond model lets examples report realistic latencies and keeps
/// the simulator honest about seek locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskParams {
    /// Minimum (track-to-track) seek, ms.
    pub min_seek_ms: f64,
    /// Maximum (full-stroke) seek, ms.
    pub max_seek_ms: f64,
    /// Average rotational latency (half a revolution), ms.
    pub rotational_latency_ms: f64,
    /// Transfer time of one bucket page, ms.
    pub transfer_ms: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            min_seek_ms: 2.0,
            max_seek_ms: 26.0,
            rotational_latency_ms: 8.3,
            transfer_ms: 8.0,
        }
    }
}

impl DiskParams {
    /// Seek time to move `distance` pages across a disk holding
    /// `disk_pages` pages: linear interpolation between the min and max
    /// seek (the classic first-order seek model). Zero distance means the
    /// head is already there.
    pub fn seek_ms(&self, distance: u64, disk_pages: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let span = (disk_pages.max(2) - 1) as f64;
        let frac = (distance as f64 / span).min(1.0);
        self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * frac
    }

    /// Service time for a batch of page reads on one disk, given the
    /// sorted page positions. The head starts at page 0, sweeps in
    /// ascending order (an elevator pass), and pays seek + rotation +
    /// transfer per page, except that *sequential* pages (distance 1 after
    /// the first) skip the rotational latency.
    pub fn batch_ms(&self, sorted_pages: &[u64], disk_pages: u64) -> f64 {
        let mut head: u64 = 0;
        let mut total = 0.0;
        let mut first = true;
        for &p in sorted_pages {
            let dist = p.abs_diff(head);
            total += self.seek_ms(dist, disk_pages);
            let sequential = !first && dist == 1;
            if !sequential {
                total += self.rotational_latency_ms;
            }
            total += self.transfer_ms;
            head = p;
            first = false;
        }
        total
    }
}

/// A parallel I/O subsystem: `M` identical disks served concurrently.
///
/// Response time of a query is the slowest disk's batch service time,
/// mirroring the paper's max-per-disk metric at millisecond granularity.
#[derive(Clone, Debug, Default)]
pub struct IoSimulator {
    params: DiskParams,
}

impl IoSimulator {
    /// A simulator with the given disk parameters.
    pub fn new(params: DiskParams) -> Self {
        IoSimulator { params }
    }

    /// The disk parameters in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Wall-clock response time of `region` against a materialized
    /// directory, in milliseconds: every disk reads its touched pages in
    /// one elevator pass; the slowest disk determines the answer.
    pub fn query_response_ms(&self, dir: &GridDirectory, region: &BucketRegion) -> f64 {
        let plan = dir.io_plan(region);
        let loads = dir.load_vector();
        plan.iter()
            .zip(&loads)
            .map(|(pages, &disk_pages)| self.params.batch_ms(pages, disk_pages))
            .fold(0.0, f64::max)
    }

    /// Aggregate throughput view: total pages read divided by response
    /// time, in pages per second. Zero for an empty region plan.
    pub fn query_throughput_pages_per_s(&self, dir: &GridDirectory, region: &BucketRegion) -> f64 {
        let ms = self.query_response_ms(dir, region);
        if ms <= 0.0 {
            return 0.0;
        }
        region.num_buckets() as f64 / (ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{BucketCoord, DiskId, GridSpace};

    fn params() -> DiskParams {
        DiskParams::default()
    }

    #[test]
    fn seek_scales_with_distance() {
        let p = params();
        assert_eq!(p.seek_ms(0, 100), 0.0);
        let near = p.seek_ms(1, 100);
        let far = p.seek_ms(99, 100);
        assert!(near >= p.min_seek_ms && near < far);
        assert!((far - p.max_seek_ms).abs() < 1e-9);
        // Distance beyond the platter clamps.
        assert_eq!(p.seek_ms(500, 100), p.max_seek_ms);
    }

    #[test]
    fn sequential_reads_skip_rotation() {
        let p = params();
        let seq = p.batch_ms(&[0, 1, 2, 3], 100);
        let scattered = p.batch_ms(&[0, 30, 60, 90], 100);
        assert!(seq < scattered);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(params().batch_ms(&[], 100), 0.0);
    }

    #[test]
    fn single_page_cost_components() {
        let p = params();
        let cost = p.batch_ms(&[0], 100);
        // Head starts at 0: no seek, rotation + transfer only.
        assert!((cost - (p.rotational_latency_ms + p.transfer_ms)).abs() < 1e-9);
    }

    #[test]
    fn response_is_max_over_disks() {
        // 4x4 grid, 2 disks, split so disk 0 gets one page of the query
        // and disk 1 gets three: response equals disk 1's batch.
        let space = GridSpace::new_2d(4, 4).unwrap();
        let dir = GridDirectory::build(space.clone(), 2, |b| {
            DiskId(u32::from(b.as_slice() != [0, 0]))
        });
        let region = decluster_grid::BucketRegion::new(
            &space,
            BucketCoord::from([0, 0]),
            BucketCoord::from([1, 1]),
        )
        .unwrap();
        let sim = IoSimulator::default();
        let ms = sim.query_response_ms(&dir, &region);
        let plan = dir.io_plan(&region);
        let d1 = sim.params().batch_ms(&plan[1], dir.load_vector()[1]);
        assert!((ms - d1).abs() < 1e-9);
        assert!(sim.query_throughput_pages_per_s(&dir, &region) > 0.0);
    }

    #[test]
    fn better_declustering_is_faster_in_milliseconds() {
        // The ms model must preserve the paper's ordering: spreading a
        // query over both disks beats stacking it on one.
        let space = GridSpace::new_2d(4, 4).unwrap();
        let spread = GridDirectory::build(space.clone(), 2, |b| DiskId((b.coord_sum() % 2) as u32));
        let stacked = GridDirectory::build(space.clone(), 2, |b| {
            DiskId(u32::from(b.as_slice()[0] >= 2))
        });
        let region = decluster_grid::BucketRegion::new(
            &space,
            BucketCoord::from([0, 0]),
            BucketCoord::from([1, 3]),
        )
        .unwrap();
        let sim = IoSimulator::default();
        assert!(sim.query_response_ms(&spread, &region) < sim.query_response_ms(&stacked, &region));
    }
}
