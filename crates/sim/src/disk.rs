use decluster_grid::{BucketRegion, GridDirectory, IoPlan};

/// Timing parameters of one disk in the parallel I/O subsystem.
///
/// Defaults model an early-1990s drive of the kind the paper's era assumed
/// (Seagate Wren-class: ~16 ms average seek, 3600 RPM spindle, ~1 MB/s
/// media rate with 8 KiB bucket pages). The reproduced figures never use
/// wall-clock time — the paper's metric is bucket retrievals — but the
/// millisecond model lets examples report realistic latencies and keeps
/// the simulator honest about seek locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskParams {
    /// Minimum (track-to-track) seek, ms.
    pub min_seek_ms: f64,
    /// Maximum (full-stroke) seek, ms.
    pub max_seek_ms: f64,
    /// Average rotational latency (half a revolution), ms.
    pub rotational_latency_ms: f64,
    /// Transfer time of one bucket page, ms.
    pub transfer_ms: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            min_seek_ms: 2.0,
            max_seek_ms: 26.0,
            rotational_latency_ms: 8.3,
            transfer_ms: 8.0,
        }
    }
}

impl DiskParams {
    /// Seek time to move `distance` pages across a disk holding
    /// `disk_pages` pages: linear interpolation between the min and max
    /// seek (the classic first-order seek model). Zero distance means the
    /// head is already there.
    pub fn seek_ms(&self, distance: u64, disk_pages: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let span = (disk_pages.max(2) - 1) as f64;
        let frac = (distance as f64 / span).min(1.0);
        self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * frac
    }

    /// Service time for a batch of page reads on one disk, given the
    /// sorted page positions. The head starts at page 0, sweeps in
    /// ascending order (an elevator pass), and pays seek + rotation +
    /// transfer per page, except that *sequential* pages (distance 1 after
    /// the first) skip the rotational latency.
    pub fn batch_ms(&self, sorted_pages: &[u64], disk_pages: u64) -> f64 {
        let mut head: u64 = 0;
        let mut total = 0.0;
        let mut first = true;
        for &p in sorted_pages {
            let dist = p.abs_diff(head);
            total += self.seek_ms(dist, disk_pages);
            let sequential = !first && dist == 1;
            if !sequential {
                total += self.rotational_latency_ms;
            }
            total += self.transfer_ms;
            head = p;
            first = false;
        }
        total
    }

    /// Service time for a batch of `count` page reads on a disk holding
    /// `disk_pages` pages, given only the *count* — the service model of
    /// the multi-user engine's kernel fast path, which never materializes
    /// page identities.
    ///
    /// The batch is modeled as `count` pages spread evenly across the
    /// platter (the expected layout under declustering): each read pays a
    /// seek over the expected gap `span / count` (at least one page), plus
    /// rotation and transfer. Unlike [`DiskParams::batch_ms`] there is no
    /// sequential-rotation discount, which keeps the cost *strictly
    /// increasing in `count`* — the property the closed/open-loop ordering
    /// tests rely on (a discount makes dense batches non-monotone).
    pub fn batch_ms_counts(&self, count: u64, disk_pages: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let n = count as f64;
        let span = (disk_pages.max(2) - 1) as f64;
        let gap = (span / n).max(1.0);
        let frac = (gap / span).min(1.0);
        let seek = self.min_seek_ms + (self.max_seek_ms - self.min_seek_ms) * frac;
        n * (seek + self.rotational_latency_ms + self.transfer_ms)
    }

    /// Nominal cost of one isolated page read at minimum seek distance:
    /// `min_seek + rotation + transfer`. The experiment harness uses this
    /// to size client counts and sampling intervals from disk speed.
    pub fn per_page_ms(&self) -> f64 {
        self.min_seek_ms + self.rotational_latency_ms + self.transfer_ms
    }

    /// As [`DiskParams::batch_ms`] over the merge of two sorted page runs,
    /// without materializing the merged sequence — the rebuild failover
    /// path reads a disk's own pages plus the failed disk's replica pages
    /// in one elevator pass.
    pub fn batch_ms_merged(&self, a: &[u64], b: &[u64], disk_pages: u64) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut head: u64 = 0;
        let mut total = 0.0;
        let mut first = true;
        while i < a.len() || j < b.len() {
            let p = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x <= y => {
                    i += 1;
                    x
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (_, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            let dist = p.abs_diff(head);
            total += self.seek_ms(dist, disk_pages);
            if first || dist != 1 {
                total += self.rotational_latency_ms;
            }
            total += self.transfer_ms;
            head = p;
            first = false;
        }
        total
    }
}

/// A parallel I/O subsystem: `M` identical disks served concurrently.
///
/// Response time of a query is the slowest disk's batch service time,
/// mirroring the paper's max-per-disk metric at millisecond granularity.
#[derive(Clone, Debug, Default)]
pub struct IoSimulator {
    params: DiskParams,
}

impl IoSimulator {
    /// A simulator with the given disk parameters.
    pub fn new(params: DiskParams) -> Self {
        IoSimulator { params }
    }

    /// The disk parameters in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Wall-clock response time of `region` against a materialized
    /// directory, in milliseconds: every disk reads its touched pages in
    /// one elevator pass; the slowest disk determines the answer.
    pub fn query_response_ms(&self, dir: &GridDirectory, region: &BucketRegion) -> f64 {
        let mut plan = IoPlan::new();
        let loads = dir.load_vector();
        self.query_response_ms_with(dir, region, &mut plan, &loads)
    }

    /// As [`IoSimulator::query_response_ms`], reusing a caller-owned plan
    /// arena and pre-computed load vector so repeated queries allocate
    /// nothing.
    pub fn query_response_ms_with(
        &self,
        dir: &GridDirectory,
        region: &BucketRegion,
        plan: &mut IoPlan,
        loads: &[u64],
    ) -> f64 {
        dir.io_plan_into(region, plan);
        plan.iter()
            .zip(loads)
            .map(|(pages, &disk_pages)| self.params.batch_ms(pages, disk_pages))
            .fold(0.0, f64::max)
    }

    /// Aggregate throughput view: total pages read divided by response
    /// time, in pages per second. Zero for an empty region plan.
    pub fn query_throughput_pages_per_s(&self, dir: &GridDirectory, region: &BucketRegion) -> f64 {
        let ms = self.query_response_ms(dir, region);
        if ms <= 0.0 {
            return 0.0;
        }
        region.num_buckets() as f64 / (ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::{BucketCoord, DiskId, GridSpace};

    fn params() -> DiskParams {
        DiskParams::default()
    }

    #[test]
    fn seek_scales_with_distance() {
        let p = params();
        assert_eq!(p.seek_ms(0, 100), 0.0);
        let near = p.seek_ms(1, 100);
        let far = p.seek_ms(99, 100);
        assert!(near >= p.min_seek_ms && near < far);
        assert!((far - p.max_seek_ms).abs() < 1e-9);
        // Distance beyond the platter clamps.
        assert_eq!(p.seek_ms(500, 100), p.max_seek_ms);
    }

    #[test]
    fn sequential_reads_skip_rotation() {
        let p = params();
        let seq = p.batch_ms(&[0, 1, 2, 3], 100);
        let scattered = p.batch_ms(&[0, 30, 60, 90], 100);
        assert!(seq < scattered);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(params().batch_ms(&[], 100), 0.0);
    }

    #[test]
    fn single_page_cost_components() {
        let p = params();
        let cost = p.batch_ms(&[0], 100);
        // Head starts at 0: no seek, rotation + transfer only.
        assert!((cost - (p.rotational_latency_ms + p.transfer_ms)).abs() < 1e-9);
    }

    #[test]
    fn response_is_max_over_disks() {
        // 4x4 grid, 2 disks, split so disk 0 gets one page of the query
        // and disk 1 gets three: response equals disk 1's batch.
        let space = GridSpace::new_2d(4, 4).unwrap();
        let dir = GridDirectory::build(space.clone(), 2, |b| {
            DiskId(u32::from(b.as_slice() != [0, 0]))
        });
        let region = decluster_grid::BucketRegion::new(
            &space,
            BucketCoord::from([0, 0]),
            BucketCoord::from([1, 1]),
        )
        .unwrap();
        let sim = IoSimulator::default();
        let ms = sim.query_response_ms(&dir, &region);
        let mut plan = IoPlan::new();
        dir.io_plan_into(&region, &mut plan);
        let d1 = sim
            .params()
            .batch_ms(plan.disk_pages(1), dir.load_vector()[1]);
        assert!((ms - d1).abs() < 1e-9);
        assert!(sim.query_throughput_pages_per_s(&dir, &region) > 0.0);
    }

    #[test]
    fn per_page_is_the_component_sum() {
        let p = params();
        assert!(
            (p.per_page_ms() - (p.min_seek_ms + p.rotational_latency_ms + p.transfer_ms)).abs()
                < 1e-12
        );
    }

    #[test]
    fn counts_batch_is_strictly_monotone_and_free_when_empty() {
        let p = params();
        assert_eq!(p.batch_ms_counts(0, 100), 0.0);
        let mut prev = 0.0;
        for n in 1..=100 {
            let ms = p.batch_ms_counts(n, 100);
            assert!(ms > prev, "batch_ms_counts must grow with count");
            prev = ms;
        }
        // One page spread over the whole platter pays the full expected
        // seek plus rotation and transfer.
        let one = p.batch_ms_counts(1, 100);
        let expect = p.max_seek_ms + p.rotational_latency_ms + p.transfer_ms;
        assert!((one - expect).abs() < 1e-9);
    }

    #[test]
    fn counts_batch_prefers_spread_out_work() {
        // The count model must preserve the paper's ordering: the slowest
        // disk of a balanced split beats one disk taking everything.
        let p = params();
        let balanced = p.batch_ms_counts(4, 100);
        let stacked = p.batch_ms_counts(8, 100);
        assert!(balanced < stacked);
    }

    #[test]
    fn merged_batch_equals_batch_of_merged_pages() {
        let p = params();
        let a = [0u64, 5, 9, 40];
        let b = [2u64, 9, 33];
        let mut merged: Vec<u64> = a.iter().chain(&b).copied().collect();
        merged.sort_unstable();
        assert!((p.batch_ms_merged(&a, &b, 100) - p.batch_ms(&merged, 100)).abs() < 1e-9);
        assert!((p.batch_ms_merged(&a, &[], 100) - p.batch_ms(&a, 100)).abs() < 1e-9);
        assert!((p.batch_ms_merged(&[], &b, 100) - p.batch_ms(&b, 100)).abs() < 1e-9);
        assert_eq!(p.batch_ms_merged(&[], &[], 100), 0.0);
    }

    #[test]
    fn better_declustering_is_faster_in_milliseconds() {
        // The ms model must preserve the paper's ordering: spreading a
        // query over both disks beats stacking it on one.
        let space = GridSpace::new_2d(4, 4).unwrap();
        let spread = GridDirectory::build(space.clone(), 2, |b| DiskId((b.coord_sum() % 2) as u32));
        let stacked = GridDirectory::build(space.clone(), 2, |b| {
            DiskId(u32::from(b.as_slice()[0] >= 2))
        });
        let region = decluster_grid::BucketRegion::new(
            &space,
            BucketCoord::from([0, 0]),
            BucketCoord::from([1, 3]),
        )
        .unwrap();
        let sim = IoSimulator::default();
        assert!(sim.query_response_ms(&spread, &region) < sim.query_response_ms(&stacked, &region));
    }
}
