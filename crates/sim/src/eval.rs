use crate::faults::{
    degraded_outcome_r, FaultMethodStats, FaultSchedule, QueryOutcome, ReplicaPolicy, RetryPolicy,
};
use crate::{optimal_response_time, Result, SimError, Summary};
use decluster_grid::{BucketRegion, GridSpace};
use decluster_methods::{
    AllocationMap, DeclusteringMethod, DiskCounts, KernelCache, MethodRegistry, Scratch,
};
use decluster_obs::{Obs, TraceEvent};

/// The methods under evaluation at one sweep point, materialized once.
///
/// For each method the context holds its [`AllocationMap`] and, where the
/// grid admits one, the [`DiskCounts`] prefix-sum kernel, so scoring a
/// query population costs `O(M · 2^k)` per query instead of `O(|Q|)`.
/// Methods whose kernel cannot be built (the `buckets × disks` table
/// would not fit in memory) transparently fall back to the naive
/// per-bucket walk — results are identical either way, only the cost
/// differs.
///
/// A context is immutable after construction and `Sync`, so one context
/// can be shared by every worker thread of a sweep.
#[derive(Clone, Debug)]
pub struct EvalContext {
    m: u32,
    maps: Vec<AllocationMap>,
    kernels: Vec<Option<DiskCounts>>,
    obs: Obs,
}

impl EvalContext {
    /// Materializes the registry's method set over `space` with `m`
    /// disks (paper methods, plus baselines when `baselines` is set),
    /// building the RT kernel for each.
    pub fn materialize(
        registry: &MethodRegistry,
        space: &GridSpace,
        m: u32,
        baselines: bool,
    ) -> Self {
        let methods = if baselines {
            registry.with_baselines(space, m)
        } else {
            registry.paper_methods(space, m)
        };
        let maps = methods
            .iter()
            .map(|method| {
                AllocationMap::from_method(space, method.as_ref())
                    .expect("experiment grids are materializable")
            })
            .collect();
        Self::from_maps(m, maps)
    }

    /// As [`EvalContext::materialize`], but materializing the methods and
    /// building their kernels on up to `threads` worker threads (the
    /// deterministic index-order executor behind the sweep engine, so the
    /// resulting context is identical to the serial one). Kernel build is
    /// `O(k · N · M)` per method and dominates small sweeps; the methods
    /// are independent, so a sweep-level context parallelizes cleanly.
    pub fn build_parallel(
        registry: &MethodRegistry,
        space: &GridSpace,
        m: u32,
        baselines: bool,
        threads: usize,
    ) -> Self {
        let methods = if baselines {
            registry.with_baselines(space, m)
        } else {
            registry.paper_methods(space, m)
        };
        let built = crate::exec::run_indexed(threads, methods.len(), &Obs::disabled(), |i| {
            let map = AllocationMap::from_method(space, methods[i].as_ref())
                .expect("experiment grids are materializable");
            let kernel = map.disk_counts().ok();
            (map, kernel)
        });
        let mut maps = Vec::with_capacity(built.len());
        let mut kernels = Vec::with_capacity(built.len());
        for (map, kernel) in built {
            maps.push(map);
            kernels.push(kernel);
        }
        EvalContext {
            m,
            maps,
            kernels,
            obs: Obs::disabled(),
        }
    }

    /// Wraps already-materialized allocations, building each kernel.
    pub fn from_maps(m: u32, maps: Vec<AllocationMap>) -> Self {
        let kernels = maps.iter().map(|map| map.disk_counts().ok()).collect();
        EvalContext {
            m,
            maps,
            kernels,
            obs: Obs::disabled(),
        }
    }

    /// As [`EvalContext::from_maps`], but consulting a persist-v3
    /// [`KernelCache`] before building each kernel. A hit adopts the
    /// stored compiled kernel — zero build-phase work, bit-identical to
    /// a rebuild by the cache's revalidation contract. A miss (method
    /// absent, or its stored image stale against the live allocation)
    /// builds as usual and inserts the fresh kernel back into `cache`
    /// under the map's method name, so a cold run warms the cache for
    /// the next start.
    pub fn from_maps_cached(m: u32, maps: Vec<AllocationMap>, cache: &mut KernelCache) -> Self {
        let kernels = maps
            .iter()
            .map(|map| match cache.lookup(map.name(), map) {
                Some(kernel) => Some(kernel),
                None => {
                    let kernel = map.disk_counts().ok();
                    if let Some(k) = &kernel {
                        cache.insert(map.name(), map, k);
                    }
                    kernel
                }
            })
            .collect();
        EvalContext {
            m,
            maps,
            kernels,
            obs: Obs::disabled(),
        }
    }

    /// Exports every built kernel into `cache` under its method name
    /// (replacing same-name entries), so a process that paid the build
    /// phase can persist the compiled kernels for the next start.
    pub fn export_kernels(&self, cache: &mut KernelCache) {
        for (map, kernel) in self.maps.iter().zip(&self.kernels) {
            if let Some(k) = kernel {
                cache.insert(map.name(), map, k);
            }
        }
    }

    /// As [`EvalContext::from_maps`], building the per-method kernels on
    /// up to `threads` worker threads. Bit-identical to the serial
    /// constructor for any thread count.
    pub fn from_maps_parallel(m: u32, maps: Vec<AllocationMap>, threads: usize) -> Self {
        let kernels = crate::exec::run_indexed(threads, maps.len(), &Obs::disabled(), |i| {
            maps[i].disk_counts().ok()
        });
        EvalContext {
            m,
            maps,
            kernels,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; [`EvalContext::score`] then
    /// records logical counters (queries, kernel vs naive invocations,
    /// cells read) and the RT histogram. The default handle is the no-op
    /// recorder, which keeps the scoring loop free of aggregation.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The context's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The disk count every method in the context uses.
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    /// The materialized allocations, in registry order.
    pub fn maps(&self) -> &[AllocationMap] {
        &self.maps
    }

    /// Method display names, in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.maps.iter().map(|m| m.name()).collect()
    }

    /// How many methods have a working kernel (the rest use the naive
    /// walk).
    pub fn kernel_coverage(&self) -> usize {
        self.kernels.iter().flatten().count()
    }

    /// Response time of `region` under method `idx`, through the kernel
    /// when one exists.
    pub fn response_time(&self, idx: usize, region: &BucketRegion) -> u64 {
        match &self.kernels[idx] {
            Some(kernel) => kernel.response_time(region),
            None => self.maps[idx].response_time(region),
        }
    }

    /// As [`EvalContext::response_time`], through `scratch`'s
    /// shape-compiled plan cache and reusable accumulator: zero
    /// allocations per query, and the `2^k` corner offsets are computed
    /// once per query shape instead of once per query. All kernels of a
    /// context share one grid, so a plan compiled against one method's
    /// kernel answers every other method's too.
    pub fn response_time_with(
        &self,
        idx: usize,
        region: &BucketRegion,
        scratch: &mut Scratch,
    ) -> u64 {
        match &self.kernels[idx] {
            Some(kernel) => kernel.response_time_with(region, scratch),
            None => self.maps[idx].response_time_with(region, scratch),
        }
    }

    /// Per-disk bucket counts of `region` under method `idx`, through the
    /// kernel (`O(M · 2^k)`) when one exists, the naive walk otherwise.
    pub fn access_histogram(&self, idx: usize, region: &BucketRegion) -> Vec<u64> {
        match &self.kernels[idx] {
            Some(kernel) => kernel.access_histogram(region),
            None => self.maps[idx].access_histogram(region),
        }
    }

    /// As [`EvalContext::access_histogram`], written into a caller-owned
    /// buffer through the scratch's plan cache — the zero-allocation
    /// variant behind degraded-mode scoring.
    pub fn access_histogram_into(
        &self,
        idx: usize,
        region: &BucketRegion,
        scratch: &mut Scratch,
        out: &mut Vec<u64>,
    ) {
        match &self.kernels[idx] {
            Some(kernel) => kernel.access_histogram_with(region, scratch, out),
            None => self.maps[idx].access_histogram_into(region, out),
        }
    }

    /// Scores every method against a query population: per-method
    /// response-time summaries plus the mean optimal bound
    /// `ceil(|Q|/M)`. Allocates a fresh [`Scratch`] per call; sweep
    /// loops that score many batches should hold one per worker and call
    /// [`EvalContext::score_with`].
    pub fn score(&self, regions: &[BucketRegion]) -> (Vec<Summary>, f64) {
        self.score_with(regions, &mut Scratch::new())
    }

    /// [`EvalContext::score`] through a caller-owned [`Scratch`]: the
    /// kernel-v2 hot path, re-using the scratch's accumulator and
    /// shape-compiled plan across queries, methods, and batches.
    ///
    /// The plan cache is reset at batch start and its hit/compile counts
    /// are drained into the `kernel.plan_hits` / `kernel.plan_compiles`
    /// counters at batch end, so those counters are a pure function of
    /// the batch's query sequence — never of which worker (and thus
    /// which scratch) ran the previous batch. That keeps metrics
    /// snapshots bit-identical for any thread count.
    pub fn score_with(
        &self,
        regions: &[BucketRegion],
        scratch: &mut Scratch,
    ) -> (Vec<Summary>, f64) {
        scratch.reset_plan();
        let _ = scratch.drain_plan_stats();
        let mut summaries = Vec::with_capacity(self.maps.len());
        let mut rts = vec![0u64; regions.len()];
        // All observability aggregation sits behind this one branch, so
        // the disabled recorder costs nothing on the scoring path.
        let enabled = self.obs.enabled();
        let mut kernel_inv = 0u64;
        let mut naive_inv = 0u64;
        let mut naive_scanned = 0u64;
        let mut kernel_cells = 0u64;
        let mut max_rt = 0u64;
        for idx in 0..self.maps.len() {
            for (slot, region) in rts.iter_mut().zip(regions) {
                *slot = self.response_time_with(idx, region, scratch);
            }
            if enabled {
                match &self.kernels[idx] {
                    Some(_) => {
                        kernel_inv += regions.len() as u64;
                        // Inclusion–exclusion over 2^k prefix corners,
                        // M per-disk counts each.
                        kernel_cells += regions
                            .iter()
                            .map(|r| u64::from(self.m) << r.dims())
                            .sum::<u64>();
                    }
                    None => {
                        naive_inv += regions.len() as u64;
                        naive_scanned += regions.iter().map(BucketRegion::num_buckets).sum::<u64>();
                    }
                }
                for &rt in &rts {
                    self.obs.observe("rt.response_time", rt);
                    max_rt = max_rt.max(rt);
                }
            }
            summaries.push(Summary::of_counts(&rts));
        }
        if enabled {
            self.obs.counter_add("rt.queries", regions.len() as u64);
            self.obs.counter_add(
                "rt.buckets_requested",
                regions.iter().map(BucketRegion::num_buckets).sum(),
            );
            self.obs.counter_add("rt.kernel_invocations", kernel_inv);
            self.obs.counter_add("rt.naive_invocations", naive_inv);
            self.obs.counter_add("rt.kernel_cells_read", kernel_cells);
            self.obs
                .counter_add("rt.naive_buckets_scanned", naive_scanned);
            self.obs.gauge_max("rt.max_response_time", max_rt);
        }
        let (plan_hits, plan_compiles) = scratch.drain_plan_stats();
        if enabled {
            self.obs.counter_add("kernel.plan_hits", plan_hits);
            self.obs.counter_add("kernel.plan_compiles", plan_compiles);
        }
        let opt_mean = if regions.is_empty() {
            0.0
        } else {
            regions
                .iter()
                .map(|r| optimal_response_time(r.num_buckets(), self.m) as f64)
                .sum::<f64>()
                / regions.len() as f64
        };
        (summaries, opt_mean)
    }
}

/// A fault-injection view over an [`EvalContext`]: the same methods, the
/// same kernels, but every query is executed against a [`FaultSchedule`]
/// at a logical time equal to its index in the stream.
///
/// Each method is scored twice — unreplicated (a touched dead disk makes
/// the query [`QueryOutcome::Unavailable`]) and with chained-declustering
/// failover (`<name>+chain`) — so the availability gap replication buys
/// is visible in one table.
#[derive(Clone, Debug)]
pub struct DegradedContext<'a> {
    ctx: &'a EvalContext,
    schedule: &'a FaultSchedule,
    policy: RetryPolicy,
    replicas: u32,
    selection: ReplicaPolicy,
}

/// The reusable per-variant buffers of a scored degraded stream: the
/// kernel [`Scratch`] plus the histogram and per-disk-load vectors every
/// query rewrites in place.
#[derive(Default)]
struct VariantBuffers {
    scratch: Scratch,
    hist: Vec<u64>,
    loads: Vec<u64>,
}

impl<'a> DegradedContext<'a> {
    /// Wraps a context for degraded evaluation under `schedule`.
    ///
    /// # Errors
    /// [`SimError::ScheduleMismatch`] when the schedule covers a
    /// different disk count than the context's methods.
    pub fn new(
        ctx: &'a EvalContext,
        schedule: &'a FaultSchedule,
        policy: RetryPolicy,
    ) -> Result<Self> {
        if schedule.num_disks() != ctx.num_disks() {
            return Err(SimError::ScheduleMismatch {
                schedule_disks: schedule.num_disks(),
                experiment_disks: ctx.num_disks(),
            });
        }
        Ok(DegradedContext {
            ctx,
            schedule,
            policy,
            replicas: 1,
            selection: ReplicaPolicy::FailoverOnly,
        })
    }

    /// Overrides the replication depth and replica-selection policy of
    /// the chained variants (the defaults — one backup, failover-only —
    /// reproduce the classic chain bit for bit).
    ///
    /// # Panics
    /// Panics if `replicas >= M` (CLI and constructors validate
    /// upstream).
    pub fn with_replication(mut self, replicas: u32, selection: ReplicaPolicy) -> Self {
        assert!(
            replicas < self.ctx.num_disks(),
            "replica count {replicas} >= M = {}",
            self.ctx.num_disks()
        );
        self.replicas = replicas;
        self.selection = selection;
        self
    }

    /// The outcome of `region` under method `idx` at logical time `t`,
    /// with or without replicated failover (`chained` uses the context's
    /// replication depth and selection policy).
    pub fn outcome(
        &self,
        idx: usize,
        t: u64,
        region: &BucketRegion,
        chained: bool,
    ) -> QueryOutcome {
        let hist = self.ctx.access_histogram(idx, region);
        degraded_outcome_r(
            &hist,
            self.schedule,
            t,
            &self.policy,
            if chained { self.replicas } else { 0 },
            self.selection,
            &mut Vec::new(),
        )
    }

    /// [`DegradedContext::outcome`] through caller-owned buffers: the
    /// query's histogram lands in `buf.hist` (via the scratch's plan
    /// cache) and the degraded per-disk loads in `buf.loads`, so a
    /// scored stream allocates nothing per query.
    fn outcome_with(
        &self,
        idx: usize,
        t: u64,
        region: &BucketRegion,
        chained: bool,
        buf: &mut VariantBuffers,
    ) -> QueryOutcome {
        self.ctx
            .access_histogram_into(idx, region, &mut buf.scratch, &mut buf.hist);
        degraded_outcome_r(
            &buf.hist,
            self.schedule,
            t,
            &self.policy,
            if chained { self.replicas } else { 0 },
            self.selection,
            &mut buf.loads,
        )
    }

    /// Scores every method against a query stream (query `i` executes at
    /// logical time `i`), returning two rows per method: the unreplicated
    /// variant and `<name>+chain`. Deterministic for any caller-side
    /// parallelization, because outcomes depend only on `(method, i)`.
    pub fn score(&self, regions: &[BucketRegion]) -> Vec<FaultMethodStats> {
        let mut rows = Vec::with_capacity(self.ctx.maps().len() * 2);
        for idx in 0..self.ctx.maps().len() {
            for chained in [false, true] {
                rows.push(self.score_variant(idx, regions, chained));
            }
        }
        rows
    }

    /// Scores one method/variant pair of [`DegradedContext::score`]:
    /// method `idx`, with or without chained failover. Exposed separately
    /// so the experiment harness can fan variants out over its executor.
    pub fn score_variant(
        &self,
        idx: usize,
        regions: &[BucketRegion],
        chained: bool,
    ) -> FaultMethodStats {
        let name = self.ctx.maps()[idx].name();
        let obs = self.ctx.obs();
        let enabled = obs.enabled();
        let mut healthy = Vec::with_capacity(regions.len());
        let mut degraded = Vec::with_capacity(regions.len());
        let mut unavailable = 0usize;
        let mut failover_buckets = 0u64;
        let mut timeout_units = 0u64;
        // Per-variant buffers: the scratch's plan cache starts cold here,
        // so plan hit/compile counts stay a function of the variant's
        // query sequence alone (thread-count deterministic).
        let mut buf = VariantBuffers::default();
        for (i, region) in regions.iter().enumerate() {
            healthy.push(self.ctx.response_time_with(idx, region, &mut buf.scratch));
            match self.outcome_with(idx, i as u64, region, chained, &mut buf) {
                QueryOutcome::Served {
                    response_time,
                    failover_buckets: fo,
                    timeout_penalty,
                } => {
                    degraded.push(response_time);
                    failover_buckets += fo;
                    if enabled {
                        timeout_units += timeout_penalty;
                        obs.observe("faults.degraded_rt", response_time);
                    }
                }
                QueryOutcome::Unavailable { .. } => unavailable += 1,
            }
        }
        let served = degraded.len();
        let (plan_hits, plan_compiles) = buf.scratch.drain_plan_stats();
        if enabled {
            obs.counter_add("kernel.plan_hits", plan_hits);
            obs.counter_add("kernel.plan_compiles", plan_compiles);
            obs.counter_add("faults.queries", regions.len() as u64);
            obs.counter_add("faults.served", served as u64);
            obs.counter_add("faults.unavailable", unavailable as u64);
            obs.counter_add("faults.failover_buckets", failover_buckets);
            obs.counter_add("faults.timeout_penalty_units", timeout_units);
        }
        if obs.trace_enabled() {
            obs.emit(
                TraceEvent::new("fault_variant_scored")
                    .with("method", name)
                    .with("chained", chained)
                    .with("served", served)
                    .with("unavailable", unavailable)
                    .with("failover_buckets", failover_buckets),
            );
        }
        FaultMethodStats {
            name: if chained {
                format!("{name}+chain")
            } else {
                name.to_owned()
            },
            healthy: Summary::of_counts(&healthy),
            degraded: Summary::of_counts(&degraded),
            served,
            unavailable,
            availability: if regions.is_empty() {
                1.0
            } else {
                served as f64 / regions.len() as f64
            },
            failover_buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::RangeQuery;

    fn context() -> EvalContext {
        let g = GridSpace::new_2d(8, 8).unwrap();
        EvalContext::materialize(&MethodRegistry::with_seed(1), &g, 4, false)
    }

    #[test]
    fn kernel_and_naive_agree_inside_a_context() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        assert_eq!(ctx.kernel_coverage(), ctx.maps().len());
        for (lo, hi) in [([0, 0], [3, 3]), ([2, 5], [7, 7]), ([1, 1], [1, 1])] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            for (idx, map) in ctx.maps().iter().enumerate() {
                assert_eq!(ctx.response_time(idx, &r), map.response_time(&r));
            }
        }
    }

    #[test]
    fn score_reports_every_method_and_the_bound() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        let r = RangeQuery::new([0, 0], [3, 3]).unwrap().region(&g).unwrap();
        let (summaries, opt) = ctx.score(&[r]);
        assert_eq!(summaries.len(), ctx.maps().len());
        assert_eq!(opt, 4.0); // 16 buckets / 4 disks
        for s in &summaries {
            assert!(s.mean >= opt);
        }
        let (empty, opt0) = ctx.score(&[]);
        assert_eq!(empty.len(), ctx.maps().len());
        assert_eq!(opt0, 0.0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let registry = MethodRegistry::with_seed(1);
        let serial = EvalContext::materialize(&registry, &g, 4, true);
        for threads in [1, 2, 8] {
            let parallel = EvalContext::build_parallel(&registry, &g, 4, true, threads);
            assert_eq!(parallel.maps(), serial.maps(), "threads = {threads}");
            assert_eq!(parallel.kernel_coverage(), serial.kernel_coverage());
            let maps = serial.maps().to_vec();
            let from_maps = EvalContext::from_maps_parallel(4, maps, threads);
            assert_eq!(from_maps.maps(), serial.maps());
            assert_eq!(from_maps.kernel_coverage(), serial.kernel_coverage());
        }
    }

    #[test]
    fn cached_context_round_trips_through_a_kernel_image() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let serial = context();
        let maps = serial.maps().to_vec();
        // Cold: empty cache, every kernel is built and inserted.
        let mut cache = KernelCache::new();
        let cold = EvalContext::from_maps_cached(4, maps.clone(), &mut cache);
        assert_eq!(cache.len(), cold.kernel_coverage());
        // Warm: reload the persisted image; every kernel is adopted.
        let mut warm_cache = KernelCache::from_bytes(&cache.to_bytes()).unwrap();
        let warm = EvalContext::from_maps_cached(4, maps, &mut warm_cache);
        assert_eq!(warm.kernel_coverage(), cold.kernel_coverage());
        let regions: Vec<_> = (0..4)
            .map(|i| {
                RangeQuery::new([0, i], [5, i + 2])
                    .unwrap()
                    .region(&g)
                    .unwrap()
            })
            .collect();
        let (a, opt_a) = cold.score(&regions);
        let (b, opt_b) = warm.score(&regions);
        assert_eq!(opt_a, opt_b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean, y.mean);
            assert_eq!(x.max, y.max);
        }
        // export_kernels re-persists to a byte-identical image.
        let mut exported = KernelCache::new();
        warm.export_kernels(&mut exported);
        assert_eq!(exported.to_bytes(), cache.to_bytes());
    }

    #[test]
    fn score_with_reused_scratch_matches_score() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        let regions: Vec<_> = (0..4)
            .map(|i| {
                RangeQuery::new([i, 0], [i + 3, 3])
                    .unwrap()
                    .region(&g)
                    .unwrap()
            })
            .collect();
        let (fresh, opt) = ctx.score(&regions);
        let mut scratch = decluster_methods::Scratch::new();
        for _ in 0..3 {
            // A scratch re-used across batches (as a sweep worker would)
            // must not change results.
            let (again, opt2) = ctx.score_with(&regions, &mut scratch);
            assert_eq!(opt2, opt);
            for (a, b) in again.iter().zip(&fresh) {
                assert_eq!(a.mean, b.mean);
                assert_eq!(a.max, b.max);
            }
        }
    }

    #[test]
    fn plan_counters_are_a_function_of_the_batch() {
        use decluster_obs::{MetricsRecorder, Recorder};
        use std::sync::Arc;
        let g = GridSpace::new_2d(8, 8).unwrap();
        let regions: Vec<_> = (0..5)
            .map(|i| {
                RangeQuery::new([i, 1], [i + 2, 4])
                    .unwrap()
                    .region(&g)
                    .unwrap()
            })
            .collect();
        let counters_for = |prewarm: bool| {
            let rec = Arc::new(MetricsRecorder::new());
            let ctx = context().with_obs(Obs::new(rec.clone()));
            let mut scratch = decluster_methods::Scratch::new();
            if prewarm {
                // Leave a stale plan + stats in the scratch, as a worker
                // that just scored a different batch would.
                let full = decluster_grid::BucketRegion::full(&g);
                let _ = ctx.response_time_with(0, &full, &mut scratch);
            }
            let _ = ctx.score_with(&regions, &mut scratch);
            let snap = rec.snapshot();
            let get = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            (get("kernel.plan_hits"), get("kernel.plan_compiles"))
        };
        let cold = counters_for(false);
        let warm = counters_for(true);
        assert_eq!(
            cold, warm,
            "plan counters must not depend on scratch history"
        );
        // One shape, 5 placements, 4 methods on one grid: one compile,
        // the rest hits.
        assert_eq!(cold.1, 1);
        assert_eq!(cold.0 + cold.1, 4 * 5);
    }

    #[test]
    fn degraded_context_rejects_wrong_disk_count() {
        let ctx = context(); // 4 disks
        let schedule = FaultSchedule::healthy(8);
        assert!(matches!(
            DegradedContext::new(&ctx, &schedule, RetryPolicy::default()).unwrap_err(),
            crate::SimError::ScheduleMismatch { .. }
        ));
    }

    #[test]
    fn degraded_context_healthy_schedule_matches_plain_scoring() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        let schedule = FaultSchedule::healthy(4);
        let dctx = DegradedContext::new(&ctx, &schedule, RetryPolicy::default()).unwrap();
        let regions: Vec<_> = [([0u32, 0u32], [3u32, 3u32]), ([2, 2], [6, 5])]
            .iter()
            .map(|&(lo, hi)| RangeQuery::new(lo, hi).unwrap().region(&g).unwrap())
            .collect();
        let rows = dctx.score(&regions);
        assert_eq!(rows.len(), 2 * ctx.maps().len());
        for row in &rows {
            assert_eq!(row.unavailable, 0);
            assert_eq!(row.availability, 1.0);
            assert_eq!(row.failover_buckets, 0);
            assert_eq!(row.degraded.mean, row.healthy.mean, "{}", row.name);
        }
    }

    #[test]
    fn chained_rows_stay_available_under_a_single_failure() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        let schedule = FaultSchedule::healthy(4).fail_stop(1, 0).unwrap();
        let dctx = DegradedContext::new(&ctx, &schedule, RetryPolicy::default()).unwrap();
        // Big queries: every method touches all 4 disks, so unreplicated
        // availability collapses while chained stays perfect.
        let regions: Vec<_> = (0..4)
            .map(|i| {
                RangeQuery::new([0, i], [7, i + 3])
                    .unwrap()
                    .region(&g)
                    .unwrap()
            })
            .collect();
        let rows = dctx.score(&regions);
        for row in &rows {
            if row.name.ends_with("+chain") {
                assert_eq!(row.availability, 1.0, "{}", row.name);
                assert!(
                    row.degraded.mean >= row.healthy.mean,
                    "{}: degraded {} < healthy {}",
                    row.name,
                    row.degraded.mean,
                    row.healthy.mean
                );
                assert!(row.failover_buckets > 0, "{}", row.name);
            } else {
                assert_eq!(row.availability, 0.0, "{}", row.name);
                assert_eq!(row.served, 0, "{}", row.name);
            }
        }
    }
}
