use crate::{optimal_response_time, Summary};
use decluster_grid::{BucketRegion, GridSpace};
use decluster_methods::{AllocationMap, DeclusteringMethod, DiskCounts, MethodRegistry};

/// The methods under evaluation at one sweep point, materialized once.
///
/// For each method the context holds its [`AllocationMap`] and, where the
/// grid admits one, the [`DiskCounts`] prefix-sum kernel, so scoring a
/// query population costs `O(M · 2^k)` per query instead of `O(|Q|)`.
/// Methods whose kernel cannot be built (the `buckets × disks` table
/// would not fit in memory) transparently fall back to the naive
/// per-bucket walk — results are identical either way, only the cost
/// differs.
///
/// A context is immutable after construction and `Sync`, so one context
/// can be shared by every worker thread of a sweep.
#[derive(Clone, Debug)]
pub struct EvalContext {
    m: u32,
    maps: Vec<AllocationMap>,
    kernels: Vec<Option<DiskCounts>>,
}

impl EvalContext {
    /// Materializes the registry's method set over `space` with `m`
    /// disks (paper methods, plus baselines when `baselines` is set),
    /// building the RT kernel for each.
    pub fn materialize(
        registry: &MethodRegistry,
        space: &GridSpace,
        m: u32,
        baselines: bool,
    ) -> Self {
        let methods = if baselines {
            registry.with_baselines(space, m)
        } else {
            registry.paper_methods(space, m)
        };
        let maps = methods
            .iter()
            .map(|method| {
                AllocationMap::from_method(space, method.as_ref())
                    .expect("experiment grids are materializable")
            })
            .collect();
        Self::from_maps(m, maps)
    }

    /// Wraps already-materialized allocations, building each kernel.
    pub fn from_maps(m: u32, maps: Vec<AllocationMap>) -> Self {
        let kernels = maps.iter().map(|map| map.disk_counts().ok()).collect();
        EvalContext { m, maps, kernels }
    }

    /// The disk count every method in the context uses.
    pub fn num_disks(&self) -> u32 {
        self.m
    }

    /// The materialized allocations, in registry order.
    pub fn maps(&self) -> &[AllocationMap] {
        &self.maps
    }

    /// Method display names, in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.maps.iter().map(|m| m.name()).collect()
    }

    /// How many methods have a working kernel (the rest use the naive
    /// walk).
    pub fn kernel_coverage(&self) -> usize {
        self.kernels.iter().flatten().count()
    }

    /// Response time of `region` under method `idx`, through the kernel
    /// when one exists.
    pub fn response_time(&self, idx: usize, region: &BucketRegion) -> u64 {
        match &self.kernels[idx] {
            Some(kernel) => kernel.response_time(region),
            None => self.maps[idx].response_time(region),
        }
    }

    /// Scores every method against a query population: per-method
    /// response-time summaries plus the mean optimal bound
    /// `ceil(|Q|/M)`.
    pub fn score(&self, regions: &[BucketRegion]) -> (Vec<Summary>, f64) {
        let mut summaries = Vec::with_capacity(self.maps.len());
        let mut rts = vec![0u64; regions.len()];
        for idx in 0..self.maps.len() {
            for (slot, region) in rts.iter_mut().zip(regions) {
                *slot = self.response_time(idx, region);
            }
            summaries.push(Summary::of_counts(&rts));
        }
        let opt_mean = if regions.is_empty() {
            0.0
        } else {
            regions
                .iter()
                .map(|r| optimal_response_time(r.num_buckets(), self.m) as f64)
                .sum::<f64>()
                / regions.len() as f64
        };
        (summaries, opt_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_grid::RangeQuery;

    fn context() -> EvalContext {
        let g = GridSpace::new_2d(8, 8).unwrap();
        EvalContext::materialize(&MethodRegistry::with_seed(1), &g, 4, false)
    }

    #[test]
    fn kernel_and_naive_agree_inside_a_context() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        assert_eq!(ctx.kernel_coverage(), ctx.maps().len());
        for (lo, hi) in [([0, 0], [3, 3]), ([2, 5], [7, 7]), ([1, 1], [1, 1])] {
            let r = RangeQuery::new(lo, hi).unwrap().region(&g).unwrap();
            for (idx, map) in ctx.maps().iter().enumerate() {
                assert_eq!(ctx.response_time(idx, &r), map.response_time(&r));
            }
        }
    }

    #[test]
    fn score_reports_every_method_and_the_bound() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let ctx = context();
        let r = RangeQuery::new([0, 0], [3, 3]).unwrap().region(&g).unwrap();
        let (summaries, opt) = ctx.score(&[r]);
        assert_eq!(summaries.len(), ctx.maps().len());
        assert_eq!(opt, 4.0); // 16 buckets / 4 disks
        for s in &summaries {
            assert!(s.mean >= opt);
        }
        let (empty, opt0) = ctx.score(&[]);
        assert_eq!(empty.len(), ctx.maps().len());
        assert_eq!(opt0, 0.0);
    }
}
