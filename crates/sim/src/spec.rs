//! Unified serving-run specification: one builder for every loop the
//! engine can drive.
//!
//! PR 7 left the serving surface as six free functions plus three engine
//! methods, each with its own argument pile. [`ServeSpec`] collapses them
//! behind one builder: pick a mode ([`ServeSpec::closed`] or
//! [`ServeSpec::open`]), chain the knobs that matter (replicas, policy,
//! retry, faults, sampling, admission, sharing, shards), and run. Every
//! knob the chosen mode cannot honor is a typed one-line [`SpecError`]
//! instead of a silent ignore, and every dispatch lands on the single
//! canonical loop body for that mode (the deprecated wrappers that used
//! to alias them were removed once their bit-identity pins had held) —
//! so migrated callers are bit-identical by construction.
//!
//! | spec | loop |
//! |---|---|
//! | `closed(c)` | the closed-loop counts kernel |
//! | `closed(c).faults(..)` | chained-failover closed loop |
//! | `open(rate)` | streaming event serve |
//! | `open(rate).faults(..)` | fault-injected streaming serve |
//! | `open(rate).share(w)` | shared-scan streaming serve |

use crate::events::{
    DegradedServeConfig, LoopScratch, ServeConfig, ServingEngine, SharedServeConfig,
};
use crate::faults::{FaultSchedule, ReplicaPolicy, RetryPolicy};
use crate::multiuser::{MultiUserEngine, MultiUserReport};
use crate::workload::InterArrival;
use crate::{DiskParams, SimError};
use decluster_grid::{BucketRegion, GridDirectory};
use decluster_obs::Obs;

/// Default RNG seed of self-generated arrival streams (the repository's
/// pinned experiment seed).
pub const DEFAULT_SPEC_SEED: u64 = 1994;

/// A serving-run mode: a closed set of clients or an open arrival stream.
#[derive(Clone, Copy, Debug, PartialEq)]
enum SpecMode {
    /// `clients` users, each issuing its next query on completion.
    Closed { clients: usize },
    /// An open Poisson stream at `rate_qps` (ignored by
    /// [`ServeSpec::run_with_arrivals`], which takes explicit times).
    Open { rate_qps: f64 },
}

/// Why a [`ServeSpec`] was rejected. Every variant renders as one line,
/// ready for a CLI's `error:` prefix.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// A closed loop was configured with zero clients.
    NoClients,
    /// An open loop's offered rate is not finite and positive.
    BadRate {
        /// The offending rate, queries per second.
        rate_qps: f64,
    },
    /// The sampling interval is negative or not finite.
    BadSampling {
        /// The offending interval, ms.
        every_ms: f64,
    },
    /// The latency-ring window has zero capacity.
    BadWindow,
    /// The shared-scan batch window is negative or not finite.
    BadBatchWindow {
        /// The offending window, ms.
        window_ms: f64,
    },
    /// More replicas than `M - 1` chain successors exist.
    TooManyReplicas {
        /// Requested chain replicas per bucket.
        replicas: u32,
        /// Disks in the directory.
        disks: usize,
    },
    /// Shared-scan batching combined with a fault schedule (the shared
    /// loop is healthy-mode only).
    SharingWithFaults,
    /// Shared-scan batching in a closed loop (windows are defined over
    /// arrival times, which a closed loop does not have).
    SharingClosedLoop,
    /// Replica routing in a closed loop (the closed loops route by the
    /// fixed chain, not by policy).
    ReplicasClosedLoop,
    /// Admission control without a fault schedule (only the degraded
    /// loop sheds arrivals).
    AdmissionWithoutFaults,
    /// The shard count is zero or exceeds the disk count.
    BadShards {
        /// Requested worker shards.
        shards: usize,
        /// Disks in the directory.
        disks: usize,
    },
    /// Explicit arrival times handed to a closed loop.
    ClosedArrivals,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoClients => write!(f, "closed loop needs at least one client"),
            SpecError::BadRate { rate_qps } => {
                write!(
                    f,
                    "open-loop rate must be finite and positive, got {rate_qps}"
                )
            }
            SpecError::BadSampling { every_ms } => {
                write!(
                    f,
                    "sampling interval must be finite and non-negative, got {every_ms}"
                )
            }
            SpecError::BadWindow => write!(f, "latency window must hold at least one sample"),
            SpecError::BadBatchWindow { window_ms } => {
                write!(
                    f,
                    "batch window must be finite and non-negative, got {window_ms}"
                )
            }
            SpecError::TooManyReplicas { replicas, disks } => {
                write!(
                    f,
                    "replica count {replicas} must be below the disk count {disks}"
                )
            }
            SpecError::SharingWithFaults => {
                write!(f, "shared-scan batching cannot run under a fault schedule")
            }
            SpecError::SharingClosedLoop => {
                write!(f, "shared-scan batching requires an open arrival stream")
            }
            SpecError::ReplicasClosedLoop => {
                write!(f, "replica routing requires an open arrival stream")
            }
            SpecError::AdmissionWithoutFaults => {
                write!(f, "admission control requires a fault schedule")
            }
            SpecError::BadShards { shards, disks } => {
                write!(
                    f,
                    "shard count {shards} must be between 1 and the disk count {disks}"
                )
            }
            SpecError::ClosedArrivals => {
                write!(
                    f,
                    "closed loops pace themselves; arrival times need an open spec"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Builder-style specification of one serving run. See the module docs
/// for the mode × knob dispatch table.
///
/// # Example
///
/// ```
/// use decluster_grid::{GridDirectory, GridSpace, RangeQuery};
/// use decluster_methods::{DeclusteringMethod, DiskModulo};
/// use decluster_sim::{DiskParams, ServeSpec};
///
/// let space = GridSpace::new_2d(8, 8).unwrap();
/// let dm = DiskModulo::new(&space, 4).unwrap();
/// let dir = GridDirectory::build(space.clone(), 4, |b| dm.disk_of(b.as_slice()));
/// let queries = [RangeQuery::new([0, 0], [3, 3])
///     .unwrap()
///     .region(&space)
///     .unwrap()];
/// let run = ServeSpec::closed(4)
///     .run_on(&dir, &DiskParams::default(), &queries)
///     .unwrap();
/// assert_eq!(run.report.queries, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ServeSpec {
    mode: SpecMode,
    replicas: u32,
    policy: ReplicaPolicy,
    retry: RetryPolicy,
    faults: Option<FaultSchedule>,
    sample_every_ms: f64,
    window: usize,
    batch_window_ms: Option<f64>,
    max_in_flight: usize,
    seed: u64,
    threads: usize,
    shards: usize,
}

impl ServeSpec {
    fn new(mode: SpecMode) -> Self {
        let serve = ServeConfig::default();
        ServeSpec {
            mode,
            replicas: 0,
            policy: ReplicaPolicy::PrimaryOnly,
            retry: RetryPolicy::default(),
            faults: None,
            sample_every_ms: serve.sample_every_ms,
            window: serve.window,
            batch_window_ms: None,
            max_in_flight: 0,
            seed: DEFAULT_SPEC_SEED,
            threads: 1,
            shards: 1,
        }
    }

    /// A closed loop: `clients` users repeatedly issue the next query as
    /// soon as their previous one completes.
    pub fn closed(clients: usize) -> Self {
        ServeSpec::new(SpecMode::Closed { clients })
    }

    /// An open loop: requests arrive as a Poisson stream at `rate_qps`
    /// regardless of completions. [`ServeSpec::run`] generates one
    /// arrival per query deterministically from the spec's seed;
    /// [`ServeSpec::run_with_arrivals`] takes explicit times instead.
    pub fn open(rate_qps: f64) -> Self {
        ServeSpec::new(SpecMode::Open { rate_qps })
    }

    /// Chain replicas per bucket (`r`); open-loop modes only.
    #[must_use]
    pub fn replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// How reads pick among the `1 + r` copies.
    #[must_use]
    pub fn policy(mut self, policy: ReplicaPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Timeout and retry budget of failure detection.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run under a fault schedule (chained failover in closed mode, the
    /// full degraded event loop in open mode).
    #[must_use]
    pub fn faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Sample mid-run state every `every_ms` of logical time (open-loop
    /// modes; `0` disables sampling).
    #[must_use]
    pub fn sampling(mut self, every_ms: f64) -> Self {
        self.sample_every_ms = every_ms;
        self
    }

    /// Capacity of the windowed latency ring behind each sample's tails.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Merge overlapping queries arriving within `batch_window_ms` into
    /// one deduplicated shared scan (open-loop healthy mode only; `0`
    /// keeps the merge machinery off and is bit-identical to not calling
    /// this at all).
    #[must_use]
    pub fn share(mut self, batch_window_ms: f64) -> Self {
        self.batch_window_ms = Some(batch_window_ms);
        self
    }

    /// Shed arrivals past `max_in_flight` in-flight requests (degraded
    /// open mode only; `0` disables shedding).
    #[must_use]
    pub fn admission(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Seed of self-generated arrivals and retry jitter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads used to generate the arrival stream in
    /// [`ServeSpec::run`] and to walk disk shards when
    /// [`ServeSpec::shards`] splits the run (the result is byte-identical
    /// at any count).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partition the M disks across `shards` worker shards for open-loop
    /// healthy runs (plain or shared-scan). The report, metrics, and
    /// samples are byte-identical to the serial loop at any shard count;
    /// [`ServeSpec::validate`] rejects `0` and values above the disk
    /// count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Checks every knob against the chosen mode and `disks`.
    ///
    /// # Errors
    /// The first [`SpecError`] the spec violates, in a fixed order.
    pub fn validate(&self, disks: usize) -> Result<(), SpecError> {
        match self.mode {
            SpecMode::Closed { clients } => {
                if clients == 0 {
                    return Err(SpecError::NoClients);
                }
                if self.batch_window_ms.is_some() {
                    return Err(SpecError::SharingClosedLoop);
                }
                if self.replicas > 0 {
                    return Err(SpecError::ReplicasClosedLoop);
                }
            }
            SpecMode::Open { rate_qps } => {
                if !(rate_qps.is_finite() && rate_qps > 0.0) {
                    return Err(SpecError::BadRate { rate_qps });
                }
            }
        }
        if !(self.sample_every_ms.is_finite() && self.sample_every_ms >= 0.0) {
            return Err(SpecError::BadSampling {
                every_ms: self.sample_every_ms,
            });
        }
        if self.window == 0 {
            return Err(SpecError::BadWindow);
        }
        if let Some(w) = self.batch_window_ms {
            if !(w.is_finite() && w >= 0.0) {
                return Err(SpecError::BadBatchWindow { window_ms: w });
            }
            if self.faults.is_some() {
                return Err(SpecError::SharingWithFaults);
            }
        }
        if self.replicas as usize >= disks {
            return Err(SpecError::TooManyReplicas {
                replicas: self.replicas,
                disks,
            });
        }
        if self.max_in_flight > 0 && self.faults.is_none() {
            return Err(SpecError::AdmissionWithoutFaults);
        }
        if self.shards == 0 || self.shards > disks {
            return Err(SpecError::BadShards {
                shards: self.shards,
                disks,
            });
        }
        Ok(())
    }

    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            sample_every_ms: self.sample_every_ms,
            window: self.window,
        }
    }

    /// Runs the spec, generating the open-loop arrival stream (one
    /// arrival per query, Poisson at the spec's rate, from the spec's
    /// seed) when the mode needs one. Sweeps should prefer
    /// [`ServeSpec::run_with_arrivals`] and reuse one stream.
    ///
    /// # Errors
    /// [`SimError::Spec`] when the spec is invalid for the engine;
    /// [`SimError::ScheduleMismatch`] when a fault schedule covers a
    /// different disk count.
    pub fn run(
        &self,
        engine: &MultiUserEngine,
        params: &DiskParams,
        queries: &[BucketRegion],
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> crate::Result<ServeRun> {
        match self.mode {
            SpecMode::Closed { .. } => self.dispatch(engine, params, queries, &[], obs, ls),
            SpecMode::Open { rate_qps } => {
                self.validate(engine.num_disks()).map_err(SimError::Spec)?;
                let arrivals = crate::events::sharded_arrivals(
                    self.seed,
                    queries.len(),
                    InterArrival::Poisson { rate_qps },
                    self.threads,
                    obs,
                );
                self.dispatch(engine, params, queries, &arrivals, obs, ls)
            }
        }
    }

    /// Runs an open-mode spec over explicit arrival times (allocation-free
    /// once the scratch is warm). `arrivals_ms[i]` issues query
    /// `i % queries.len()`.
    ///
    /// # Errors
    /// As [`ServeSpec::run`]; also [`SpecError::ClosedArrivals`] for
    /// closed mode.
    pub fn run_with_arrivals(
        &self,
        engine: &MultiUserEngine,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> crate::Result<ServeRun> {
        if matches!(self.mode, SpecMode::Closed { .. }) {
            return Err(SimError::Spec(SpecError::ClosedArrivals));
        }
        self.dispatch(engine, params, queries, arrivals_ms, obs, ls)
    }

    /// One-shot convenience: builds an engine and scratch for `dir` and
    /// runs without observability. Sweeps should build a
    /// [`MultiUserEngine`] once and call [`ServeSpec::run`] instead.
    ///
    /// # Errors
    /// As [`ServeSpec::run`].
    pub fn run_on(
        &self,
        dir: &GridDirectory,
        params: &DiskParams,
        queries: &[BucketRegion],
    ) -> crate::Result<ServeRun> {
        self.run(
            &MultiUserEngine::new(dir),
            params,
            queries,
            &Obs::disabled(),
            &mut LoopScratch::new(),
        )
    }

    fn dispatch(
        &self,
        engine: &MultiUserEngine,
        params: &DiskParams,
        queries: &[BucketRegion],
        arrivals_ms: &[f64],
        obs: &Obs,
        ls: &mut LoopScratch,
    ) -> crate::Result<ServeRun> {
        self.validate(engine.num_disks()).map_err(SimError::Spec)?;
        let serving: &ServingEngine = engine.serving();
        match (self.mode, &self.faults, self.batch_window_ms) {
            (SpecMode::Closed { clients }, None, _) => {
                let report = engine.closed_loop_obs(params, queries, clients, obs, ls);
                Ok(ServeRun::from_closed(report))
            }
            (SpecMode::Closed { clients }, Some(schedule), _) => {
                let dr = engine.degraded_obs(
                    params,
                    queries,
                    clients,
                    schedule,
                    &self.retry,
                    obs,
                    ls,
                )?;
                let mut run = ServeRun::from_closed(dr.report);
                run.availability = Some(AvailStats {
                    served: dr.served as u64,
                    shed: 0,
                    lost: dr.unavailable as u64,
                    retries: 0,
                    timeouts: 0,
                    failovers: dr.failover_batches as u64,
                    transitions: 0,
                });
                Ok(run)
            }
            (SpecMode::Open { .. }, None, None) => {
                let sr = serving.serve_core_sharded(
                    params,
                    queries,
                    arrivals_ms,
                    &self.serve_config(),
                    self.shards,
                    self.threads,
                    obs,
                    ls,
                );
                Ok(ServeRun::from_serve(sr, None, None))
            }
            (SpecMode::Open { .. }, None, Some(batch_window_ms)) => {
                let cfg = SharedServeConfig {
                    serve: self.serve_config(),
                    batch_window_ms,
                    replicas: self.replicas,
                    policy: self.policy,
                };
                let sr = serving.serve_shared_core_sharded(
                    engine.directory(),
                    params,
                    queries,
                    arrivals_ms,
                    &cfg,
                    self.shards,
                    self.threads,
                    obs,
                    ls,
                );
                let sharing = ShareStats {
                    windows: sr.windows,
                    merged_queries: sr.merged_queries,
                    pages_saved: sr.pages_saved,
                };
                Ok(ServeRun::from_serve(sr.serve, None, Some(sharing)))
            }
            (SpecMode::Open { .. }, Some(schedule), _) => {
                let cfg = DegradedServeConfig {
                    serve: self.serve_config(),
                    max_in_flight: self.max_in_flight,
                    retry: self.retry,
                    seed: self.seed,
                };
                let dr = serving.serve_degraded_core(
                    params,
                    queries,
                    arrivals_ms,
                    schedule,
                    self.replicas,
                    self.policy,
                    &cfg,
                    obs,
                    ls,
                )?;
                let avail = AvailStats {
                    served: dr.served,
                    shed: dr.shed,
                    lost: dr.lost,
                    retries: dr.retries,
                    timeouts: dr.timeouts,
                    failovers: dr.failovers,
                    transitions: dr.transitions,
                };
                Ok(ServeRun::from_serve(dr.serve, Some(avail), None))
            }
        }
    }
}

/// Availability accounting of a fault-injected run. Fields the closed
/// degraded loop does not track (shedding, retries, timeouts,
/// transitions) are zero there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AvailStats {
    /// Requests that completed.
    pub served: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests abandoned with no live copy.
    pub lost: u64,
    /// Retry events scheduled.
    pub retries: u64,
    /// Timed-out batch attempts paid during chain failover.
    pub timeouts: u64,
    /// Batches served by a non-primary copy.
    pub failovers: u64,
    /// Disk health transitions processed.
    pub transitions: u64,
}

impl AvailStats {
    /// Fraction of arrivals served, in `[0, 1]` (1.0 for an empty run).
    pub fn availability(&self) -> f64 {
        let offered = self.served + self.shed + self.lost;
        if offered == 0 {
            1.0
        } else {
            self.served as f64 / offered as f64
        }
    }
}

/// Shared-scan accounting of a batching run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Batch windows flushed.
    pub windows: u64,
    /// Queries that shared a window with at least one other query.
    pub merged_queries: u64,
    /// Duplicate pages eliminated by merging.
    pub pages_saved: u64,
}

/// The unified result of one [`ServeSpec`] run: the aggregate report
/// every mode produces, the event-loop counters of the streaming modes
/// (zero for closed loops), and the optional availability/sharing
/// accounting of the modes that track them.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Aggregate throughput/latency/utilization.
    pub report: MultiUserReport,
    /// Events processed (0 for closed loops).
    pub events: u64,
    /// High-water mark of in-flight requests (0 for closed loops).
    pub peak_in_flight: usize,
    /// Total pages fetched (0 for closed loops).
    pub pages: u64,
    /// Mid-run samples recorded into the scratch (0 for closed loops).
    pub samples: usize,
    /// Fault accounting, present when the spec had a fault schedule.
    pub availability: Option<AvailStats>,
    /// Sharing accounting, present when the spec had a batch window.
    pub sharing: Option<ShareStats>,
}

impl ServeRun {
    fn from_closed(report: MultiUserReport) -> Self {
        ServeRun {
            report,
            events: 0,
            peak_in_flight: 0,
            pages: 0,
            samples: 0,
            availability: None,
            sharing: None,
        }
    }

    fn from_serve(
        sr: crate::events::ServeReport,
        availability: Option<AvailStats>,
        sharing: Option<ShareStats>,
    ) -> Self {
        ServeRun {
            report: sr.report,
            events: sr.events,
            peak_in_flight: sr.peak_in_flight,
            pages: sr.pages,
            samples: sr.samples,
            availability,
            sharing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_region;
    use decluster_grid::GridSpace;
    use decluster_methods::{DeclusteringMethod, Hcam};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (GridDirectory, Vec<BucketRegion>, Vec<f64>) {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let dir = GridDirectory::build(space.clone(), 8, |b| hcam.disk_of(b.as_slice()));
        let mut rng = StdRng::seed_from_u64(42);
        let queries: Vec<BucketRegion> = (0..40)
            .map(|_| random_region(&mut rng, &space, &[6, 6]).unwrap())
            .collect();
        let arrivals = crate::multiuser::poisson_arrivals(&mut rng, 40, 200.0);
        (dir, queries, arrivals)
    }

    #[test]
    fn validation_errors_render_as_one_line() {
        let schedule = FaultSchedule::parse("fail:0@5", 8).unwrap();
        let cases: Vec<(ServeSpec, SpecError)> = vec![
            (ServeSpec::closed(0), SpecError::NoClients),
            (ServeSpec::open(0.0), SpecError::BadRate { rate_qps: 0.0 }),
            (
                ServeSpec::open(100.0).sampling(f64::NAN),
                SpecError::BadSampling { every_ms: f64::NAN },
            ),
            (ServeSpec::open(100.0).window(0), SpecError::BadWindow),
            (
                ServeSpec::open(100.0).share(-1.0),
                SpecError::BadBatchWindow { window_ms: -1.0 },
            ),
            (
                ServeSpec::open(100.0).replicas(8),
                SpecError::TooManyReplicas {
                    replicas: 8,
                    disks: 8,
                },
            ),
            (
                ServeSpec::open(100.0).share(4.0).faults(schedule.clone()),
                SpecError::SharingWithFaults,
            ),
            (
                ServeSpec::closed(4).share(4.0),
                SpecError::SharingClosedLoop,
            ),
            (
                ServeSpec::closed(4).replicas(1),
                SpecError::ReplicasClosedLoop,
            ),
            (
                ServeSpec::open(100.0).admission(64),
                SpecError::AdmissionWithoutFaults,
            ),
            (
                ServeSpec::open(100.0).shards(0),
                SpecError::BadShards {
                    shards: 0,
                    disks: 8,
                },
            ),
            (
                ServeSpec::open(100.0).shards(9),
                SpecError::BadShards {
                    shards: 9,
                    disks: 8,
                },
            ),
        ];
        for (spec, want) in cases {
            let got = spec.validate(8).expect_err("spec must be rejected");
            match (&got, &want) {
                // NaN != NaN, so compare the variant by its rendering.
                (SpecError::BadSampling { .. }, SpecError::BadSampling { .. }) => {}
                _ => assert_eq!(got, want),
            }
            assert_eq!(
                got.to_string().lines().count(),
                1,
                "{got:?} must render as one line"
            );
        }
    }

    #[test]
    fn closed_spec_matches_engine_core_bitwise() {
        let (dir, queries, _) = fixture();
        let params = DiskParams::default();
        let old = MultiUserEngine::new(&dir).closed_loop_obs(
            &params,
            &queries,
            4,
            &Obs::disabled(),
            &mut LoopScratch::new(),
        );
        let new = ServeSpec::closed(4)
            .run_on(&dir, &params, &queries)
            .unwrap();
        assert_eq!(old.makespan_ms.to_bits(), new.report.makespan_ms.to_bits());
        assert_eq!(
            old.throughput_qps.to_bits(),
            new.report.throughput_qps.to_bits()
        );
        assert_eq!(old.utilization.to_bits(), new.report.utilization.to_bits());
        assert_eq!(new.events, 0);
        assert!(new.availability.is_none() && new.sharing.is_none());
    }

    #[test]
    fn open_spec_matches_serve_core_bitwise() {
        let (dir, queries, arrivals) = fixture();
        let params = DiskParams::default();
        let engine = MultiUserEngine::new(&dir);
        let old = engine.serving().serve_core(
            &params,
            &queries,
            &arrivals,
            &ServeConfig::default(),
            &Obs::disabled(),
            &mut LoopScratch::new(),
        );
        let new = ServeSpec::open(200.0)
            .run_with_arrivals(
                &engine,
                &params,
                &queries,
                &arrivals,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        assert_eq!(
            old.report.makespan_ms.to_bits(),
            new.report.makespan_ms.to_bits()
        );
        assert_eq!(old.events, new.events);
        assert_eq!(old.pages, new.pages);
        assert_eq!(old.peak_in_flight, new.peak_in_flight);
    }

    #[test]
    fn degraded_spec_matches_degraded_core_bitwise() {
        let (dir, queries, arrivals) = fixture();
        let params = DiskParams::default();
        let engine = MultiUserEngine::new(&dir);
        let schedule = FaultSchedule::parse("fail:2@10", 8).unwrap();
        let cfg = DegradedServeConfig {
            seed: DEFAULT_SPEC_SEED,
            ..DegradedServeConfig::default()
        };
        let old = engine
            .serving()
            .serve_degraded_core(
                &params,
                &queries,
                &arrivals,
                &schedule,
                1,
                ReplicaPolicy::NearestFreeQueue,
                &cfg,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        let new = ServeSpec::open(200.0)
            .replicas(1)
            .policy(ReplicaPolicy::NearestFreeQueue)
            .faults(schedule)
            .run_with_arrivals(
                &engine,
                &params,
                &queries,
                &arrivals,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        let avail = new.availability.expect("degraded run reports availability");
        assert_eq!(
            old.serve.report.makespan_ms.to_bits(),
            new.report.makespan_ms.to_bits()
        );
        assert_eq!(old.served, avail.served);
        assert_eq!(old.failovers, avail.failovers);
        assert_eq!(old.transitions, avail.transitions);
    }

    #[test]
    fn warm_started_engine_is_bit_identical_to_cold() {
        let (dir, queries, arrivals) = fixture();
        let params = DiskParams::default();
        // Cold: build the kernel, export it to a persist-v3 image.
        let cold = MultiUserEngine::new(&dir);
        let mut cache = decluster_methods::KernelCache::new();
        let map = cold.serving().counts().allocation();
        let kernel = cold.serving().counts().kernel().expect("kernel-backed");
        cache.insert("HCAM", map, kernel);
        // Warm: reload the image and adopt the stored kernel.
        let loaded = decluster_methods::KernelCache::from_bytes(&cache.to_bytes()).unwrap();
        let warm =
            MultiUserEngine::with_kernel(&dir, Some(loaded.lookup("HCAM", map).expect("fresh")));
        assert!(warm.kernel_backed());
        let schedule = FaultSchedule::parse("fail:2@10", 8).unwrap();
        let closed_cold = ServeSpec::closed(4)
            .run(
                &cold,
                &params,
                &queries,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        let closed_warm = ServeSpec::closed(4)
            .run(
                &warm,
                &params,
                &queries,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        assert_eq!(
            closed_cold.report.makespan_ms.to_bits(),
            closed_warm.report.makespan_ms.to_bits()
        );
        assert_eq!(
            closed_cold.report.throughput_qps.to_bits(),
            closed_warm.report.throughput_qps.to_bits()
        );
        for spec in [
            ServeSpec::open(200.0),
            ServeSpec::open(200.0).share(5.0),
            ServeSpec::open(200.0)
                .replicas(1)
                .policy(ReplicaPolicy::NearestFreeQueue)
                .faults(schedule),
        ] {
            let a = spec
                .clone()
                .run_with_arrivals(
                    &cold,
                    &params,
                    &queries,
                    &arrivals,
                    &Obs::disabled(),
                    &mut LoopScratch::new(),
                )
                .unwrap();
            let b = spec
                .run_with_arrivals(
                    &warm,
                    &params,
                    &queries,
                    &arrivals,
                    &Obs::disabled(),
                    &mut LoopScratch::new(),
                )
                .unwrap();
            assert_eq!(
                a.report.makespan_ms.to_bits(),
                b.report.makespan_ms.to_bits()
            );
            assert_eq!(
                a.report.throughput_qps.to_bits(),
                b.report.throughput_qps.to_bits()
            );
            assert_eq!(
                a.report.utilization.to_bits(),
                b.report.utilization.to_bits()
            );
            assert_eq!(a.pages, b.pages);
            assert_eq!(a.events, b.events);
            assert_eq!(a.availability, b.availability);
            assert_eq!(a.sharing, b.sharing);
        }
    }

    #[test]
    fn zero_batch_window_is_bit_identical_to_unshared() {
        let (dir, queries, arrivals) = fixture();
        let params = DiskParams::default();
        let engine = MultiUserEngine::new(&dir);
        let plain = ServeSpec::open(200.0)
            .run_with_arrivals(
                &engine,
                &params,
                &queries,
                &arrivals,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        let shared = ServeSpec::open(200.0)
            .share(0.0)
            .run_with_arrivals(
                &engine,
                &params,
                &queries,
                &arrivals,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        assert_eq!(
            plain.report.makespan_ms.to_bits(),
            shared.report.makespan_ms.to_bits()
        );
        assert_eq!(plain.pages, shared.pages);
        assert_eq!(plain.events, shared.events);
        let sharing = shared.sharing.expect("share(0) still reports stats");
        assert_eq!(sharing, ShareStats::default());
    }

    #[test]
    fn sharing_saves_pages_on_overlapping_bursts() {
        let space = GridSpace::new_2d(16, 16).unwrap();
        let hcam = Hcam::new(&space, 8).unwrap();
        let dir = GridDirectory::build(space.clone(), 8, |b| hcam.disk_of(b.as_slice()));
        let region = decluster_grid::RangeQuery::new([0, 0], [7, 7])
            .unwrap()
            .region(&space)
            .unwrap();
        let queries = vec![region; 4];
        // All four arrive inside one 5 ms window.
        let arrivals = [0.0, 1.0, 2.0, 3.0];
        let engine = MultiUserEngine::new(&dir);
        let params = DiskParams::default();
        let run = ServeSpec::open(200.0)
            .share(5.0)
            .run_with_arrivals(
                &engine,
                &params,
                &queries,
                &arrivals,
                &Obs::disabled(),
                &mut LoopScratch::new(),
            )
            .unwrap();
        let sharing = run.sharing.expect("sharing stats present");
        assert_eq!(sharing.windows, 1);
        assert_eq!(sharing.merged_queries, 4);
        // Four identical 64-page scans dedup to one: 3 × 64 pages saved.
        assert_eq!(sharing.pages_saved, 3 * 64);
        assert_eq!(run.pages, 64);
        assert_eq!(run.report.queries, 4);
    }
}
