//! Deterministic workload generators for every query population the paper
//! sweeps.
//!
//! All generators take an explicit [`rand::Rng`] seeded by the experiment
//! harness, so a given `(seed, configuration)` always produces the same
//! query stream — runs are exactly reproducible.

use crate::{Result, SimError};
use decluster_grid::{BucketCoord, BucketRegion, GridSpace, PartialMatchQuery};
use rand::Rng;

/// Seedable inter-arrival distribution of an open-loop request stream:
/// the gap between consecutive arrivals, parameterized by the offered
/// rate. Poisson is the paper-era default (memoryless clients); Uniform
/// and Constant bound the burstiness from either side at the same mean.
///
/// Sampling is deterministic per RNG state; the serving engine's
/// [`crate::events::sharded_arrivals`] draws per-chunk streams from this
/// to build arbitrarily long arrival vectors byte-identically at any
/// thread count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterArrival {
    /// Exponential gaps (a Poisson arrival process) at `rate_qps`.
    Poisson {
        /// Offered load, queries per second.
        rate_qps: f64,
    },
    /// Uniform gaps on `[0, 2/rate)` — same mean, bounded burst.
    Uniform {
        /// Offered load, queries per second.
        rate_qps: f64,
    },
    /// Fixed gaps of exactly `1/rate` — a metronome, no randomness.
    Constant {
        /// Offered load, queries per second.
        rate_qps: f64,
    },
}

impl InterArrival {
    /// The offered rate, queries per second.
    pub fn rate_qps(&self) -> f64 {
        match *self {
            InterArrival::Poisson { rate_qps }
            | InterArrival::Uniform { rate_qps }
            | InterArrival::Constant { rate_qps } => rate_qps,
        }
    }

    /// Mean gap between arrivals, ms.
    ///
    /// # Panics
    /// Panics unless the rate is positive.
    pub fn mean_gap_ms(&self) -> f64 {
        let rate = self.rate_qps();
        assert!(rate > 0.0, "arrival rate must be positive");
        1000.0 / rate
    }

    /// Draws one inter-arrival gap in ms. The Poisson draw consumes the
    /// RNG exactly like [`crate::poisson_arrivals`] (same formula, same
    /// stream), so chunked generation reproduces the pinned vectors.
    pub fn sample_gap_ms<R: Rng>(&self, rng: &mut R) -> f64 {
        let mean = self.mean_gap_ms();
        match self {
            InterArrival::Poisson { .. } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() * mean
            }
            InterArrival::Uniform { .. } => rng.gen_range(0.0..2.0 * mean),
            InterArrival::Constant { .. } => mean,
        }
    }
}

/// Near-isotropic integer side lengths whose product is exactly `area`,
/// fitted to `dims` (per-dimension grid sizes).
///
/// For 2-D this is the divisor pair closest to a square; for higher
/// dimensions the factorization proceeds greedily from the k-th root.
/// Returns `None` if no factorization fits inside the grid (e.g. a prime
/// area larger than every side).
pub fn rect_sides_for_area(area: u64, dims: &[u32]) -> Option<Vec<u32>> {
    fn fit(area: u64, dims: &[u32]) -> Option<Vec<u32>> {
        if dims.len() == 1 {
            return (area <= u64::from(dims[0]) && area >= 1).then(|| vec![area as u32]);
        }
        // Ideal side on this dimension: the k-th root of the area.
        let k = dims.len() as f64;
        let ideal = (area as f64).powf(1.0 / k).round() as u64;
        let max_side = u64::from(dims[0]);
        // Try divisors of `area` near the ideal, preferring closeness.
        let mut candidates: Vec<u64> = (1..=area.min(max_side))
            .filter(|d| area.is_multiple_of(*d))
            .collect();
        candidates.sort_by_key(|&d| d.abs_diff(ideal));
        for d in candidates {
            if let Some(mut rest) = fit(area / d, &dims[1..]) {
                let mut sides = vec![d as u32];
                sides.append(&mut rest);
                return Some(sides);
            }
        }
        None
    }
    if area == 0 {
        return None;
    }
    fit(area, dims)
}

/// A uniformly random placement of a query box with the given side
/// lengths inside the grid.
///
/// # Errors
/// [`SimError::QueryDoesNotFit`] if any side exceeds the grid.
pub fn random_region<R: Rng>(
    rng: &mut R,
    space: &GridSpace,
    sides: &[u32],
) -> Result<BucketRegion> {
    if sides.len() != space.k()
        || sides
            .iter()
            .zip(space.dims())
            .any(|(&s, &d)| s == 0 || s > d)
    {
        return Err(SimError::QueryDoesNotFit {
            extents: sides.to_vec(),
            dims: space.dims().to_vec(),
        });
    }
    let mut lo = Vec::with_capacity(space.k());
    let mut hi = Vec::with_capacity(space.k());
    for (d, &s) in sides.iter().enumerate() {
        let max_lo = space.dim(d) - s;
        let l = if max_lo == 0 {
            0
        } else {
            rng.gen_range(0..=max_lo)
        };
        lo.push(l);
        hi.push(l + s - 1);
    }
    Ok(
        BucketRegion::new(space, BucketCoord::from(lo), BucketCoord::from(hi))
            .expect("placement stays in grid"),
    )
}

/// A uniformly random range query: each dimension gets an independent
/// random inclusive interval.
pub fn random_range_region<R: Rng>(rng: &mut R, space: &GridSpace) -> BucketRegion {
    let mut lo = Vec::with_capacity(space.k());
    let mut hi = Vec::with_capacity(space.k());
    for &d in space.dims() {
        let a = rng.gen_range(0..d);
        let b = rng.gen_range(0..d);
        lo.push(a.min(b));
        hi.push(a.max(b));
    }
    BucketRegion::new(space, BucketCoord::from(lo), BucketCoord::from(hi))
        .expect("random interval is valid")
}

/// Experiment 1's independent variable: a sweep over query sizes (area in
/// buckets), each realized as a near-square box placed uniformly at
/// random.
#[derive(Clone, Debug)]
pub struct SizeSweep {
    areas: Vec<u64>,
}

impl SizeSweep {
    /// Log-spaced integer areas from `min_area` to `max_area` (inclusive,
    /// deduplicated), `points` of them. The paper's Experiment 1 is
    /// `SizeSweep::new(1, 1024, …)`.
    pub fn new(min_area: u64, max_area: u64, points: usize) -> Self {
        let (min_area, max_area) = (min_area.max(1), max_area.max(1));
        if points <= 1 || min_area >= max_area {
            return SizeSweep {
                areas: vec![min_area],
            };
        }
        let lo = (min_area as f64).ln();
        let hi = (max_area as f64).ln();
        let mut areas: Vec<u64> = (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1) as f64;
                (lo + (hi - lo) * t).exp().round() as u64
            })
            .collect();
        areas.dedup();
        SizeSweep { areas }
    }

    /// An explicit list of areas.
    pub fn explicit(areas: Vec<u64>) -> Self {
        SizeSweep { areas }
    }

    /// The areas this sweep visits.
    pub fn areas(&self) -> &[u64] {
        &self.areas
    }
}

/// Experiment 2's independent variable: aspect ratios `1 : 2^p` at fixed
/// area, from a square (`p = 0`) toward a line.
#[derive(Clone, Debug)]
pub struct ShapeSweep {
    area: u64,
    powers: Vec<u32>,
}

impl ShapeSweep {
    /// All ratios `1:1, 1:2, 1:4, … 1:2^max_power` whose side lengths
    /// divide exactly: sides are `(sqrt(area/2^p), sqrt(area·2^p))`, kept
    /// only when both are integers. Use a power-of-four area (16, 64, 256,
    /// 1024 …) for the full even-power ladder.
    pub fn new(area: u64, max_power: u32) -> Self {
        let powers = (0..=max_power)
            .filter(|&p| Self::sides_for(area, p).is_some())
            .collect();
        ShapeSweep { area, powers }
    }

    /// The fixed query area.
    pub fn area(&self) -> u64 {
        self.area
    }

    /// The admitted powers `p` (aspect `1:2^p`).
    pub fn powers(&self) -> &[u32] {
        &self.powers
    }

    /// Integer sides for aspect `1:2^p`, if they exist.
    pub fn sides_for(area: u64, p: u32) -> Option<(u32, u32)> {
        // a = sqrt(area / 2^p), b = a * 2^p.
        if p >= 63 || !area.is_multiple_of(1u64 << p) {
            return None;
        }
        let a2 = area >> p;
        let a = (a2 as f64).sqrt().round() as u64;
        (a * a == a2 && a >= 1).then(|| ((a as u32), (a << p) as u32))
    }
}

/// Every partial-match query on a grid: each attribute bound to one of its
/// partitions or left unspecified, excluding the trivial all-unspecified
/// query (the full relation scan).
pub fn all_partial_match_queries(space: &GridSpace) -> Vec<PartialMatchQuery> {
    let k = space.k();
    let mut out = Vec::new();
    // Mixed-radix counter over (d_i + 1) choices per dimension; the extra
    // value means "unspecified".
    let mut idx = vec![0u32; k];
    loop {
        let bindings: Vec<Option<u32>> = idx
            .iter()
            .zip(space.dims())
            .map(|(&c, &d)| (c < d).then_some(c))
            .collect();
        if bindings.iter().any(Option::is_some) {
            out.push(PartialMatchQuery::new(bindings).expect("non-empty"));
        }
        // Increment.
        let mut dim = k;
        loop {
            if dim == 0 {
                return out;
            }
            dim -= 1;
            idx[dim] += 1;
            if idx[dim] <= space.dim(dim) {
                break;
            }
            idx[dim] = 0;
        }
    }
}

/// A mixed query population: the proportions of the paper's query
/// classes a real workload would blend.
///
/// Proportions are weights (not required to sum to 1); each generated
/// query independently picks its class by weight. Use with
/// [`WorkloadMix::generate`] for a reproducible stream.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadMix {
    /// Weight of point queries.
    pub point: f64,
    /// Weight of partial-match queries (one random attribute left free).
    pub partial_match: f64,
    /// Weight of small near-square range queries, with their area.
    pub small_range: f64,
    /// Area of a small range query.
    pub small_area: u64,
    /// Weight of large near-square range queries, with their area.
    pub large_range: f64,
    /// Area of a large range query.
    pub large_area: u64,
}

impl Default for WorkloadMix {
    /// An OLTP-leaning default: 40% points, 20% partial match, 30% small
    /// ranges (area 9), 10% large ranges (area 256).
    fn default() -> Self {
        WorkloadMix {
            point: 0.4,
            partial_match: 0.2,
            small_range: 0.3,
            small_area: 9,
            large_range: 0.1,
            large_area: 256,
        }
    }
}

impl WorkloadMix {
    /// Generates `n` query regions from the mix, deterministically per
    /// RNG state. Range areas that cannot fit the grid are clamped to the
    /// largest near-square that does.
    ///
    /// # Errors
    /// [`SimError::EmptySweep`] if all weights are zero or negative.
    pub fn generate<R: Rng>(
        &self,
        rng: &mut R,
        space: &GridSpace,
        n: usize,
    ) -> Result<Vec<BucketRegion>> {
        let weights = [
            self.point.max(0.0),
            self.partial_match.max(0.0),
            self.small_range.max(0.0),
            self.large_range.max(0.0),
        ];
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(SimError::EmptySweep);
        }
        let clamp_area = |area: u64| -> Vec<u32> {
            let mut a = area.min(space.num_buckets()).max(1);
            loop {
                if let Some(sides) = rect_sides_for_area(a, space.dims()) {
                    return sides;
                }
                a -= 1; // area 1 always factorizes, so this terminates
            }
        };
        let small = clamp_area(self.small_area);
        let large = clamp_area(self.large_area);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = rng.gen_range(0.0..total);
            let class = weights
                .iter()
                .position(|&w| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .unwrap_or(3);
            let region = match class {
                0 => {
                    let coords: Vec<u32> =
                        space.dims().iter().map(|&d| rng.gen_range(0..d)).collect();
                    BucketRegion::new(
                        space,
                        BucketCoord::from(coords.clone()),
                        BucketCoord::from(coords),
                    )
                    .expect("point in grid")
                }
                1 => {
                    let free = rng.gen_range(0..space.k());
                    let bindings: Vec<Option<u32>> = (0..space.k())
                        .map(|d| (d != free).then(|| rng.gen_range(0..space.dim(d))))
                        .collect();
                    PartialMatchQuery::new(bindings)
                        .expect("non-empty")
                        .region(space)
                        .expect("bindings in range")
                }
                2 => random_region(rng, space, &small)?,
                _ => random_region(rng, space, &large)?,
            };
            out.push(region);
        }
        Ok(out)
    }
}

/// Partial-match queries with exactly `unspecified` free attributes,
/// sampled uniformly (all of them if fewer than `limit`).
pub fn partial_match_with_unspecified<R: Rng>(
    rng: &mut R,
    space: &GridSpace,
    unspecified: usize,
    limit: usize,
) -> Vec<PartialMatchQuery> {
    let k = space.k();
    assert!(unspecified <= k, "cannot free more attributes than exist");
    let mut out = Vec::with_capacity(limit);
    for _ in 0..limit {
        // Choose which attributes are free.
        let mut free = vec![false; k];
        let mut remaining = unspecified;
        for (d, slot) in free.iter_mut().enumerate() {
            let slots_left = k - d;
            if remaining > 0 && rng.gen_range(0..slots_left) < remaining {
                *slot = true;
                remaining -= 1;
            }
        }
        let bindings: Vec<Option<u32>> = (0..k)
            .map(|d| (!free[d]).then(|| rng.gen_range(0..space.dim(d))))
            .collect();
        if bindings.iter().any(Option::is_some) {
            out.push(PartialMatchQuery::new(bindings).expect("non-empty"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn inter_arrival_poisson_matches_poisson_arrivals_stream() {
        // Same seed, same formula: cumulative gaps reproduce the pinned
        // poisson_arrivals vector bit for bit.
        let dist = InterArrival::Poisson { rate_qps: 40.0 };
        let mut a = StdRng::seed_from_u64(123);
        let mut t = 0.0;
        let via_dist: Vec<f64> = (0..50)
            .map(|_| {
                t += dist.sample_gap_ms(&mut a);
                t
            })
            .collect();
        let mut b = StdRng::seed_from_u64(123);
        let pinned = crate::poisson_arrivals(&mut b, 50, 40.0);
        for (x, y) in via_dist.iter().zip(&pinned) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn inter_arrival_means_agree() {
        for dist in [
            InterArrival::Poisson { rate_qps: 25.0 },
            InterArrival::Uniform { rate_qps: 25.0 },
            InterArrival::Constant { rate_qps: 25.0 },
        ] {
            assert_eq!(dist.rate_qps(), 25.0);
            assert_eq!(dist.mean_gap_ms(), 40.0);
            let mut r = rng();
            let n = 20_000;
            let mean = (0..n).map(|_| dist.sample_gap_ms(&mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - 40.0).abs() < 2.0,
                "{dist:?} sample mean {mean} far from 40"
            );
        }
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn inter_arrival_rejects_zero_rate() {
        let _ = InterArrival::Constant { rate_qps: 0.0 }.mean_gap_ms();
    }

    #[test]
    fn rect_sides_prefer_squares() {
        assert_eq!(rect_sides_for_area(16, &[64, 64]), Some(vec![4, 4]));
        assert_eq!(rect_sides_for_area(12, &[64, 64]), Some(vec![3, 4]));
        assert_eq!(rect_sides_for_area(1, &[64, 64]), Some(vec![1, 1]));
        // Prime areas become lines.
        let sides = rect_sides_for_area(13, &[64, 64]).unwrap();
        assert_eq!(sides.iter().map(|&s| u64::from(s)).product::<u64>(), 13);
    }

    #[test]
    fn rect_sides_respect_grid_bounds() {
        // 128 = 2x64 fits a 64x64 grid; as 1x128 it would not.
        let sides = rect_sides_for_area(128, &[64, 64]).unwrap();
        assert!(sides.iter().all(|&s| s <= 64));
        assert_eq!(sides.iter().map(|&s| u64::from(s)).product::<u64>(), 128);
        // A prime bigger than the side cannot fit.
        assert_eq!(rect_sides_for_area(67, &[64, 64]), None);
        assert_eq!(rect_sides_for_area(0, &[64, 64]), None);
    }

    #[test]
    fn rect_sides_three_dimensions() {
        let sides = rect_sides_for_area(64, &[16, 16, 16]).unwrap();
        assert_eq!(sides, vec![4, 4, 4]);
        let sides = rect_sides_for_area(32, &[16, 16, 16]).unwrap();
        assert_eq!(sides.iter().map(|&s| u64::from(s)).product::<u64>(), 32);
    }

    #[test]
    fn random_region_respects_sides_and_bounds() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let region = random_region(&mut r, &g, &[3, 5]).unwrap();
            assert_eq!(region.extent(0), 3);
            assert_eq!(region.extent(1), 5);
            assert!(region.hi()[0] < 16 && region.hi()[1] < 16);
        }
    }

    #[test]
    fn random_region_rejects_oversize() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let mut r = rng();
        assert!(matches!(
            random_region(&mut r, &g, &[9, 1]).unwrap_err(),
            SimError::QueryDoesNotFit { .. }
        ));
        assert!(random_region(&mut r, &g, &[0, 1]).is_err());
        assert!(random_region(&mut r, &g, &[1]).is_err());
    }

    #[test]
    fn random_region_is_deterministic_per_seed() {
        let g = GridSpace::new_2d(32, 32).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(
                random_region(&mut a, &g, &[4, 4]).unwrap(),
                random_region(&mut b, &g, &[4, 4]).unwrap()
            );
        }
    }

    #[test]
    fn random_range_region_is_valid() {
        let g = GridSpace::new(vec![8, 4, 6]).unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let region = random_range_region(&mut r, &g);
            assert!(region.num_buckets() >= 1);
            for d in 0..3 {
                assert!(region.hi()[d] < g.dim(d));
            }
        }
    }

    #[test]
    fn size_sweep_is_log_spaced_and_deduplicated() {
        let s = SizeSweep::new(1, 1024, 11);
        assert_eq!(s.areas().first(), Some(&1));
        assert_eq!(s.areas().last(), Some(&1024));
        assert!(s.areas().windows(2).all(|w| w[0] < w[1]));
        let single = SizeSweep::new(5, 5, 10);
        assert_eq!(single.areas(), &[5]);
    }

    #[test]
    fn shape_sweep_even_powers_of_area_64() {
        // 64 = 8^2: p=0 -> 8x8, p=2 -> 4x16, p=4 -> 2x32, p=6 -> 1x64.
        let s = ShapeSweep::new(64, 6);
        assert_eq!(s.powers(), &[0, 2, 4, 6]);
        assert_eq!(ShapeSweep::sides_for(64, 0), Some((8, 8)));
        assert_eq!(ShapeSweep::sides_for(64, 2), Some((4, 16)));
        assert_eq!(ShapeSweep::sides_for(64, 6), Some((1, 64)));
        assert_eq!(ShapeSweep::sides_for(64, 1), None); // 32 is not square
    }

    #[test]
    fn workload_mix_generates_all_classes() {
        let g = GridSpace::new_2d(32, 32).unwrap();
        let mut r = rng();
        let mix = WorkloadMix::default();
        let regions = mix.generate(&mut r, &g, 500).unwrap();
        assert_eq!(regions.len(), 500);
        let points = regions.iter().filter(|q| q.num_buckets() == 1).count();
        let pm = regions
            .iter()
            .filter(|q| q.num_buckets() == 32) // full row/column
            .count();
        let small = regions.iter().filter(|q| q.num_buckets() == 9).count();
        let large = regions.iter().filter(|q| q.num_buckets() == 256).count();
        assert!(points > 100, "points {points}");
        assert!(pm > 30, "pm {pm}");
        assert!(small > 80, "small {small}");
        assert!(large > 10, "large {large}");
        assert_eq!(points + pm + small + large, 500);
    }

    #[test]
    fn workload_mix_is_deterministic_per_seed() {
        let g = GridSpace::new_2d(16, 16).unwrap();
        let mix = WorkloadMix::default();
        let a = mix.generate(&mut StdRng::seed_from_u64(5), &g, 50).unwrap();
        let b = mix.generate(&mut StdRng::seed_from_u64(5), &g, 50).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn workload_mix_clamps_oversize_areas() {
        let g = GridSpace::new_2d(4, 4).unwrap();
        let mix = WorkloadMix {
            large_area: 10_000,
            large_range: 1.0,
            point: 0.0,
            partial_match: 0.0,
            small_range: 0.0,
            small_area: 9,
        };
        let mut r = rng();
        let regions = mix.generate(&mut r, &g, 20).unwrap();
        assert!(regions.iter().all(|q| q.num_buckets() <= 16));
    }

    #[test]
    fn workload_mix_rejects_zero_weights() {
        let g = GridSpace::new_2d(8, 8).unwrap();
        let mix = WorkloadMix {
            point: 0.0,
            partial_match: 0.0,
            small_range: 0.0,
            large_range: 0.0,
            small_area: 4,
            large_area: 16,
        };
        let mut r = rng();
        assert!(matches!(
            mix.generate(&mut r, &g, 10).unwrap_err(),
            SimError::EmptySweep
        ));
    }

    #[test]
    fn all_partial_match_counts() {
        // (d0+1)(d1+1) - 1 combos.
        let g = GridSpace::new_2d(3, 4).unwrap();
        let qs = all_partial_match_queries(&g);
        assert_eq!(qs.len(), 4 * 5 - 1);
        // All valid, none all-unspecified.
        for q in &qs {
            assert!(q.bindings().iter().any(Option::is_some));
            assert!(q.region(&g).is_ok());
        }
    }

    #[test]
    fn partial_match_with_fixed_unspecified_count() {
        let g = GridSpace::new(vec![4, 4, 4]).unwrap();
        let mut r = rng();
        let qs = partial_match_with_unspecified(&mut r, &g, 2, 50);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert_eq!(q.unspecified(), 2);
        }
        // Zero unspecified = point queries.
        let points = partial_match_with_unspecified(&mut r, &g, 0, 10);
        assert!(points.iter().all(|q| q.is_point()));
    }
}
