//! The report sink API: every tabular artifact — sweep tables, serve
//! curves, fault tables, metrics snapshots — renders through one
//! [`Report`] trait and a [`ReportFormat`] selector, instead of a
//! parallel free function per (type, format) pair.
//!
//! The deprecated `render_*` free functions live at the crate root as
//! thin wrappers and produce byte-identical output (covered by parity
//! tests), so existing callers keep compiling.

use crate::experiment::{AvailSweep, ServeSweep, ShareSweep};
use crate::faults::FaultReport;
use crate::SweepResult;
use decluster_obs::json::JsonValue;
use decluster_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// Output format selector for [`Report::render`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportFormat {
    /// Aligned plain-text table.
    Table,
    /// Plain-text table with every mean annotated by its ~95%
    /// confidence half-width. Reports without per-cell sampling
    /// distributions fall back to [`ReportFormat::Table`].
    TableWithCi,
    /// Comma-separated values with a header row.
    Csv,
    /// One JSON document (trailing newline included).
    Json,
}

/// A renderable report. Implemented by [`SweepResult`], [`FaultReport`],
/// and the observability [`MetricsSnapshot`], so binaries emit every
/// artifact through the same sink call.
pub trait Report {
    /// Renders this report in `format`.
    fn render(&self, format: ReportFormat) -> String;
}

/// A generic aligned plain-text table: optional title line, a
/// right-aligned header row, an optional dashed separator, and
/// right-aligned data rows (columns joined by two spaces).
///
/// This is the one rendering engine behind every `Table` /
/// `TableWithCi` output in the workspace; it reproduces the original
/// `render_table` layout byte for byte.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    /// Title printed on its own line (skipped when empty).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have one cell per header.
    pub rows: Vec<Vec<String>>,
    /// Whether to print a dashed separator under the header row.
    pub separator: bool,
}

impl TextTable {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(c, h)| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        if self.separator && !widths.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
            );
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

fn fmt_cell(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else {
        format!("{v:.3}")
    }
}

impl SweepResult {
    fn column_headers(&self) -> Vec<String> {
        let mut headers: Vec<String> = vec![self.xlabel.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        headers.push("OPT".to_owned());
        headers
    }

    fn text_table(&self, with_ci: bool) -> TextTable {
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.xs.len());
        for (i, &x) in self.xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                if with_ci {
                    if s.means[i].is_nan() {
                        row.push("-".to_owned());
                    } else {
                        row.push(format!(
                            "{:.3} ±{:.3}",
                            s.means[i],
                            s.summaries[i].ci95_half_width()
                        ));
                    }
                } else {
                    row.push(fmt_cell(s.means[i]));
                }
            }
            row.push(fmt_cell(self.optimal[i]));
            rows.push(row);
        }
        TextTable {
            title: if with_ci {
                format!("{} (means ±95% CI)", self.title)
            } else {
                self.title.clone()
            },
            headers: self.column_headers(),
            rows,
            // The CI variant historically prints no separator line;
            // byte-identity with the deprecated wrappers preserves that.
            separator: !with_ci,
        }
    }

    fn csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![self.xlabel.replace(',', ";")];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        headers.push("OPT".to_owned());
        let _ = writeln!(out, "{}", headers.join(","));
        for (i, &x) in self.xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(if s.means[i].is_nan() {
                    String::new()
                } else {
                    format!("{}", s.means[i])
                });
            }
            row.push(format!("{}", self.optimal[i]));
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    fn json(&self) -> JsonValue {
        let numbers =
            |xs: &[f64]| JsonValue::Array(xs.iter().map(|&v| JsonValue::Number(v)).collect());
        let series = JsonValue::Array(
            self.series
                .iter()
                .map(|s| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::String(s.name.clone())),
                        ("means".into(), numbers(&s.means)),
                        (
                            "ci95".into(),
                            JsonValue::Array(
                                s.summaries
                                    .iter()
                                    .map(|sm| JsonValue::Number(sm.ci95_half_width()))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("title".into(), JsonValue::String(self.title.clone())),
            ("xlabel".into(), JsonValue::String(self.xlabel.clone())),
            ("xs".into(), numbers(&self.xs)),
            ("optimal".into(), numbers(&self.optimal)),
            ("series".into(), series),
        ])
    }
}

impl Report for SweepResult {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Table => self.text_table(false).render(),
            ReportFormat::TableWithCi => self.text_table(true).render(),
            ReportFormat::Csv => self.csv(),
            ReportFormat::Json => format!("{}\n", self.json()),
        }
    }
}

impl FaultReport {
    fn text_table(&self) -> TextTable {
        let headers = [
            "method",
            "healthy RT",
            "degraded RT",
            "worst RT",
            "avail %",
            "served",
            "lost",
            "failover",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.3}", r.healthy.mean),
                    format!("{:.3}", r.degraded.mean),
                    format!("{:.0}", r.degraded.max),
                    format!("{:.1}", r.availability * 100.0),
                    format!("{}", r.served),
                    format!("{}", r.unavailable),
                    format!("{}", r.failover_buckets),
                ]
            })
            .collect();
        TextTable {
            title: self.title.clone(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows,
            separator: true,
        }
    }

    fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "method,healthy_mean_rt,degraded_mean_rt,degraded_max_rt,availability,served,unavailable,failover_buckets"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                r.name.replace(',', ";"),
                r.healthy.mean,
                r.degraded.mean,
                r.degraded.max,
                r.availability,
                r.served,
                r.unavailable,
                r.failover_buckets
            );
        }
        out
    }

    fn json(&self) -> JsonValue {
        let rows = JsonValue::Array(
            self.rows
                .iter()
                .map(|r| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::String(r.name.clone())),
                        ("healthy_mean_rt".into(), JsonValue::Number(r.healthy.mean)),
                        (
                            "degraded_mean_rt".into(),
                            JsonValue::Number(r.degraded.mean),
                        ),
                        ("degraded_max_rt".into(), JsonValue::Number(r.degraded.max)),
                        ("availability".into(), JsonValue::Number(r.availability)),
                        ("served".into(), JsonValue::Number(r.served as f64)),
                        (
                            "unavailable".into(),
                            JsonValue::Number(r.unavailable as f64),
                        ),
                        (
                            "failover_buckets".into(),
                            JsonValue::Number(r.failover_buckets as f64),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("title".into(), JsonValue::String(self.title.clone())),
            ("schedule".into(), JsonValue::String(self.schedule.clone())),
            ("rows".into(), rows),
        ])
    }
}

impl Report for FaultReport {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            // Fault rows carry no per-cell sampling distribution to
            // annotate, so TableWithCi degrades to the plain table.
            ReportFormat::Table | ReportFormat::TableWithCi => self.text_table().render(),
            ReportFormat::Csv => self.csv(),
            ReportFormat::Json => format!("{}\n", self.json()),
        }
    }
}

impl ServeSweep {
    fn text_table(&self) -> TextTable {
        let headers = [
            "rate q/s",
            "method",
            "achieved q/s",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "util",
            "in-flight",
        ];
        let mut rows = Vec::with_capacity(self.rates_qps.len() * self.curves.len());
        for ri in 0..self.rates_qps.len() {
            for curve in &self.curves {
                let p = &curve.points[ri];
                rows.push(vec![
                    format!("{:.3}", p.offered_qps),
                    curve.method.clone(),
                    format!("{:.3}", p.achieved_qps),
                    format!("{:.3}", p.mean_latency_ms),
                    format!("{:.3}", p.tail_ms.p50),
                    format!("{:.3}", p.tail_ms.p95),
                    format!("{:.3}", p.tail_ms.p99),
                    format!("{:.3}", p.utilization),
                    format!("{}", p.peak_in_flight),
                ]);
            }
        }
        TextTable {
            title: self.title.clone(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows,
            separator: true,
        }
    }

    fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rate_qps,method,achieved_qps,mean_latency_ms,p50_ms,p95_ms,p99_ms,utilization,peak_in_flight,knee_qps"
        );
        for ri in 0..self.rates_qps.len() {
            for curve in &self.curves {
                let p = &curve.points[ri];
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{}",
                    p.offered_qps,
                    curve.method.replace(',', ";"),
                    p.achieved_qps,
                    p.mean_latency_ms,
                    p.tail_ms.p50,
                    p.tail_ms.p95,
                    p.tail_ms.p99,
                    p.utilization,
                    p.peak_in_flight,
                    curve.knee_qps
                );
            }
        }
        out
    }

    fn json(&self) -> JsonValue {
        let curves = JsonValue::Array(
            self.curves
                .iter()
                .map(|c| {
                    let points = JsonValue::Array(
                        c.points
                            .iter()
                            .map(|p| {
                                JsonValue::Object(vec![
                                    ("offered_qps".into(), JsonValue::Number(p.offered_qps)),
                                    ("achieved_qps".into(), JsonValue::Number(p.achieved_qps)),
                                    (
                                        "mean_latency_ms".into(),
                                        JsonValue::Number(p.mean_latency_ms),
                                    ),
                                    ("p50_ms".into(), JsonValue::Number(p.tail_ms.p50)),
                                    ("p95_ms".into(), JsonValue::Number(p.tail_ms.p95)),
                                    ("p99_ms".into(), JsonValue::Number(p.tail_ms.p99)),
                                    ("utilization".into(), JsonValue::Number(p.utilization)),
                                    (
                                        "peak_in_flight".into(),
                                        JsonValue::Number(p.peak_in_flight as f64),
                                    ),
                                ])
                            })
                            .collect(),
                    );
                    JsonValue::Object(vec![
                        ("method".into(), JsonValue::String(c.method.clone())),
                        ("knee_qps".into(), JsonValue::Number(c.knee_qps)),
                        ("points".into(), points),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("title".into(), JsonValue::String(self.title.clone())),
            ("clients".into(), JsonValue::Number(self.clients as f64)),
            (
                "rates_qps".into(),
                JsonValue::Array(
                    self.rates_qps
                        .iter()
                        .map(|&r| JsonValue::Number(r))
                        .collect(),
                ),
            ),
            ("curves".into(), curves),
        ])
    }
}

impl Report for ServeSweep {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            // Serve rows carry exact tails rather than sampling CIs, so
            // TableWithCi degrades to the plain table.
            ReportFormat::Table | ReportFormat::TableWithCi => {
                let mut out = self.text_table().render();
                for c in &self.curves {
                    let _ = writeln!(out, "knee {}: {:.3} q/s", c.method, c.knee_qps);
                }
                out
            }
            ReportFormat::Csv => self.csv(),
            ReportFormat::Json => format!("{}\n", self.json()),
        }
    }
}

impl AvailSweep {
    fn text_table(&self) -> TextTable {
        let headers = [
            "faults",
            "r",
            "policy",
            "avail %",
            "served",
            "shed",
            "lost",
            "retries",
            "failovers",
            "q/s",
            "mean ms",
            "p99 ms",
            "RT x",
            "storage x",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.schedule.clone(),
                    format!("{}", p.replicas),
                    p.policy.name().to_owned(),
                    format!("{:.2}", p.availability * 100.0),
                    format!("{}", p.served),
                    format!("{}", p.shed),
                    format!("{}", p.lost),
                    format!("{}", p.retries),
                    format!("{}", p.failovers),
                    format!("{:.3}", p.achieved_qps),
                    format!("{:.3}", p.mean_latency_ms),
                    format!("{:.3}", p.tail_ms.p99),
                    format!("{:.3}", p.rt_overhead),
                    format!("{:.0}", p.storage_overhead),
                ]
            })
            .collect();
        TextTable {
            title: self.title.clone(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows,
            separator: true,
        }
    }

    fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedule,replicas,policy,availability,served,shed,lost,retries,timeouts,failovers,achieved_qps,mean_latency_ms,p50_ms,p95_ms,p99_ms,rt_overhead,storage_overhead"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                p.schedule.replace(',', ";"),
                p.replicas,
                p.policy.name(),
                p.availability,
                p.served,
                p.shed,
                p.lost,
                p.retries,
                p.timeouts,
                p.failovers,
                p.achieved_qps,
                p.mean_latency_ms,
                p.tail_ms.p50,
                p.tail_ms.p95,
                p.tail_ms.p99,
                p.rt_overhead,
                p.storage_overhead
            );
        }
        out
    }

    fn json(&self) -> JsonValue {
        let points = JsonValue::Array(
            self.points
                .iter()
                .map(|p| {
                    JsonValue::Object(vec![
                        ("schedule".into(), JsonValue::String(p.schedule.clone())),
                        ("replicas".into(), JsonValue::Number(f64::from(p.replicas))),
                        (
                            "policy".into(),
                            JsonValue::String(p.policy.name().to_owned()),
                        ),
                        ("availability".into(), JsonValue::Number(p.availability)),
                        ("served".into(), JsonValue::Number(p.served as f64)),
                        ("shed".into(), JsonValue::Number(p.shed as f64)),
                        ("lost".into(), JsonValue::Number(p.lost as f64)),
                        ("retries".into(), JsonValue::Number(p.retries as f64)),
                        ("timeouts".into(), JsonValue::Number(p.timeouts as f64)),
                        ("failovers".into(), JsonValue::Number(p.failovers as f64)),
                        ("achieved_qps".into(), JsonValue::Number(p.achieved_qps)),
                        (
                            "mean_latency_ms".into(),
                            JsonValue::Number(p.mean_latency_ms),
                        ),
                        ("p50_ms".into(), JsonValue::Number(p.tail_ms.p50)),
                        ("p95_ms".into(), JsonValue::Number(p.tail_ms.p95)),
                        ("p99_ms".into(), JsonValue::Number(p.tail_ms.p99)),
                        ("rt_overhead".into(), JsonValue::Number(p.rt_overhead)),
                        (
                            "storage_overhead".into(),
                            JsonValue::Number(p.storage_overhead),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("title".into(), JsonValue::String(self.title.clone())),
            ("method".into(), JsonValue::String(self.method.clone())),
            ("clients".into(), JsonValue::Number(self.clients as f64)),
            ("rate_qps".into(), JsonValue::Number(self.rate_qps)),
            ("points".into(), points),
        ])
    }
}

impl Report for AvailSweep {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            // Availability rows carry exact counts rather than sampling
            // CIs, so TableWithCi degrades to the plain table.
            ReportFormat::Table | ReportFormat::TableWithCi => self.text_table().render(),
            ReportFormat::Csv => self.csv(),
            ReportFormat::Json => format!("{}\n", self.json()),
        }
    }
}

impl ShareSweep {
    fn text_table(&self) -> TextTable {
        let headers = [
            "method",
            "overlap",
            "r",
            "unshared q/s",
            "shared q/s",
            "speedup",
            "mean ms",
            "shared ms",
            "windows",
            "merged",
            "pages saved",
        ];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.method.clone(),
                    format!("{:.2}", p.overlap),
                    format!("{}", p.replicas),
                    format!("{:.3}", p.unshared_qps),
                    format!("{:.3}", p.shared_qps),
                    format!("{:.3}", p.speedup()),
                    format!("{:.3}", p.unshared_mean_ms),
                    format!("{:.3}", p.shared_mean_ms),
                    format!("{}", p.windows),
                    format!("{}", p.merged_queries),
                    format!("{}", p.pages_saved),
                ]
            })
            .collect();
        TextTable {
            title: self.title.clone(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows,
            separator: true,
        }
    }

    fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "method,overlap,replicas,unshared_qps,shared_qps,speedup,unshared_mean_ms,shared_mean_ms,windows,merged_queries,pages_saved"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                p.method.replace(',', ";"),
                p.overlap,
                p.replicas,
                p.unshared_qps,
                p.shared_qps,
                p.speedup(),
                p.unshared_mean_ms,
                p.shared_mean_ms,
                p.windows,
                p.merged_queries,
                p.pages_saved
            );
        }
        out
    }

    fn json(&self) -> JsonValue {
        let points = JsonValue::Array(
            self.points
                .iter()
                .map(|p| {
                    JsonValue::Object(vec![
                        ("method".into(), JsonValue::String(p.method.clone())),
                        ("overlap".into(), JsonValue::Number(p.overlap)),
                        ("replicas".into(), JsonValue::Number(f64::from(p.replicas))),
                        ("unshared_qps".into(), JsonValue::Number(p.unshared_qps)),
                        ("shared_qps".into(), JsonValue::Number(p.shared_qps)),
                        ("speedup".into(), JsonValue::Number(p.speedup())),
                        (
                            "unshared_mean_ms".into(),
                            JsonValue::Number(p.unshared_mean_ms),
                        ),
                        ("shared_mean_ms".into(), JsonValue::Number(p.shared_mean_ms)),
                        ("windows".into(), JsonValue::Number(p.windows as f64)),
                        (
                            "merged_queries".into(),
                            JsonValue::Number(p.merged_queries as f64),
                        ),
                        (
                            "pages_saved".into(),
                            JsonValue::Number(p.pages_saved as f64),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("title".into(), JsonValue::String(self.title.clone())),
            ("clients".into(), JsonValue::Number(self.clients as f64)),
            ("rate_qps".into(), JsonValue::Number(self.rate_qps)),
            (
                "batch_window_ms".into(),
                JsonValue::Number(self.batch_window_ms),
            ),
            ("points".into(), points),
        ])
    }
}

impl Report for ShareSweep {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            // Share rows carry exact counts rather than sampling CIs, so
            // TableWithCi degrades to the plain table.
            ReportFormat::Table | ReportFormat::TableWithCi => {
                let mut out = self.text_table().render();
                if let Some(best) = self
                    .points
                    .iter()
                    .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
                {
                    let _ = writeln!(
                        out,
                        "best speedup {}: {:.3}x at overlap {:.2}, r={}",
                        best.method,
                        best.speedup(),
                        best.overlap,
                        best.replicas
                    );
                }
                out
            }
            ReportFormat::Csv => self.csv(),
            ReportFormat::Json => format!("{}\n", self.json()),
        }
    }
}

impl Report for MetricsSnapshot {
    fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Table | ReportFormat::TableWithCi => self.render_text(),
            ReportFormat::Csv => self.render_csv(),
            ReportFormat::Json => format!("{}\n", self.to_json()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodSeries, Summary};

    fn sample() -> SweepResult {
        SweepResult {
            title: "demo".into(),
            xlabel: "area".into(),
            xs: vec![1.0, 4.0],
            optimal: vec![1.0, 1.0],
            series: vec![
                MethodSeries {
                    name: "DM".into(),
                    means: vec![1.0, 2.5],
                    summaries: vec![Summary::of(&[1.0]), Summary::of(&[2.5])],
                },
                MethodSeries {
                    name: "ECC".into(),
                    means: vec![1.0, f64::NAN],
                    summaries: vec![Summary::of(&[1.0]), Summary::of(&[])],
                },
            ],
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = sample().render(ReportFormat::Table);
        assert!(t.contains("demo"));
        assert!(t.contains("DM"));
        assert!(t.contains("OPT"));
        assert!(t.contains("2.500"));
        // NaN renders as a dash.
        assert!(t.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn ci_table_annotates_means() {
        let t = sample().render(ReportFormat::TableWithCi);
        assert!(t.contains("±"));
        assert!(t.contains("95% CI"));
        // NaN points stay dashes.
        assert!(t.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn ci_table_from_real_experiment_has_finite_cis() {
        use decluster_grid::GridSpace;
        let r = crate::Experiment::new(GridSpace::new_2d(8, 8).unwrap(), 4)
            .with_queries_per_point(32)
            .run_size_sweep(&crate::workload::SizeSweep::explicit(vec![4]))
            .unwrap();
        let t = r.render(ReportFormat::TableWithCi);
        assert!(t.contains("±"));
        assert!(!t.contains("NaN"));
    }

    #[test]
    fn csv_roundtrips_structure() {
        let c = sample().render(ReportFormat::Csv);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "area,DM,ECC,OPT");
        assert_eq!(lines[1], "1,1,1,1");
        // NaN -> empty cell.
        assert_eq!(lines[2], "4,2.5,,1");
    }

    fn fault_sample() -> FaultReport {
        use crate::faults::FaultMethodStats;
        FaultReport {
            title: "fault demo".into(),
            schedule: "fail:1@5".into(),
            rows: vec![
                FaultMethodStats {
                    name: "DM".into(),
                    healthy: Summary::of(&[2.0, 2.0]),
                    degraded: Summary::of(&[2.0]),
                    served: 1,
                    unavailable: 1,
                    availability: 0.5,
                    failover_buckets: 0,
                },
                FaultMethodStats {
                    name: "DM+chain".into(),
                    healthy: Summary::of(&[2.0, 2.0]),
                    degraded: Summary::of(&[2.0, 4.0]),
                    served: 2,
                    unavailable: 0,
                    availability: 1.0,
                    failover_buckets: 3,
                },
            ],
        }
    }

    #[test]
    fn fault_table_shows_both_variants() {
        let t = fault_sample().render(ReportFormat::Table);
        assert!(t.contains("fault demo"));
        assert!(t.contains("DM+chain"));
        assert!(t.contains("avail %"));
        assert!(t.contains("50.0"));
        assert!(t.contains("100.0"));
    }

    #[test]
    fn fault_csv_has_one_row_per_variant() {
        let c = fault_sample().render(ReportFormat::Csv);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("method,healthy_mean_rt"));
        assert!(lines[1].starts_with("DM,"));
        assert!(lines[2].starts_with("DM+chain,"));
        assert!(lines[2].contains(",1,")); // availability 1
    }

    #[test]
    fn csv_escapes_commas_in_xlabel() {
        let mut s = sample();
        s.xlabel = "a,b".into();
        assert!(s.render(ReportFormat::Csv).starts_with("a;b,"));
    }

    /// Byte-identity pin for the deprecated wrappers: the one place the
    /// deprecated API is still exercised on purpose.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_report_api_bytes() {
        use crate::{
            render_csv, render_fault_csv, render_fault_table, render_table, render_table_with_ci,
        };
        let s = sample();
        assert_eq!(render_table(&s), s.render(ReportFormat::Table));
        assert_eq!(
            render_table_with_ci(&s),
            s.render(ReportFormat::TableWithCi)
        );
        assert_eq!(render_csv(&s), s.render(ReportFormat::Csv));
        let f = fault_sample();
        assert_eq!(render_fault_table(&f), f.render(ReportFormat::Table));
        assert_eq!(render_fault_csv(&f), f.render(ReportFormat::Csv));
    }

    #[test]
    fn table_layout_is_byte_stable() {
        // Pin the exact layout the deprecated wrappers promised:
        // title, right-aligned headers, dashed separator, aligned rows.
        let t = sample().render(ReportFormat::Table);
        let expected = "demo\n\
                        area     DM    ECC    OPT\n\
                        -------------------------\n\
                        \u{20}  1  1.000  1.000  1.000\n\
                        \u{20}  4  2.500      -  1.000\n";
        assert_eq!(t, expected);
    }

    #[test]
    fn ci_table_has_no_separator_line() {
        let t = sample().render(ReportFormat::TableWithCi);
        assert!(!t
            .lines()
            .any(|l| !l.is_empty() && l.chars().all(|c| c == '-')));
        assert!(t.starts_with("demo (means ±95% CI)\n"));
    }

    #[test]
    fn json_reports_parse_and_carry_the_rows() {
        use decluster_obs::json;
        let s = sample();
        let v = json::parse(s.render(ReportFormat::Json).trim_end()).unwrap();
        assert_eq!(v.get("title").and_then(JsonValue::as_str), Some("demo"));
        assert!(matches!(v.get("series"), Some(JsonValue::Array(a)) if a.len() == 2));
        let f = fault_sample();
        let v = json::parse(f.render(ReportFormat::Json).trim_end()).unwrap();
        assert_eq!(
            v.get("schedule").and_then(JsonValue::as_str),
            Some("fail:1@5")
        );
        assert!(matches!(v.get("rows"), Some(JsonValue::Array(a)) if a.len() == 2));
    }

    fn serve_sample() -> ServeSweep {
        use crate::experiment::{ServeCurve, ServePoint};
        use crate::stats::Quantiles;
        let point = |offered: f64, achieved: f64| ServePoint {
            offered_qps: offered,
            achieved_qps: achieved,
            mean_latency_ms: 42.0,
            tail_ms: Quantiles {
                p50: 40.0,
                p95: 80.0,
                p99: 99.0,
            },
            utilization: 0.5,
            peak_in_flight: 7,
            samples: vec![],
        };
        ServeSweep {
            title: "serve demo".into(),
            clients: 100,
            rates_qps: vec![5.0, 10.0],
            curves: vec![ServeCurve {
                method: "HCAM".into(),
                points: vec![point(5.0, 5.0), point(10.0, 8.0)],
                knee_qps: 5.0,
            }],
        }
    }

    #[test]
    fn serve_table_lists_rates_and_knees() {
        let t = serve_sample().render(ReportFormat::Table);
        assert!(t.contains("serve demo"));
        assert!(t.contains("p99 ms"));
        assert!(t.contains("HCAM"));
        assert!(t.trim_end().ends_with("knee HCAM: 5.000 q/s"));
    }

    #[test]
    fn serve_csv_has_one_row_per_cell() {
        let c = serve_sample().render(ReportFormat::Csv);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("rate_qps,method,achieved_qps"));
        assert!(lines[0].ends_with("knee_qps"));
        assert_eq!(lines[1], "5,HCAM,5,42,40,80,99,0.5,7,5");
        assert_eq!(lines[2], "10,HCAM,8,42,40,80,99,0.5,7,5");
    }

    #[test]
    fn serve_json_parses_and_carries_curves() {
        use decluster_obs::json;
        let v = json::parse(serve_sample().render(ReportFormat::Json).trim_end()).unwrap();
        assert_eq!(
            v.get("title").and_then(JsonValue::as_str),
            Some("serve demo")
        );
        assert!(matches!(v.get("curves"), Some(JsonValue::Array(a)) if a.len() == 1));
    }

    fn avail_sample() -> AvailSweep {
        use crate::experiment::AvailPoint;
        use crate::faults::ReplicaPolicy;
        use crate::stats::Quantiles;
        let point = |policy, avail: f64, lost| AvailPoint {
            schedule: "fail:3@50".into(),
            replicas: 1,
            policy,
            availability: avail,
            served: 90,
            shed: 0,
            lost,
            retries: 2,
            timeouts: 3,
            failovers: 4,
            achieved_qps: 10.0,
            mean_latency_ms: 21.0,
            tail_ms: Quantiles {
                p50: 20.0,
                p95: 30.0,
                p99: 40.0,
            },
            rt_overhead: 1.25,
            storage_overhead: 2.0,
        };
        AvailSweep {
            title: "avail demo".into(),
            method: "HCAM".into(),
            clients: 100,
            rate_qps: 10.0,
            points: vec![
                point(ReplicaPolicy::PrimaryOnly, 0.9, 10),
                point(ReplicaPolicy::FailoverOnly, 1.0, 0),
            ],
        }
    }

    #[test]
    fn avail_table_lists_policies_and_overheads() {
        let t = avail_sample().render(ReportFormat::Table);
        assert!(t.contains("avail demo"));
        assert!(t.contains("primary"));
        assert!(t.contains("failover"));
        assert!(t.contains("90.00"));
        assert!(t.contains("100.00"));
        assert!(t.contains("1.250"));
        assert!(t.contains("storage x"));
    }

    #[test]
    fn avail_csv_has_one_row_per_cell() {
        let c = avail_sample().render(ReportFormat::Csv);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("schedule,replicas,policy,availability"));
        assert!(lines[0].ends_with("rt_overhead,storage_overhead"));
        assert_eq!(
            lines[1],
            "fail:3@50,1,primary,0.9,90,0,10,2,3,4,10,21,20,30,40,1.25,2"
        );
        assert_eq!(
            lines[2],
            "fail:3@50,1,failover,1,90,0,0,2,3,4,10,21,20,30,40,1.25,2"
        );
    }

    #[test]
    fn avail_json_parses_and_carries_points() {
        use decluster_obs::json;
        let v = json::parse(avail_sample().render(ReportFormat::Json).trim_end()).unwrap();
        assert_eq!(v.get("method").and_then(JsonValue::as_str), Some("HCAM"));
        assert!(matches!(v.get("points"), Some(JsonValue::Array(a)) if a.len() == 2));
    }

    fn share_sample() -> ShareSweep {
        use crate::experiment::SharePoint;
        let point = |overlap: f64, shared_qps: f64, pages_saved| SharePoint {
            method: "HCAM".into(),
            overlap,
            replicas: 1,
            unshared_qps: 10.0,
            shared_qps,
            unshared_mean_ms: 21.0,
            shared_mean_ms: 18.0,
            windows: 5,
            merged_queries: 8,
            pages_saved,
        };
        ShareSweep {
            title: "share demo".into(),
            clients: 100,
            rate_qps: 10.0,
            batch_window_ms: 4.0,
            points: vec![point(0.0, 10.0, 0), point(0.8, 15.0, 640)],
        }
    }

    #[test]
    fn share_table_lists_speedups_and_best_line() {
        let t = share_sample().render(ReportFormat::Table);
        assert!(t.contains("share demo"));
        assert!(t.contains("pages saved"));
        assert!(t.contains("1.500"));
        assert!(t
            .trim_end()
            .ends_with("best speedup HCAM: 1.500x at overlap 0.80, r=1"));
    }

    #[test]
    fn share_csv_has_one_row_per_cell() {
        let c = share_sample().render(ReportFormat::Csv);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("method,overlap,replicas,unshared_qps"));
        assert!(lines[0].ends_with("pages_saved"));
        assert_eq!(lines[1], "HCAM,0,1,10,10,1,21,18,5,8,0");
        assert_eq!(lines[2], "HCAM,0.8,1,10,15,1.5,21,18,5,8,640");
    }

    #[test]
    fn share_json_parses_and_carries_points() {
        use decluster_obs::json;
        let v = json::parse(share_sample().render(ReportFormat::Json).trim_end()).unwrap();
        assert_eq!(
            v.get("title").and_then(JsonValue::as_str),
            Some("share demo")
        );
        assert!(matches!(v.get("points"), Some(JsonValue::Array(a)) if a.len() == 2));
    }

    #[test]
    fn metrics_snapshot_renders_through_report() {
        use decluster_obs::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.counter_add("rt.queries", 4);
        let snap = reg.snapshot();
        assert!(snap.render(ReportFormat::Table).contains("rt.queries"));
        assert!(snap
            .render(ReportFormat::Csv)
            .contains("counter,rt.queries,4"));
        let json = snap.render(ReportFormat::Json);
        assert!(decluster_obs::json::parse(json.trim_end()).is_ok());
    }

    #[test]
    fn text_table_handles_empty_rows() {
        let t = TextTable {
            title: String::new(),
            headers: vec!["a".into()],
            rows: vec![],
            separator: true,
        };
        assert_eq!(t.render(), "a\n-\n");
    }
}
