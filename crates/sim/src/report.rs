//! Plain-text and CSV rendering of sweep results — the "same rows the
//! paper reports" output format.

use crate::faults::FaultReport;
use crate::SweepResult;
use std::fmt::Write as _;

fn fmt_cell(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else {
        format!("{v:.3}")
    }
}

/// Renders a sweep as an aligned plain-text table: one row per x-value,
/// one column per method, plus the optimal lower bound.
pub fn render_table(result: &SweepResult) -> String {
    let mut headers: Vec<String> = vec![result.xlabel.clone()];
    headers.extend(result.series.iter().map(|s| s.name.clone()));
    headers.push("OPT".to_owned());

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(result.xs.len());
    for (i, &x) in result.xs.iter().enumerate() {
        let mut row = vec![format!("{x}")];
        for s in &result.series {
            row.push(fmt_cell(s.means[i]));
        }
        row.push(fmt_cell(result.optimal[i]));
        rows.push(row);
    }

    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r[c].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "{}", result.title);
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

/// Renders a sweep like [`render_table`] but annotates every mean with
/// its ~95% confidence half-width (`mean ±hw`), so readers can judge
/// whether method gaps exceed sampling noise.
pub fn render_table_with_ci(result: &SweepResult) -> String {
    let mut headers: Vec<String> = vec![result.xlabel.clone()];
    headers.extend(result.series.iter().map(|s| s.name.clone()));
    headers.push("OPT".to_owned());

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(result.xs.len());
    for (i, &x) in result.xs.iter().enumerate() {
        let mut row = vec![format!("{x}")];
        for s in &result.series {
            if s.means[i].is_nan() {
                row.push("-".to_owned());
            } else {
                row.push(format!(
                    "{:.3} ±{:.3}",
                    s.means[i],
                    s.summaries[i].ci95_half_width()
                ));
            }
        }
        row.push(fmt_cell(result.optimal[i]));
        rows.push(row);
    }

    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r[c].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "{} (means ±95% CI)", result.title);
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

/// Renders a sweep as CSV with a header row (`x, <methods…>, OPT`). NaN
/// points (method not applicable) are empty cells.
pub fn render_csv(result: &SweepResult) -> String {
    let mut out = String::new();
    let mut headers = vec![result.xlabel.replace(',', ";")];
    headers.extend(result.series.iter().map(|s| s.name.clone()));
    headers.push("OPT".to_owned());
    let _ = writeln!(out, "{}", headers.join(","));
    for (i, &x) in result.xs.iter().enumerate() {
        let mut row = vec![format!("{x}")];
        for s in &result.series {
            row.push(if s.means[i].is_nan() {
                String::new()
            } else {
                format!("{}", s.means[i])
            });
        }
        row.push(format!("{}", result.optimal[i]));
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Renders a fault-injection report as an aligned plain-text table: one
/// row per method variant, with healthy vs degraded mean RT, worst-case
/// degraded RT, availability, and failover volume.
pub fn render_fault_table(report: &FaultReport) -> String {
    let headers = [
        "method",
        "healthy RT",
        "degraded RT",
        "worst RT",
        "avail %",
        "served",
        "lost",
        "failover",
    ];
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3}", r.healthy.mean),
                format!("{:.3}", r.degraded.mean),
                format!("{:.0}", r.degraded.max),
                format!("{:.1}", r.availability * 100.0),
                format!("{}", r.served),
                format!("{}", r.unavailable),
                format!("{}", r.failover_buckets),
            ]
        })
        .collect();
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r[c].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "{}", report.title);
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

/// Renders a fault-injection report as CSV
/// (`method,healthy_mean_rt,degraded_mean_rt,degraded_max_rt,availability,served,unavailable,failover_buckets`).
pub fn render_fault_csv(report: &FaultReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method,healthy_mean_rt,degraded_mean_rt,degraded_max_rt,availability,served,unavailable,failover_buckets"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.name.replace(',', ";"),
            r.healthy.mean,
            r.degraded.mean,
            r.degraded.max,
            r.availability,
            r.served,
            r.unavailable,
            r.failover_buckets
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodSeries, Summary};

    fn sample() -> SweepResult {
        SweepResult {
            title: "demo".into(),
            xlabel: "area".into(),
            xs: vec![1.0, 4.0],
            optimal: vec![1.0, 1.0],
            series: vec![
                MethodSeries {
                    name: "DM".into(),
                    means: vec![1.0, 2.5],
                    summaries: vec![Summary::of(&[1.0]), Summary::of(&[2.5])],
                },
                MethodSeries {
                    name: "ECC".into(),
                    means: vec![1.0, f64::NAN],
                    summaries: vec![Summary::of(&[1.0]), Summary::of(&[])],
                },
            ],
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = render_table(&sample());
        assert!(t.contains("demo"));
        assert!(t.contains("DM"));
        assert!(t.contains("OPT"));
        assert!(t.contains("2.500"));
        // NaN renders as a dash.
        assert!(t.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn ci_table_annotates_means() {
        let t = render_table_with_ci(&sample());
        assert!(t.contains("±"));
        assert!(t.contains("95% CI"));
        // NaN points stay dashes.
        assert!(t.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn ci_table_from_real_experiment_has_finite_cis() {
        use decluster_grid::GridSpace;
        let r = crate::Experiment::new(GridSpace::new_2d(8, 8).unwrap(), 4)
            .with_queries_per_point(32)
            .run_size_sweep(&crate::workload::SizeSweep::explicit(vec![4]))
            .unwrap();
        let t = render_table_with_ci(&r);
        assert!(t.contains("±"));
        assert!(!t.contains("NaN"));
    }

    #[test]
    fn csv_roundtrips_structure() {
        let c = render_csv(&sample());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "area,DM,ECC,OPT");
        assert_eq!(lines[1], "1,1,1,1");
        // NaN -> empty cell.
        assert_eq!(lines[2], "4,2.5,,1");
    }

    fn fault_sample() -> FaultReport {
        use crate::faults::FaultMethodStats;
        FaultReport {
            title: "fault demo".into(),
            schedule: "fail:1@5".into(),
            rows: vec![
                FaultMethodStats {
                    name: "DM".into(),
                    healthy: Summary::of(&[2.0, 2.0]),
                    degraded: Summary::of(&[2.0]),
                    served: 1,
                    unavailable: 1,
                    availability: 0.5,
                    failover_buckets: 0,
                },
                FaultMethodStats {
                    name: "DM+chain".into(),
                    healthy: Summary::of(&[2.0, 2.0]),
                    degraded: Summary::of(&[2.0, 4.0]),
                    served: 2,
                    unavailable: 0,
                    availability: 1.0,
                    failover_buckets: 3,
                },
            ],
        }
    }

    #[test]
    fn fault_table_shows_both_variants() {
        let t = render_fault_table(&fault_sample());
        assert!(t.contains("fault demo"));
        assert!(t.contains("DM+chain"));
        assert!(t.contains("avail %"));
        assert!(t.contains("50.0"));
        assert!(t.contains("100.0"));
    }

    #[test]
    fn fault_csv_has_one_row_per_variant() {
        let c = render_fault_csv(&fault_sample());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("method,healthy_mean_rt"));
        assert!(lines[1].starts_with("DM,"));
        assert!(lines[2].starts_with("DM+chain,"));
        assert!(lines[2].contains(",1,")); // availability 1
    }

    #[test]
    fn csv_escapes_commas_in_xlabel() {
        let mut s = sample();
        s.xlabel = "a,b".into();
        assert!(render_csv(&s).starts_with("a;b,"));
    }
}
