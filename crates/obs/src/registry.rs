//! The metrics registry: named atomic counters, max-gauges, fixed-bucket
//! histograms, and a separate wall-clock section.
//!
//! Lock discipline: metric handles live behind an `RwLock<BTreeMap>`;
//! the common path (metric already registered) takes a read lock and an
//! atomic op. Hot layers additionally batch their updates — once per
//! sweep point or per scored population, never per bucket — so registry
//! cost is negligible next to the work being measured. All deterministic
//! updates are commutative (add / max), which is what makes snapshot
//! values bit-identical under any thread count.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default histogram bounds, in bucket-retrieval units — the paper's
/// response-time scale (query areas 1..1024 over M disks). Bucket `i`
/// counts observations `<= RT_BUCKETS[i]`; one extra bucket counts the
/// rest.
pub const RT_BUCKETS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// One histogram: fixed upper bounds plus an overflow bucket, a total
/// count, and a sum (all atomics, all updated with `fetch_add`).
#[derive(Debug)]
struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is `> bounds.last()`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// One wall-clock statistic: total milliseconds and observation count.
/// Lives in the snapshot's non-deterministic section.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallStat {
    /// Total observed milliseconds.
    pub total_ms: f64,
    /// Number of observations.
    pub count: u64,
}

/// The registry behind [`crate::MetricsRecorder`]. Usable directly when
/// embedding metrics without the recorder indirection.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    walls: Mutex<BTreeMap<String, WallStat>>,
}

/// Register-or-get a named handle out of one of the maps.
fn handle<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    init: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(h) = map.read().expect("metrics map poisoned").get(name) {
        return h.clone();
    }
    map.write()
        .expect("metrics map poisoned")
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(init()))
        .clone()
}

/// A pre-interned counter: the name lookup (read lock + map walk) is paid
/// once at registration, after which [`CounterHandle::add`] is a single
/// atomic `fetch_add`. An inert handle (from a disabled recorder) drops
/// every update.
///
/// This is the hot-loop form of [`MetricsRegistry::counter_add`]: loops
/// that update the same counter per query intern the handle once per run
/// instead of re-resolving the name each time.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Option<Arc<AtomicU64>>);

impl CounterHandle {
    /// A handle that drops every update (the disabled-recorder form).
    pub fn inert() -> Self {
        CounterHandle(None)
    }

    /// Adds `delta` to the interned counter (no-op when inert).
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// A pre-interned max-gauge; see [`CounterHandle`] for the rationale.
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle(Option<Arc<AtomicU64>>);

impl GaugeHandle {
    /// A handle that drops every update (the disabled-recorder form).
    pub fn inert() -> Self {
        GaugeHandle(None)
    }

    /// Raises the interned gauge to at least `value` (no-op when inert).
    pub fn max(&self, value: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(value, Ordering::Relaxed);
        }
    }
}

/// A pre-interned histogram; see [`CounterHandle`] for the rationale.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that drops every update (the disabled-recorder form).
    pub fn inert() -> Self {
        HistogramHandle(None)
    }

    /// Records `value` into the interned histogram (no-op when inert).
    pub fn observe(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.observe(value);
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, delta: u64) {
        handle(&self.counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises max-gauge `name` to at least `value`.
    pub fn gauge_max(&self, name: &str, value: u64) {
        handle(&self.gauges, name, || AtomicU64::new(0)).fetch_max(value, Ordering::Relaxed);
    }

    /// Records `value` into histogram `name` ([`RT_BUCKETS`] bounds).
    pub fn observe(&self, name: &str, value: u64) {
        handle(&self.histograms, name, || Histogram::new(&RT_BUCKETS)).observe(value);
    }

    /// Interns counter `name` (creating it at zero) and returns a live
    /// handle so hot loops skip the name lookup on every update.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        CounterHandle(Some(handle(&self.counters, name, || AtomicU64::new(0))))
    }

    /// Interns max-gauge `name` and returns a live handle.
    pub fn gauge_handle(&self, name: &str) -> GaugeHandle {
        GaugeHandle(Some(handle(&self.gauges, name, || AtomicU64::new(0))))
    }

    /// Interns histogram `name` ([`RT_BUCKETS`] bounds) and returns a live
    /// handle.
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        HistogramHandle(Some(handle(&self.histograms, name, || {
            Histogram::new(&RT_BUCKETS)
        })))
    }

    /// Adds one wall-clock observation of `ms` milliseconds under `name`.
    pub fn wall_add(&self, name: &str, ms: f64) {
        let mut walls = self.walls.lock().expect("wall map poisoned");
        let stat = walls.entry(name.to_owned()).or_default();
        stat.total_ms += ms;
        stat.count += 1;
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics map poisoned")
            .iter()
            .map(|(k, h)| HistogramSnapshot {
                name: k.clone(),
                bounds: h.bounds.clone(),
                counts: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            })
            .collect();
        let walls = self
            .walls
            .lock()
            .expect("wall map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            walls,
        }
    }
}

/// A frozen histogram, part of a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one more entry than `bounds` (the overflow
    /// bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate, resolved to the upper bound of
    /// the bucket containing the `q`-th observation (`0.0 < q <= 1.0`).
    /// Returns `None` when the histogram is empty or the rank falls in
    /// the overflow bucket, whose upper edge is unknown.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        // ceil(q * count) without float edge cases at q == 1.0.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

/// A point-in-time copy of a registry: deterministic sections (counters,
/// gauges, histograms — logical quantities only) plus the wall-clock
/// section, kept apart so deterministic output never mixes with timing
/// noise.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` max-gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Wall-clock statistics, sorted by name. **Non-deterministic** —
    /// never include these in output that is diffed across runs.
    pub walls: Vec<(String, WallStat)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of max-gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether the deterministic sections are all empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the **deterministic** sections as aligned text. Stable
    /// across thread counts; safe to diff.
    pub fn render_text(&self) -> String {
        let mut out = String::from("metrics snapshot (logical quantities, deterministic)\n");
        if self.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .chain(&self.gauges)
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (max):\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {}: count {} sum {} mean {:.3}",
                h.name,
                h.count,
                h.sum,
                h.mean()
            );
            for (i, &n) in h.counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "  le {b:>6}  {n}");
                    }
                    None => {
                        let _ = writeln!(out, "  le   +inf  {n}");
                    }
                }
            }
        }
        out
    }

    /// Renders the **wall-clock** section as text. Non-deterministic by
    /// nature; emit it somewhere that is never diffed (e.g. stderr).
    pub fn render_wall_text(&self) -> String {
        if self.walls.is_empty() {
            return String::new();
        }
        let mut out = String::from("timings (wall-clock, non-deterministic)\n");
        let width = self.walls.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, stat) in &self.walls {
            let mean = if stat.count > 0 {
                stat.total_ms / stat.count as f64
            } else {
                0.0
            };
            // Names ending in `_ms` are durations; anything else in the
            // wall section is a plain (scheduling-dependent) count.
            let unit = if name.ends_with("_ms") { " ms" } else { "" };
            let _ = writeln!(
                out,
                "  {name:<width$}  n {:>6}  total {:>10.3}{unit}  mean {:>9.3}{unit}",
                stat.count, stat.total_ms, mean
            );
        }
        out
    }

    /// Renders the deterministic sections as `section,name,value` CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("section,name,value\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{},{}", name.replace(',', ";"), value);
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{},{}", name.replace(',', ";"), value);
        }
        for h in &self.histograms {
            let name = h.name.replace(',', ";");
            for (i, &n) in h.counts.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "histogram,{name}.le_{b},{n}");
                    }
                    None => {
                        let _ = writeln!(out, "histogram,{name}.le_inf,{n}");
                    }
                }
            }
            let _ = writeln!(out, "histogram,{name}.count,{}", h.count);
            let _ = writeln!(out, "histogram,{name}.sum,{}", h.sum);
        }
        out
    }

    /// The whole snapshot (including the wall section) as one JSON
    /// object.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue as J;
        let obj_u64 = |items: &[(String, u64)]| {
            J::Object(
                items
                    .iter()
                    .map(|(n, v)| (n.clone(), J::Number(*v as f64)))
                    .collect(),
            )
        };
        let histograms = J::Array(
            self.histograms
                .iter()
                .map(|h| {
                    J::Object(vec![
                        ("name".into(), J::String(h.name.clone())),
                        (
                            "bounds".into(),
                            J::Array(h.bounds.iter().map(|&b| J::Number(b as f64)).collect()),
                        ),
                        (
                            "counts".into(),
                            J::Array(h.counts.iter().map(|&c| J::Number(c as f64)).collect()),
                        ),
                        ("count".into(), J::Number(h.count as f64)),
                        ("sum".into(), J::Number(h.sum as f64)),
                    ])
                })
                .collect(),
        );
        let walls = J::Object(
            self.walls
                .iter()
                .map(|(n, s)| {
                    (
                        n.clone(),
                        J::Object(vec![
                            ("total_ms".into(), J::Number(s.total_ms)),
                            ("count".into(), J::Number(s.count as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        J::Object(vec![
            ("counters".into(), obj_u64(&self.counters)),
            ("gauges".into(), obj_u64(&self.gauges)),
            ("histograms".into(), histograms),
            ("walls".into(), walls),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_snapshot_sorts() {
        let r = MetricsRegistry::new();
        r.counter_add("b", 2);
        r.counter_add("a", 1);
        r.counter_add("b", 3);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_owned(), 1), ("b".to_owned(), 5)]);
        assert_eq!(s.counter("b"), Some(5));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_keep_the_max() {
        let r = MetricsRegistry::new();
        r.gauge_max("g", 3);
        r.gauge_max("g", 9);
        r.gauge_max("g", 5);
        assert_eq!(r.snapshot().gauge("g"), Some(9));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = MetricsRegistry::new();
        for v in [1, 2, 2, 1000, 5000] {
            r.observe("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 6005);
        assert_eq!(h.counts[0], 1); // le 1
        assert_eq!(h.counts[1], 2); // le 2
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert!((h.mean() - 1201.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_resolve_to_bucket_bounds() {
        let r = MetricsRegistry::new();
        for v in [1, 2, 2, 1000, 5000] {
            r.observe("h", v);
        }
        let s = r.snapshot();
        let h = s.histogram("h").unwrap();
        // Ranks 1..=5 walk the cumulative counts: 1,2,2 then 1000, then
        // the 5000 observation lands in the overflow bucket (None).
        assert_eq!(h.quantile(0.2), Some(1));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(
            h.quantile(0.8),
            h.bounds.iter().find(|&&b| b >= 1000).copied()
        );
        assert_eq!(h.quantile(1.0), None); // max fell past the last bound
        assert_eq!(h.quantile(0.0), None); // out of range
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        r.counter_add("c", 1);
                        r.observe("h", i % 7);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(8000));
        assert_eq!(s.histogram("h").unwrap().count, 8000);
    }

    #[test]
    fn text_render_is_stable_and_sectioned() {
        let r = MetricsRegistry::new();
        r.counter_add("rt.queries", 10);
        r.gauge_max("exec.threads", 4);
        r.observe("rt.response_time", 3);
        r.wall_add("sweep.point_ms", 1.25);
        let s = r.snapshot();
        let text = s.render_text();
        assert!(text.contains("deterministic"));
        assert!(text.contains("rt.queries"));
        assert!(text.contains("histogram rt.response_time"));
        // Wall section is *not* part of the deterministic render.
        assert!(!text.contains("sweep.point_ms"));
        let wall = s.render_wall_text();
        assert!(wall.contains("sweep.point_ms"));
        assert!(wall.contains("non-deterministic"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = MetricsSnapshot::default();
        assert!(s.is_empty());
        assert!(s.render_text().contains("no metrics recorded"));
        assert_eq!(s.render_wall_text(), "");
    }

    #[test]
    fn csv_flattens_every_section() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.gauge_max("g", 2);
        r.observe("h", 3);
        let csv = r.snapshot().render_csv();
        assert!(csv.starts_with("section,name,value\n"));
        assert!(csv.contains("counter,c,1"));
        assert!(csv.contains("gauge,g,2"));
        assert!(csv.contains("histogram,h.le_4,1"));
        assert!(csv.contains("histogram,h.count,1"));
        assert!(csv.contains("histogram,h.sum,3"));
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.observe("h", 3);
        r.wall_add("w", 0.5);
        let json = r.snapshot().to_json().to_string();
        let parsed = crate::json::parse(&json).unwrap();
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("walls").is_some());
    }
}
