//! Minimal JSON support: a value model, a writer, and a
//! recursive-descent parser.
//!
//! The workspace is offline (no serde); this module is just enough JSON
//! for trace sinks, metric snapshots, and the CI trace validator. The
//! writer emits compact output with keys in insertion order; non-finite
//! numbers become `null` (JSON has no NaN/inf).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (written as an integer when it is one).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (`None` for non-objects or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Object(_))
    }
}

/// Appends a JSON string literal (with escapes) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` (`null` for NaN/inf, integer form
/// when the value is integral).
pub fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl JsonValue {
    /// Serializes compactly into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at byte {start}"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_compact_and_ordered() {
        let v = JsonValue::Object(vec![
            ("event".into(), JsonValue::String("ping".into())),
            ("n".into(), JsonValue::Number(1.0)),
            ("ok".into(), JsonValue::Bool(true)),
            ("x".into(), JsonValue::Null),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"event\":\"ping\",\"n\":1,\"ok\":true,\"x\":null}"
        );
    }

    #[test]
    fn numbers_render_integers_without_dot() {
        let mut out = String::new();
        write_number(&mut out, 42.0);
        assert_eq!(out, "42");
        out.clear();
        write_number(&mut out, 1.5);
        assert_eq!(out, "1.5");
        out.clear();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn strings_escape_control_chars() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let v = JsonValue::Object(vec![
            ("s".into(), JsonValue::String("hé\n\"x\"".into())),
            (
                "a".into(),
                JsonValue::Array(vec![
                    JsonValue::Number(1.0),
                    JsonValue::Number(-2.5),
                    JsonValue::Bool(false),
                    JsonValue::Null,
                ]),
            ),
            ("o".into(), JsonValue::Object(vec![])),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"event\":\"e\",\"n\":3}").unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("event").and_then(JsonValue::as_str), Some("e"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert!(v.get("missing").is_none());
    }
}
