//! Structured trace events and pluggable sinks.
//!
//! A [`TraceEvent`] is a kind tag plus ordered `(key, value)` fields.
//! Sinks decide the wire format: [`JsonLinesSink`] writes one JSON
//! object per line (stable schema: `event` first, then fields in
//! emission order), [`TextSink`] writes a human-readable line, and
//! [`NullSink`] discards everything.

use crate::json::{write_escaped, write_number, JsonValue};
use std::io::{self, Write};

/// One field value of a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (query counts, bucket counts, indices).
    U64(u64),
    /// A float (means, fractions).
    F64(f64),
    /// A string (method names, phase names).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A structured trace event: a kind plus ordered fields.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event kind, e.g. `"point_done"` or `"disk_failed"`.
    pub kind: &'static str,
    /// Ordered `(key, value)` fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// An event of `kind` with no fields yet.
    pub fn new(kind: &'static str) -> Self {
        TraceEvent {
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends one field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// This event as a JSON object: `event` first, then fields in
    /// order.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = Vec::with_capacity(self.fields.len() + 1);
        fields.push(("event".to_owned(), JsonValue::String(self.kind.to_owned())));
        for (key, value) in &self.fields {
            let v = match value {
                FieldValue::U64(n) => JsonValue::Number(*n as f64),
                FieldValue::F64(x) => JsonValue::Number(*x),
                FieldValue::Str(s) => JsonValue::String(s.clone()),
                FieldValue::Bool(b) => JsonValue::Bool(*b),
            };
            fields.push(((*key).to_owned(), v));
        }
        JsonValue::Object(fields)
    }
}

/// A consumer of trace events.
pub trait TraceSink {
    /// Consumes one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Flushes any buffered output.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Writes one compact JSON object per event, one per line. The first
/// key is always `"event"`; remaining keys follow field order. `u64`
/// fields serialize as integers, floats as JSON numbers (`null` if
/// non-finite).
pub struct JsonLinesSink<W: Write> {
    writer: W,
    line: String,
}

impl<W: Write> JsonLinesSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            line: String::new(),
        }
    }

    /// Consumes the sink and returns the underlying writer (useful for
    /// in-memory writers in tests).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        self.line.clear();
        self.line.push_str("{\"event\":");
        write_escaped(&mut self.line, event.kind);
        for (key, value) in &event.fields {
            self.line.push(',');
            write_escaped(&mut self.line, key);
            self.line.push(':');
            match value {
                FieldValue::U64(n) => {
                    use std::fmt::Write as _;
                    let _ = write!(self.line, "{n}");
                }
                FieldValue::F64(x) => write_number(&mut self.line, *x),
                FieldValue::Str(s) => write_escaped(&mut self.line, s),
                FieldValue::Bool(b) => self.line.push_str(if *b { "true" } else { "false" }),
            }
        }
        self.line.push_str("}\n");
        // Trace sinks are best-effort: an unwritable sink should not
        // abort a long sweep, so errors are swallowed here and surface
        // via flush().
        let _ = self.writer.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Writes one human-readable line per event: `kind key=value ...`.
pub struct TextSink<W: Write> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let mut line = String::from(event.kind);
        for (key, value) in &event.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            match value {
                FieldValue::U64(n) => {
                    use std::fmt::Write as _;
                    let _ = write!(line, "{n}");
                }
                FieldValue::F64(x) => {
                    use std::fmt::Write as _;
                    let _ = write!(line, "{x}");
                }
                FieldValue::Str(s) => line.push_str(s),
                FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_json(event: &TraceEvent) -> String {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.emit(event);
        String::from_utf8(sink.writer).unwrap()
    }

    #[test]
    fn json_lines_schema_event_first_fields_ordered() {
        let e = TraceEvent::new("point_done")
            .with("point", 3usize)
            .with("method", "HCAM")
            .with("mean_rt", 2.5)
            .with("kernel", true);
        assert_eq!(
            render_json(&e),
            "{\"event\":\"point_done\",\"point\":3,\"method\":\"HCAM\",\"mean_rt\":2.5,\"kernel\":true}\n"
        );
    }

    #[test]
    fn json_lines_escapes_and_nonfinite() {
        let e = TraceEvent::new("note")
            .with("msg", "a\"b\nc")
            .with("x", f64::NAN);
        assert_eq!(
            render_json(&e),
            "{\"event\":\"note\",\"msg\":\"a\\\"b\\nc\",\"x\":null}\n"
        );
    }

    #[test]
    fn json_lines_parse_back() {
        let e = TraceEvent::new("q").with("n", 7u64);
        let line = render_json(&e);
        let v = crate::json::parse(line.trim_end()).unwrap();
        assert_eq!(v.get("event").and_then(JsonValue::as_str), Some("q"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(e.to_json(), v);
    }

    #[test]
    fn text_sink_renders_key_value_pairs() {
        let mut sink = TextSink::new(Vec::new());
        sink.emit(
            &TraceEvent::new("fail")
                .with("disk", 2u64)
                .with("kind", "stop"),
        );
        let text = String::from_utf8(sink.writer).unwrap();
        assert_eq!(text, "fail disk=2 kind=stop\n");
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.emit(&TraceEvent::new("x"));
        sink.flush().unwrap();
    }
}
