//! Observability layer for the declustering workspace.
//!
//! The experiment engine (prefix-sum RT kernel, parallel sweep executor,
//! multi-user loops, fault schedules) is a black box while it runs; this
//! crate opens it without perturbing it. It provides:
//!
//! * a lock-cheap [`MetricsRegistry`] — atomic counters, max-gauges, and
//!   fixed-bucket histograms keyed by name, safe to update from every
//!   worker thread of a sweep;
//! * phase-scoped wall-clock timers ([`Obs::time_phase`]) kept in a
//!   **separate, explicitly non-deterministic** section of the snapshot;
//! * a structured event-trace API ([`TraceEvent`]) with pluggable sinks:
//!   JSON-lines ([`JsonLinesSink`]), human text ([`TextSink`]), or
//!   nothing ([`NullSink`]);
//! * the [`Recorder`] trait with a no-op [`NullRecorder`], so a disabled
//!   recorder costs one branch on the cold side of an `enabled()` check
//!   and nothing on the hot path.
//!
//! # Determinism contract
//!
//! Every metric in the deterministic sections of a [`MetricsSnapshot`]
//! (counters, gauges, histograms) must be derived **only from logical
//! quantities** — query counts, bucket counts, logical fault clocks —
//! and updated through commutative operations (atomic add, atomic max).
//! Totals are then bit-identical for any thread count, so the harness's
//! 1-vs-8-thread determinism diffs keep passing with metrics enabled.
//! Wall-clock timings live in the snapshot's separate `walls` section
//! and are never mixed into deterministic output.
//!
//! Per-worker caches need one extra rule to stay on the deterministic
//! side: counters describing cache behaviour must be reset at batch
//! start and drained at batch end. The RT kernel's query-plan cache
//! (`kernel.plan_hits` / `kernel.plan_compiles`) does exactly this —
//! each scoring batch starts with a cold plan cache, so the counts are a
//! function of the batch's query sequence alone, never of which worker
//! (and thus which cache instance) happened to run the previous batch.
//! The serving loops' cross-query corner-plan cache follows the same
//! rule (`kernel.shape_cache_hits` / `kernel.shape_cache_misses`):
//! cleared at run start, drained at run end, so the counts are a pure
//! function of the run's query sequence — identical at any thread
//! count *and* identical whether the count kernel was built cold or
//! adopted from a persisted warm-start image. Kernel *construction*
//! work is deliberately excluded from metrics for that last reason: a
//! warm start performs zero builds where a cold start performs one per
//! method, so a build counter would break cold-vs-warm metric
//! byte-identity. Build wall time is scheduling-dependent anyway and
//! lands in the `walls` section (`kernel.build_ms`); logical build
//! counts are exposed process-wide by
//! `decluster_methods::kernel_build_count` for tests and benches.
//!
//! # Example
//!
//! ```
//! use decluster_obs::{MetricsRecorder, Obs, Recorder, TraceEvent};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(MetricsRecorder::new());
//! let obs = Obs::new(recorder.clone());
//! obs.counter_add("rt.queries", 3);
//! obs.observe("rt.response_time", 2);
//! obs.emit(TraceEvent::new("point_done").with("point", 0u64));
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("rt.queries"), Some(3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
mod registry;
mod trace;

pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, WallStat, RT_BUCKETS,
};
pub use trace::{FieldValue, JsonLinesSink, NullSink, TextSink, TraceEvent, TraceSink};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The recording surface the engine talks to.
///
/// Every method has a no-op default, so [`NullRecorder`] is an empty
/// impl; the engine guards its aggregation work behind [`Recorder::enabled`],
/// which keeps the disabled path free of even the bookkeeping that would
/// feed the recorder.
pub trait Recorder: Send + Sync {
    /// Whether metric recording is on. Hot layers skip all aggregation
    /// when this is false.
    fn enabled(&self) -> bool {
        false
    }

    /// Whether trace events are consumed. Callers should check before
    /// building a [`TraceEvent`] (field vectors allocate).
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Raises the max-gauge `name` to at least `value`.
    fn gauge_max(&self, _name: &str, _value: u64) {}

    /// Records `value` into the histogram `name` (RT bucket bounds).
    fn observe(&self, _name: &str, _value: u64) {}

    /// Interns counter `name` and returns a handle that skips the name
    /// lookup on every update. Defaults to an inert handle, so no-op
    /// recorders pay nothing per update.
    fn counter_handle(&self, _name: &str) -> registry::CounterHandle {
        registry::CounterHandle::inert()
    }

    /// Interns max-gauge `name` and returns a live-or-inert handle.
    fn gauge_handle(&self, _name: &str) -> registry::GaugeHandle {
        registry::GaugeHandle::inert()
    }

    /// Interns histogram `name` and returns a live-or-inert handle.
    fn histogram_handle(&self, _name: &str) -> registry::HistogramHandle {
        registry::HistogramHandle::inert()
    }

    /// Adds one wall-clock observation of `ms` milliseconds to the
    /// non-deterministic `walls` section under `name`.
    fn wall_add(&self, _name: &str, _ms: f64) {}

    /// Consumes one structured trace event.
    fn emit(&self, _event: TraceEvent) {}

    /// The current deterministic + wall state as a snapshot.
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

/// The no-op recorder: every call is a no-op and `enabled()` is false.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// The live recorder: a [`MetricsRegistry`] plus an optional trace sink.
///
/// Metric updates go straight to the registry's atomics; trace events
/// serialize through a mutex around the sink (tracing is the expensive,
/// opt-in path — metrics alone never take that lock).
pub struct MetricsRecorder {
    metrics: MetricsRegistry,
    sink: Option<Mutex<Box<dyn TraceSink + Send>>>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// A recorder with metrics only (no trace sink).
    pub fn new() -> Self {
        MetricsRecorder {
            metrics: MetricsRegistry::new(),
            sink: None,
        }
    }

    /// A recorder that also forwards trace events to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink + Send>) -> Self {
        MetricsRecorder {
            metrics: MetricsRegistry::new(),
            sink: Some(Mutex::new(sink)),
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Flushes the trace sink, if any.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.sink {
            Some(sink) => sink.lock().expect("trace sink poisoned").flush(),
            None => Ok(()),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn trace_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.metrics.gauge_max(name, value);
    }

    fn observe(&self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn counter_handle(&self, name: &str) -> CounterHandle {
        self.metrics.counter_handle(name)
    }

    fn gauge_handle(&self, name: &str) -> GaugeHandle {
        self.metrics.gauge_handle(name)
    }

    fn histogram_handle(&self, name: &str) -> HistogramHandle {
        self.metrics.histogram_handle(name)
    }

    fn wall_add(&self, name: &str, ms: f64) {
        self.metrics.wall_add(name, ms);
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink poisoned").emit(&event);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// A cheap, clonable handle to a [`Recorder`], shared by every layer of
/// the engine. [`Obs::disabled`] (the `Default`) wraps the no-op
/// recorder.
#[derive(Clone)]
pub struct Obs {
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .field("trace_enabled", &self.trace_enabled())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Obs {
    /// A handle over the no-op recorder.
    pub fn disabled() -> Self {
        Obs {
            recorder: Arc::new(NullRecorder),
        }
    }

    /// A handle over `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Obs { recorder }
    }

    /// Whether metric recording is on (hot layers guard aggregation
    /// behind this).
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Whether trace events are consumed.
    pub fn trace_enabled(&self) -> bool {
        self.recorder.trace_enabled()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.recorder.counter_add(name, delta);
    }

    /// Raises max-gauge `name` to at least `value`.
    pub fn gauge_max(&self, name: &str, value: u64) {
        self.recorder.gauge_max(name, value);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.recorder.observe(name, value);
    }

    /// Interns counter `name` once, returning a handle whose updates
    /// skip the registry lookup (inert when the recorder is disabled).
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        self.recorder.counter_handle(name)
    }

    /// Interns max-gauge `name`; see [`Obs::counter_handle`].
    pub fn gauge_handle(&self, name: &str) -> GaugeHandle {
        self.recorder.gauge_handle(name)
    }

    /// Interns histogram `name`; see [`Obs::counter_handle`].
    pub fn histogram_handle(&self, name: &str) -> HistogramHandle {
        self.recorder.histogram_handle(name)
    }

    /// Adds a wall-clock observation (non-deterministic section).
    pub fn wall_add(&self, name: &str, ms: f64) {
        self.recorder.wall_add(name, ms);
    }

    /// Emits a trace event.
    pub fn emit(&self, event: TraceEvent) {
        self.recorder.emit(event);
    }

    /// Starts a phase-scoped wall-clock timer; the elapsed time is
    /// recorded under `name` when the returned guard drops. Costs
    /// nothing when the recorder is disabled.
    pub fn time_phase(&self, name: &'static str) -> PhaseTimer<'_> {
        PhaseTimer {
            obs: self,
            name,
            start: self.enabled().then(Instant::now),
        }
    }
}

/// Guard returned by [`Obs::time_phase`]; records the elapsed wall time
/// on drop.
pub struct PhaseTimer<'a> {
    obs: &'a Obs,
    name: &'static str,
    start: Option<Instant>,
}

impl PhaseTimer<'_> {
    /// Milliseconds elapsed so far (`0.0` when the recorder is
    /// disabled).
    pub fn elapsed_ms(&self) -> f64 {
        self.start
            .map(|s| s.elapsed().as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.obs
                .wall_add(self.name, start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert!(!obs.trace_enabled());
        obs.counter_add("x", 1);
        obs.observe("h", 2);
        obs.emit(TraceEvent::new("e"));
        let _t = obs.time_phase("p");
        // NullRecorder snapshots are empty.
        assert_eq!(NullRecorder.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn live_recorder_accumulates() {
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        assert!(obs.enabled());
        obs.counter_add("c", 2);
        obs.counter_add("c", 3);
        obs.gauge_max("g", 7);
        obs.gauge_max("g", 4);
        obs.observe("h", 10);
        obs.wall_add("w", 1.5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauges, vec![("g".to_owned(), 7)]);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.walls.len(), 1);
    }

    #[test]
    fn interned_handles_hit_the_same_metrics() {
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        let c = obs.counter_handle("c");
        c.add(2);
        obs.counter_add("c", 3);
        let g = obs.gauge_handle("g");
        g.max(9);
        g.max(4);
        let h = obs.histogram_handle("h");
        h.observe(4);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(9));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        // Handles from a disabled recorder are inert.
        let inert = Obs::disabled().counter_handle("c");
        inert.add(100);
        assert_eq!(rec.snapshot().counter("c"), Some(5));
    }

    #[test]
    fn trace_events_reach_the_sink() {
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let rec = Arc::new(MetricsRecorder::with_sink(Box::new(JsonLinesSink::new(
            Shared(buf.clone()),
        ))));
        let obs = Obs::new(rec.clone());
        assert!(obs.trace_enabled());
        obs.emit(TraceEvent::new("ping").with("n", 1u64));
        rec.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"event\":\"ping\",\"n\":1}\n");
    }

    #[test]
    fn phase_timer_records_wall_time() {
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        {
            let _t = obs.time_phase("phase.test_ms");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.walls.len(), 1);
        assert_eq!(snap.walls[0].0, "phase.test_ms");
        assert_eq!(snap.walls[0].1.count, 1);
    }
}
