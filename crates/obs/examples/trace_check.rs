//! Validates a JSON-lines trace file: every line must parse as a JSON
//! object carrying a string `"event"` key. CI runs this over the trace
//! a `repro --trace` smoke run produces.
//!
//! ```text
//! cargo run -p decluster-obs --example trace_check -- trace.jsonl
//! ```

use decluster_obs::json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: not valid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        if !value.is_object() {
            eprintln!("{path}:{}: trace line is not a JSON object", i + 1);
            return ExitCode::FAILURE;
        }
        if value.get("event").and_then(|e| e.as_str()).is_none() {
            eprintln!("{path}:{}: missing string \"event\" key", i + 1);
            return ExitCode::FAILURE;
        }
        events += 1;
    }
    if events == 0 {
        eprintln!("{path}: no trace events");
        return ExitCode::FAILURE;
    }
    println!("{path}: {events} trace events, all valid");
    ExitCode::SUCCESS
}
