//! Validates checked-in benchmark snapshots: every `BENCH_*.json`
//! argument must parse with the crate's JSON parser into an object
//! carrying a string `"name"` key. CI runs this over all snapshots at
//! the repository root, so a hand-edited or truncated snapshot fails
//! the build rather than silently shipping.
//!
//! ```text
//! cargo run -p decluster-obs --example bench_check -- BENCH_*.json
//! ```

use decluster_obs::json;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: bench_check <BENCH_*.json>...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !value.is_object() {
            eprintln!("{path}: snapshot is not a JSON object");
            return ExitCode::FAILURE;
        }
        let Some(name) = value.get("name").and_then(|n| n.as_str()) else {
            eprintln!("{path}: missing string \"name\" key");
            return ExitCode::FAILURE;
        };
        println!("{path}: valid snapshot \"{name}\"");
    }
    ExitCode::SUCCESS
}
