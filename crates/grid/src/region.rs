use crate::{BucketCoord, GridError, GridSpace, Result};

/// A hyper-rectangular set of buckets: the grid footprint of a range query.
///
/// Bounds are **inclusive** on both ends, matching the paper's
/// `l_i ≤ x_i ≤ u_i` range-query definition. A region is always non-empty
/// and always lies inside the grid that produced it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BucketRegion {
    lo: BucketCoord,
    hi: BucketCoord,
}

impl BucketRegion {
    /// Creates a region from inclusive corner coordinates, validated against
    /// `space`.
    ///
    /// # Errors
    /// * [`GridError::DimensionMismatch`] / [`GridError::CoordOutOfBounds`]
    ///   if a corner is malformed.
    /// * [`GridError::InvertedRange`] if `lo > hi` on some dimension.
    pub fn new(space: &GridSpace, lo: BucketCoord, hi: BucketCoord) -> Result<Self> {
        space.check(&lo)?;
        space.check(&hi)?;
        for dim in 0..lo.dims() {
            if lo[dim] > hi[dim] {
                return Err(GridError::InvertedRange { dim });
            }
        }
        Ok(BucketRegion { lo, hi })
    }

    /// The whole grid as a single region.
    pub fn full(space: &GridSpace) -> Self {
        let lo = BucketCoord::origin(space.k());
        let hi = BucketCoord::from(space.dims().iter().map(|&d| d - 1).collect::<Vec<u32>>());
        BucketRegion { lo, hi }
    }

    /// A single-bucket region.
    pub fn point(space: &GridSpace, coord: BucketCoord) -> Result<Self> {
        space.check(&coord)?;
        Ok(BucketRegion {
            lo: coord.clone(),
            hi: coord,
        })
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &BucketCoord {
        &self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &BucketCoord {
        &self.hi
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.dims()
    }

    /// Extent (number of buckets spanned) on dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> u64 {
        u64::from(self.hi[dim] - self.lo[dim]) + 1
    }

    /// Total number of buckets in the region (`|Q|` in the paper).
    pub fn num_buckets(&self) -> u64 {
        (0..self.dims()).map(|d| self.extent(d)).product()
    }

    /// Whether `coord` falls inside the region.
    pub fn contains(&self, coord: &BucketCoord) -> bool {
        coord.dims() == self.dims()
            && (0..self.dims()).all(|d| self.lo[d] <= coord[d] && coord[d] <= self.hi[d])
    }

    /// The intersection of two regions, or `None` if they are disjoint.
    pub fn intersect(&self, other: &BucketRegion) -> Option<BucketRegion> {
        if self.dims() != other.dims() {
            return None;
        }
        let k = self.dims();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for d in 0..k {
            let l = self.lo[d].max(other.lo[d]);
            let h = self.hi[d].min(other.hi[d]);
            if l > h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(BucketRegion {
            lo: BucketCoord::from(lo),
            hi: BucketCoord::from(hi),
        })
    }

    /// Iterates over every bucket in the region in row-major order.
    pub fn iter(&self) -> RegionIter<'_> {
        RegionIter {
            region: self,
            next: Some(self.lo.clone()),
            remaining: self.num_buckets(),
        }
    }

    /// Translates the region by `delta` (added per-dimension), staying
    /// inside `space`. Returns `None` if the translated region would leave
    /// the grid. Used by workload generators to place query shapes.
    pub fn translate(&self, space: &GridSpace, delta: &[u32]) -> Option<BucketRegion> {
        if delta.len() != self.dims() {
            return None;
        }
        let k = self.dims();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for (d, &dd) in delta.iter().enumerate() {
            let l = self.lo[d].checked_add(dd)?;
            let h = self.hi[d].checked_add(dd)?;
            if h >= space.dim(d) {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(BucketRegion {
            lo: BucketCoord::from(lo),
            hi: BucketCoord::from(hi),
        })
    }
}

/// Row-major iterator over the buckets of a [`BucketRegion`].
#[derive(Clone, Debug)]
pub struct RegionIter<'a> {
    region: &'a BucketRegion,
    next: Option<BucketCoord>,
    remaining: u64,
}

impl Iterator for RegionIter<'_> {
    type Item = BucketCoord;

    fn next(&mut self) -> Option<BucketCoord> {
        let current = self.next.take()?;
        self.remaining -= 1;
        let mut succ = current.clone();
        let lo = self.region.lo.as_slice();
        let hi = self.region.hi.as_slice();
        let coords = succ.as_mut_slice();
        for i in (0..coords.len()).rev() {
            coords[i] += 1;
            if coords[i] <= hi[i] {
                self.next = Some(succ);
                return Some(current);
            }
            coords[i] = lo[i];
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RegionIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpace {
        GridSpace::new_2d(8, 8).unwrap()
    }

    #[test]
    fn new_validates_corners() {
        let g = grid();
        assert!(BucketRegion::new(&g, [1, 1].into(), [3, 3].into()).is_ok());
        assert_eq!(
            BucketRegion::new(&g, [3, 1].into(), [1, 3].into()).unwrap_err(),
            GridError::InvertedRange { dim: 0 }
        );
        assert!(matches!(
            BucketRegion::new(&g, [1, 1].into(), [8, 3].into()).unwrap_err(),
            GridError::CoordOutOfBounds { .. }
        ));
    }

    #[test]
    fn num_buckets_is_volume() {
        let g = grid();
        let r = BucketRegion::new(&g, [1, 2].into(), [3, 5].into()).unwrap();
        assert_eq!(r.num_buckets(), 3 * 4);
        assert_eq!(r.extent(0), 3);
        assert_eq!(r.extent(1), 4);
    }

    #[test]
    fn point_region_has_one_bucket() {
        let g = grid();
        let r = BucketRegion::point(&g, [4, 4].into()).unwrap();
        assert_eq!(r.num_buckets(), 1);
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec![BucketCoord::from([4, 4])]
        );
    }

    #[test]
    fn full_region_covers_grid() {
        let g = GridSpace::new(vec![2, 3, 4]).unwrap();
        let r = BucketRegion::full(&g);
        assert_eq!(r.num_buckets(), g.num_buckets());
    }

    #[test]
    fn iter_visits_exactly_the_contained_buckets() {
        let g = grid();
        let r = BucketRegion::new(&g, [2, 3].into(), [4, 5].into()).unwrap();
        let visited: Vec<BucketCoord> = r.iter().collect();
        assert_eq!(visited.len() as u64, r.num_buckets());
        for b in &visited {
            assert!(r.contains(b));
        }
        // And in row-major order.
        let mut sorted = visited.clone();
        sorted.sort();
        assert_eq!(visited, sorted);
    }

    #[test]
    fn contains_rejects_wrong_arity() {
        let g = grid();
        let r = BucketRegion::full(&g);
        assert!(!r.contains(&BucketCoord::from([1])));
    }

    #[test]
    fn intersect_overlapping() {
        let g = grid();
        let a = BucketRegion::new(&g, [0, 0].into(), [4, 4].into()).unwrap();
        let b = BucketRegion::new(&g, [2, 3].into(), [7, 7].into()).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.lo(), &BucketCoord::from([2, 3]));
        assert_eq!(i.hi(), &BucketCoord::from([4, 4]));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let g = grid();
        let a = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        let b = BucketRegion::new(&g, [3, 3].into(), [4, 4].into()).unwrap();
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn translate_moves_and_clips() {
        let g = grid();
        let r = BucketRegion::new(&g, [0, 0].into(), [1, 1].into()).unwrap();
        let t = r.translate(&g, &[6, 6]).unwrap();
        assert_eq!(t.hi(), &BucketCoord::from([7, 7]));
        assert!(r.translate(&g, &[7, 0]).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn region_in(side: u32) -> impl Strategy<Value = (GridSpace, BucketRegion)> {
        (1..=side, 1..=side).prop_flat_map(move |(a, b)| {
            let g = GridSpace::new_2d(side, side).unwrap();
            (0..=(side - a), 0..=(side - b)).prop_map(move |(x, y)| {
                let g2 = g.clone();
                let r =
                    BucketRegion::new(&g2, [x, y].into(), [x + a - 1, y + b - 1].into()).unwrap();
                (g2, r)
            })
        })
    }

    proptest! {
        #[test]
        fn iter_count_matches_volume((_g, r) in region_in(6)) {
            prop_assert_eq!(r.iter().count() as u64, r.num_buckets());
        }

        #[test]
        fn all_iterated_buckets_are_contained((_g, r) in region_in(6)) {
            for b in r.iter() {
                prop_assert!(r.contains(&b));
            }
        }

        #[test]
        fn intersection_is_commutative_and_contained(
            (g, a) in region_in(6),
            (y0, y1, x0, x1) in (0u32..6, 0u32..6, 0u32..6, 0u32..6)
        ) {
            let b = BucketRegion::new(
                &g,
                [y0.min(y1), x0.min(x1)].into(),
                [y0.max(y1), x0.max(x1)].into(),
            ).unwrap();
            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            prop_assert_eq!(&ab, &ba);
            if let Some(i) = ab {
                for bucket in i.iter() {
                    prop_assert!(a.contains(&bucket) && b.contains(&bucket));
                }
            }
        }
    }
}
