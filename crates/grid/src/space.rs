use crate::{BucketCoord, GridError, Result};

/// The bucket grid: a `d_1 × d_2 × … × d_k` Cartesian product of partition
/// indices.
///
/// `GridSpace` knows nothing about attribute values — it is the purely
/// combinatorial object the declustering methods and the optimality theory
/// operate on. Value-level concerns (domains, partition boundaries, records)
/// live in [`crate::GridSchema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridSpace {
    /// Number of partitions per dimension (`d_i` in the paper).
    dims: Vec<u32>,
    /// Row-major strides: `strides[i]` = product of `dims[i+1..]`.
    strides: Vec<u64>,
    /// Total number of buckets.
    total: u64,
}

impl GridSpace {
    /// Creates a grid with the given number of partitions per dimension.
    ///
    /// # Errors
    /// * [`GridError::EmptyGrid`] if `dims` is empty.
    /// * [`GridError::ZeroPartitions`] if any dimension has 0 partitions.
    /// * [`GridError::TooManyBuckets`] if the bucket count overflows `u64`.
    pub fn new(dims: impl Into<Vec<u32>>) -> Result<Self> {
        let dims = dims.into();
        if dims.is_empty() {
            return Err(GridError::EmptyGrid);
        }
        for (i, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(GridError::ZeroPartitions { dim: i });
            }
        }
        let mut strides = vec![1u64; dims.len()];
        let mut total: u64 = 1;
        for i in (0..dims.len()).rev() {
            strides[i] = total;
            total = total
                .checked_mul(u64::from(dims[i]))
                .ok_or(GridError::TooManyBuckets)?;
        }
        Ok(GridSpace {
            dims,
            strides,
            total,
        })
    }

    /// Convenience constructor for the 2-attribute grids used throughout the
    /// paper's experiments.
    pub fn new_2d(d0: u32, d1: u32) -> Result<Self> {
        GridSpace::new(vec![d0, d1])
    }

    /// Convenience constructor for a cube grid: `k` dimensions of `d`
    /// partitions each.
    pub fn new_cube(k: usize, d: u32) -> Result<Self> {
        GridSpace::new(vec![d; k])
    }

    /// Number of dimensions (`k`, the number of attributes).
    #[inline]
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Partitions per dimension (`d_i`).
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of partitions on dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= self.k()`.
    #[inline]
    pub fn dim(&self, dim: usize) -> u32 {
        self.dims[dim]
    }

    /// Total number of buckets in the grid.
    #[inline]
    pub fn num_buckets(&self) -> u64 {
        self.total
    }

    /// Whether `coord` lies inside the grid (correct arity and all
    /// coordinates in range).
    pub fn contains(&self, coord: &BucketCoord) -> bool {
        coord.dims() == self.dims.len()
            && coord
                .as_slice()
                .iter()
                .zip(&self.dims)
                .all(|(&c, &d)| c < d)
    }

    /// Validates that `coord` lies inside the grid.
    pub fn check(&self, coord: &BucketCoord) -> Result<()> {
        if coord.dims() != self.dims.len() {
            return Err(GridError::DimensionMismatch {
                expected: self.dims.len(),
                got: coord.dims(),
            });
        }
        for (i, (&c, &d)) in coord.as_slice().iter().zip(&self.dims).enumerate() {
            if c >= d {
                return Err(GridError::CoordOutOfBounds {
                    dim: i,
                    coord: c,
                    partitions: d,
                });
            }
        }
        Ok(())
    }

    /// Row-major linearization of a bucket coordinate.
    ///
    /// The last dimension varies fastest. Used by the round-robin baseline,
    /// the grid directory, and materialized allocation maps.
    ///
    /// # Errors
    /// Returns an error if the coordinate is out of bounds.
    pub fn linearize(&self, coord: &BucketCoord) -> Result<u64> {
        self.check(coord)?;
        Ok(self.linearize_unchecked(coord.as_slice()))
    }

    /// Row-major linearization without bounds checks. The caller must
    /// guarantee `coords` came from this grid.
    #[inline]
    pub fn linearize_unchecked(&self, coords: &[u32]) -> u64 {
        coords
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| u64::from(c) * s)
            .sum()
    }

    /// Inverse of [`GridSpace::linearize`].
    ///
    /// # Errors
    /// Returns [`GridError::LinearOutOfBounds`] if `id >= num_buckets()`.
    pub fn delinearize(&self, id: u64) -> Result<BucketCoord> {
        if id >= self.total {
            return Err(GridError::LinearOutOfBounds {
                id,
                total: self.total,
            });
        }
        let mut rest = id;
        let mut coord = BucketCoord::origin(self.dims.len());
        for (i, &s) in self.strides.iter().enumerate() {
            coord.as_mut_slice()[i] = (rest / s) as u32;
            rest %= s;
        }
        Ok(coord)
    }

    /// Iterates over every bucket in the grid in row-major order.
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter {
            space: self,
            next: Some(BucketCoord::origin(self.dims.len())),
            remaining: self.total,
        }
    }
}

/// Row-major iterator over all buckets of a [`GridSpace`].
#[derive(Clone, Debug)]
pub struct SpaceIter<'a> {
    space: &'a GridSpace,
    next: Option<BucketCoord>,
    remaining: u64,
}

impl Iterator for SpaceIter<'_> {
    type Item = BucketCoord;

    fn next(&mut self) -> Option<BucketCoord> {
        let current = self.next.take()?;
        self.remaining -= 1;
        // Advance: increment the last dimension, carrying leftward.
        let mut succ = current.clone();
        let dims = self.space.dims();
        let coords = succ.as_mut_slice();
        for i in (0..coords.len()).rev() {
            coords[i] += 1;
            if coords[i] < dims[i] {
                self.next = Some(succ);
                return Some(current);
            }
            coords[i] = 0;
        }
        // Wrapped all the way: iteration is complete.
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for SpaceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_dims() {
        assert_eq!(
            GridSpace::new(Vec::new()).unwrap_err(),
            GridError::EmptyGrid
        );
        assert_eq!(
            GridSpace::new(vec![4, 0, 2]).unwrap_err(),
            GridError::ZeroPartitions { dim: 1 }
        );
    }

    #[test]
    fn rejects_overflowing_grid() {
        let dims = vec![u32::MAX; 3];
        assert_eq!(GridSpace::new(dims).unwrap_err(), GridError::TooManyBuckets);
    }

    #[test]
    fn bucket_count_is_product_of_dims() {
        let g = GridSpace::new(vec![3, 4, 5]).unwrap();
        assert_eq!(g.num_buckets(), 60);
        assert_eq!(g.k(), 3);
        assert_eq!(g.dim(1), 4);
    }

    #[test]
    fn single_bucket_grid_is_legal() {
        let g = GridSpace::new(vec![1]).unwrap();
        assert_eq!(g.num_buckets(), 1);
        assert_eq!(g.iter().count(), 1);
    }

    #[test]
    fn linearize_is_row_major() {
        let g = GridSpace::new_2d(3, 4).unwrap();
        // <r, c> -> r*4 + c
        assert_eq!(g.linearize(&BucketCoord::from([0, 0])).unwrap(), 0);
        assert_eq!(g.linearize(&BucketCoord::from([0, 3])).unwrap(), 3);
        assert_eq!(g.linearize(&BucketCoord::from([1, 0])).unwrap(), 4);
        assert_eq!(g.linearize(&BucketCoord::from([2, 3])).unwrap(), 11);
    }

    #[test]
    fn linearize_checks_bounds() {
        let g = GridSpace::new_2d(3, 4).unwrap();
        assert_eq!(
            g.linearize(&BucketCoord::from([3, 0])).unwrap_err(),
            GridError::CoordOutOfBounds {
                dim: 0,
                coord: 3,
                partitions: 3
            }
        );
        assert_eq!(
            g.linearize(&BucketCoord::from([0])).unwrap_err(),
            GridError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn delinearize_inverts_linearize() {
        let g = GridSpace::new(vec![2, 3, 4]).unwrap();
        for id in 0..g.num_buckets() {
            let c = g.delinearize(id).unwrap();
            assert_eq!(g.linearize(&c).unwrap(), id);
        }
        assert_eq!(
            g.delinearize(24).unwrap_err(),
            GridError::LinearOutOfBounds { id: 24, total: 24 }
        );
    }

    #[test]
    fn iter_visits_every_bucket_once_in_order() {
        let g = GridSpace::new(vec![2, 3]).unwrap();
        let all: Vec<BucketCoord> = g.iter().collect();
        assert_eq!(all.len(), 6);
        let expected: Vec<BucketCoord> = (0..6).map(|i| g.delinearize(i).unwrap()).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn iter_size_hint_is_exact() {
        let g = GridSpace::new(vec![4, 4]).unwrap();
        let mut it = g.iter();
        assert_eq!(it.len(), 16);
        it.next();
        assert_eq!(it.len(), 15);
    }

    #[test]
    fn contains_matches_check() {
        let g = GridSpace::new_2d(2, 2).unwrap();
        assert!(g.contains(&BucketCoord::from([1, 1])));
        assert!(!g.contains(&BucketCoord::from([2, 0])));
        assert!(!g.contains(&BucketCoord::from([0])));
    }

    #[test]
    fn cube_constructor() {
        let g = GridSpace::new_cube(3, 16).unwrap();
        assert_eq!(g.dims(), &[16, 16, 16]);
        assert_eq!(g.num_buckets(), 4096);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_grid() -> impl Strategy<Value = GridSpace> {
        proptest::collection::vec(1u32..6, 1..4).prop_map(|dims| GridSpace::new(dims).unwrap())
    }

    proptest! {
        #[test]
        fn linearize_roundtrips(g in small_grid()) {
            for bucket in g.iter() {
                let id = g.linearize(&bucket).unwrap();
                prop_assert_eq!(g.delinearize(id).unwrap(), bucket);
            }
        }

        #[test]
        fn iteration_count_equals_num_buckets(g in small_grid()) {
            prop_assert_eq!(g.iter().count() as u64, g.num_buckets());
        }

        #[test]
        fn linear_ids_are_dense_and_unique(g in small_grid()) {
            let mut seen = vec![false; g.num_buckets() as usize];
            for bucket in g.iter() {
                let id = g.linearize(&bucket).unwrap() as usize;
                prop_assert!(!seen[id]);
                seen[id] = true;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
