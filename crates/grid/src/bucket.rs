use smallvec::SmallVec;
use std::fmt;

/// Number of dimensions a [`BucketCoord`] stores inline before spilling to
/// the heap. The paper's experiments use 2-3 attributes; four covers every
/// configuration in the study without allocating.
pub const COORD_INLINE_DIMS: usize = 4;

/// Coordinates of a bucket in the grid: one partition index per attribute.
///
/// Bucket `<i_1, i_2, …, i_k>` in the paper's notation. Coordinates are
/// zero-based. This is the unit every declustering method maps to a disk.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BucketCoord(SmallVec<[u32; COORD_INLINE_DIMS]>);

impl BucketCoord {
    /// Creates a coordinate from its per-dimension indices.
    pub fn new(coords: impl Into<SmallVec<[u32; COORD_INLINE_DIMS]>>) -> Self {
        BucketCoord(coords.into())
    }

    /// Creates the origin coordinate `<0, …, 0>` with `k` dimensions.
    pub fn origin(k: usize) -> Self {
        BucketCoord(SmallVec::from_elem(0, k))
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Mutable access to the coordinates (used by grid iterators).
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.0
    }

    /// The coordinate on dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= self.dims()`.
    #[inline]
    pub fn coord(&self, dim: usize) -> u32 {
        self.0[dim]
    }

    /// Sum of the coordinates as a `u64` (the quantity DM reduces mod `M`).
    #[inline]
    pub fn coord_sum(&self) -> u64 {
        self.0.iter().map(|&c| u64::from(c)).sum()
    }
}

impl fmt::Debug for BucketCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

impl fmt::Display for BucketCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<u32>> for BucketCoord {
    fn from(v: Vec<u32>) -> Self {
        BucketCoord(SmallVec::from_vec(v))
    }
}

impl From<&[u32]> for BucketCoord {
    fn from(v: &[u32]) -> Self {
        BucketCoord(SmallVec::from_slice(v))
    }
}

impl<const N: usize> From<[u32; N]> for BucketCoord {
    fn from(v: [u32; N]) -> Self {
        BucketCoord(SmallVec::from_slice(&v))
    }
}

impl std::ops::Index<usize> for BucketCoord {
    type Output = u32;
    #[inline]
    fn index(&self, i: usize) -> &u32 {
        &self.0[i]
    }
}

/// Identifier of a disk in the parallel I/O subsystem.
///
/// Disks are numbered `0..M`. The newtype prevents mixing disk numbers with
/// bucket coordinates or linear bucket ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct DiskId(pub u32);

impl DiskId {
    /// The disk number as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

impl From<u32> for DiskId {
    fn from(v: u32) -> Self {
        DiskId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_all_zero() {
        let o = BucketCoord::origin(3);
        assert_eq!(o.dims(), 3);
        assert_eq!(o.as_slice(), &[0, 0, 0]);
        assert_eq!(o.coord_sum(), 0);
    }

    #[test]
    fn coord_sum_adds_all_dimensions() {
        let b = BucketCoord::from([1, 2, 3, 4, 5]);
        assert_eq!(b.coord_sum(), 15);
        assert_eq!(b.dims(), 5);
    }

    #[test]
    fn coord_sum_does_not_overflow_u32() {
        let b = BucketCoord::from([u32::MAX, u32::MAX]);
        assert_eq!(b.coord_sum(), 2 * u64::from(u32::MAX));
    }

    #[test]
    fn display_matches_paper_notation() {
        let b = BucketCoord::from([3, 1, 4]);
        assert_eq!(format!("{b}"), "<3,1,4>");
        assert_eq!(format!("{b:?}"), "<3,1,4>");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = BucketCoord::from([0, 5]);
        let b = BucketCoord::from([1, 0]);
        assert!(a < b);
    }

    #[test]
    fn indexing_and_coord_agree() {
        let b = BucketCoord::from([7, 8]);
        assert_eq!(b[0], 7);
        assert_eq!(b.coord(1), 8);
    }

    #[test]
    fn disk_id_roundtrip() {
        let d = DiskId::from(5);
        assert_eq!(d.index(), 5);
        assert_eq!(d.to_string(), "disk5");
    }

    #[test]
    fn small_coords_do_not_heap_allocate() {
        // SmallVec keeps up to COORD_INLINE_DIMS inline; spilled() reports
        // whether it moved to the heap.
        let b = BucketCoord::from([1, 2, 3, 4]);
        assert!(!b.0.spilled());
        let big = BucketCoord::from([1, 2, 3, 4, 5]);
        assert!(big.0.spilled());
    }
}
