use crate::record::Value;

/// The kind of values an attribute holds, with its (closed) domain bounds
/// where applicable.
///
/// The paper treats attribute domains abstractly as ordered sets that a
/// partitioning splits into `d_i` intervals; these are the concrete carriers
/// a real relation would use.
#[derive(Clone, Debug, PartialEq)]
pub enum DomainKind {
    /// 64-bit integers in `[min, max]` (inclusive).
    Int {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
    },
    /// 64-bit floats in `[min, max)` (half-open; `max` itself maps to the
    /// last partition for convenience).
    Float {
        /// Smallest admissible value.
        min: f64,
        /// Exclusive upper bound.
        max: f64,
    },
    /// UTF-8 strings ordered lexicographically; unbounded domain.
    Str,
}

impl DomainKind {
    /// Whether `v` is a member of this domain (type and range).
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (DomainKind::Int { min, max }, Value::Int(x)) => min <= x && x <= max,
            (DomainKind::Float { min, max }, Value::Float(x)) => {
                x.is_finite() && *min <= *x && *x <= *max
            }
            (DomainKind::Str, Value::Str(_)) => true,
            _ => false,
        }
    }

    /// Whether `v` has the right type for this domain, ignoring range.
    pub fn type_matches(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (DomainKind::Int { .. }, Value::Int(_))
                | (DomainKind::Float { .. }, Value::Float(_))
                | (DomainKind::Str, Value::Str(_))
        )
    }
}

/// A named attribute of the relation together with its value domain.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeDomain {
    name: String,
    kind: DomainKind,
}

impl AttributeDomain {
    /// Creates an attribute with the given name and domain.
    pub fn new(name: impl Into<String>, kind: DomainKind) -> Self {
        AttributeDomain {
            name: name.into(),
            kind,
        }
    }

    /// Integer attribute over `[min, max]`.
    pub fn int(name: impl Into<String>, min: i64, max: i64) -> Self {
        AttributeDomain::new(name, DomainKind::Int { min, max })
    }

    /// Float attribute over `[min, max)`.
    pub fn float(name: impl Into<String>, min: f64, max: f64) -> Self {
        AttributeDomain::new(name, DomainKind::Float { min, max })
    }

    /// String attribute (lexicographic order).
    pub fn str(name: impl Into<String>) -> Self {
        AttributeDomain::new(name, DomainKind::Str)
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain kind.
    pub fn kind(&self) -> &DomainKind {
        &self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_domain_membership() {
        let d = DomainKind::Int { min: 0, max: 9 };
        assert!(d.contains(&Value::Int(0)));
        assert!(d.contains(&Value::Int(9)));
        assert!(!d.contains(&Value::Int(10)));
        assert!(!d.contains(&Value::Int(-1)));
        assert!(!d.contains(&Value::Float(3.0)));
    }

    #[test]
    fn float_domain_membership() {
        let d = DomainKind::Float { min: 0.0, max: 1.0 };
        assert!(d.contains(&Value::Float(0.0)));
        assert!(d.contains(&Value::Float(1.0)));
        assert!(!d.contains(&Value::Float(1.5)));
        assert!(!d.contains(&Value::Float(f64::NAN)));
        assert!(!d.contains(&Value::Int(0)));
    }

    #[test]
    fn str_domain_accepts_any_string() {
        let d = DomainKind::Str;
        assert!(d.contains(&Value::Str("zebra".into())));
        assert!(!d.contains(&Value::Int(1)));
    }

    #[test]
    fn type_matches_ignores_range() {
        let d = DomainKind::Int { min: 0, max: 9 };
        assert!(d.type_matches(&Value::Int(100)));
        assert!(!d.type_matches(&Value::Str("x".into())));
    }

    #[test]
    fn attribute_constructors() {
        let a = AttributeDomain::int("age", 0, 120);
        assert_eq!(a.name(), "age");
        assert_eq!(a.kind(), &DomainKind::Int { min: 0, max: 120 });
        let s = AttributeDomain::str("name");
        assert_eq!(s.kind(), &DomainKind::Str);
        let f = AttributeDomain::float("salary", 0.0, 1e6);
        assert!(matches!(f.kind(), DomainKind::Float { .. }));
    }
}
