//! Grid partitioning of multi-attribute data spaces.
//!
//! This crate is the data-space substrate for grid-based declustering, as
//! used by the ICDE'94 study *Performance Evaluation of Grid Based
//! Multi-Attribute Record Declustering Methods* (Himatsingka & Srivastava).
//!
//! A relation with `k` attributes is modelled as a **Cartesian product
//! file**: attribute `i` is split into `d_i` intervals by a
//! [`Partitioning`], and the data space becomes a `d_1 × … × d_k` grid of
//! **buckets** ([`GridSpace`]). Records are routed to the bucket whose cell
//! contains them ([`GridSchema::bucket_of`]); queries are clipped to the
//! grid and become hyper-rectangular **bucket regions** ([`BucketRegion`]).
//!
//! Everything downstream (the declustering methods, the simulator, and the
//! optimality theory) works in terms of bucket coordinates produced here.
//!
//! # Example
//!
//! ```
//! use decluster_grid::{GridSpace, BucketCoord, RangeQuery};
//!
//! // A 2-attribute space partitioned 8 × 8.
//! let space = GridSpace::new_2d(8, 8).unwrap();
//! assert_eq!(space.num_buckets(), 64);
//!
//! // A range query covering bucket columns 1..=3 and rows 2..=5.
//! let q = RangeQuery::new(vec![1, 2], vec![3, 5]).unwrap();
//! let region = q.region(&space).unwrap();
//! assert_eq!(region.num_buckets(), 3 * 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bucket;
mod directory;
mod domain;
mod error;
mod gridfile;
mod partition;
mod query;
mod record;
mod region;
mod schema;
mod space;

pub use bucket::{BucketCoord, DiskId, COORD_INLINE_DIMS};
pub use directory::{BucketPage, GridDirectory, IoPlan};
pub use domain::{AttributeDomain, DomainKind};
pub use error::GridError;
pub use gridfile::{GridBucketId, GridFile, GridScan};
pub use partition::Partitioning;
pub use query::{PartialMatchQuery, PointQuery, Query, RangeQuery, ValueRangeQuery};
pub use record::{Record, Value};
pub use region::{BucketRegion, RegionIter};
pub use schema::GridSchema;
pub use space::{GridSpace, SpaceIter};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GridError>;
