use crate::{BucketCoord, BucketRegion, DiskId, GridSpace, Result};

/// Physical placement of one bucket: which disk holds it and at which page
/// position on that disk.
///
/// Page numbers are assigned in row-major bucket order per disk, which is
/// how a bulk-loaded Cartesian product file would be laid out; the
/// simulator uses inter-page distance as a seek-distance proxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketPage {
    /// Disk holding the bucket.
    pub disk: DiskId,
    /// Zero-based page position on that disk.
    pub page: u64,
}

/// A materialized bucket→(disk, page) directory for a grid, in the style of
/// the grid file's directory.
///
/// The directory is built once from an assignment function (a declustering
/// method) and thereafter answers placement lookups in O(1) and
/// disk-content queries in O(buckets-on-disk).
#[derive(Clone, Debug)]
pub struct GridDirectory {
    space: GridSpace,
    /// Placement per linear bucket id.
    pages: Vec<BucketPage>,
    /// Linear bucket ids per disk, in page order.
    per_disk: Vec<Vec<u64>>,
}

impl GridDirectory {
    /// Builds a directory by evaluating `assign` on every bucket of
    /// `space`, laying buckets out on their disks in row-major order.
    ///
    /// `num_disks` fixes the directory width; any assignment ≥ `num_disks`
    /// is a bug in the method and panics (methods guarantee
    /// `disk < num_disks` by construction and tests).
    ///
    /// # Panics
    /// Panics if `assign` returns a disk id outside `0..num_disks`, or if
    /// the grid has more buckets than fit in memory (`usize`).
    pub fn build(
        space: GridSpace,
        num_disks: u32,
        mut assign: impl FnMut(&BucketCoord) -> DiskId,
    ) -> Self {
        let total = usize::try_from(space.num_buckets())
            .expect("grid too large to materialize a directory");
        let mut pages = Vec::with_capacity(total);
        let mut per_disk: Vec<Vec<u64>> = vec![Vec::new(); num_disks as usize];
        for bucket in space.iter() {
            let disk = assign(&bucket);
            assert!(
                disk.0 < num_disks,
                "declustering method assigned {disk} but only {num_disks} disks exist"
            );
            let page = per_disk[disk.index()].len() as u64;
            let id = space.linearize_unchecked(bucket.as_slice());
            per_disk[disk.index()].push(id);
            pages.push(BucketPage { disk, page });
        }
        GridDirectory {
            space,
            pages,
            per_disk,
        }
    }

    /// Builds a directory directly from a disk-assignment table in
    /// linear (row-major) bucket order — the inverse of
    /// [`GridDirectory::disk_table`].
    ///
    /// This is the warm-start constructor: a persisted allocation image
    /// already holds the table, so rebuilding the directory needs no
    /// method evaluation and no per-bucket coordinate materialization.
    /// Two flat passes (count per disk, then scatter with pre-sized
    /// buffers) make it an order of magnitude cheaper than
    /// [`GridDirectory::build`] with a table-lookup closure, and it
    /// produces a bit-identical directory: page numbers are assigned in
    /// ascending linear order per disk either way.
    ///
    /// # Errors
    /// [`crate::GridError::DimensionMismatch`] if the table length does
    /// not match the grid's bucket count, or if any entry is ≥
    /// `num_disks`.
    pub fn from_table(space: GridSpace, num_disks: u32, table: &[u32]) -> Result<Self> {
        let total = usize::try_from(space.num_buckets())
            .expect("grid too large to materialize a directory");
        if table.len() != total {
            return Err(crate::GridError::DimensionMismatch {
                expected: total,
                got: table.len(),
            });
        }
        let mut loads = vec![0u64; num_disks as usize];
        for &d in table {
            if d >= num_disks {
                return Err(crate::GridError::DimensionMismatch {
                    expected: num_disks as usize,
                    got: d as usize,
                });
            }
            loads[d as usize] += 1;
        }
        let mut per_disk: Vec<Vec<u64>> = loads
            .iter()
            .map(|&n| Vec::with_capacity(n as usize))
            .collect();
        let mut pages = Vec::with_capacity(total);
        for (id, &d) in table.iter().enumerate() {
            let bucket_list = &mut per_disk[d as usize];
            pages.push(BucketPage {
                disk: DiskId(d),
                page: bucket_list.len() as u64,
            });
            bucket_list.push(id as u64);
        }
        Ok(GridDirectory {
            space,
            pages,
            per_disk,
        })
    }

    /// The grid this directory covers.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }

    /// Number of disks.
    pub fn num_disks(&self) -> u32 {
        self.per_disk.len() as u32
    }

    /// Placement of a bucket.
    ///
    /// # Errors
    /// Bounds errors if the bucket lies outside the grid.
    pub fn lookup(&self, bucket: &BucketCoord) -> Result<BucketPage> {
        let id = self.space.linearize(bucket)?;
        Ok(self.pages[id as usize])
    }

    /// Placement by linear bucket id.
    ///
    /// # Errors
    /// [`crate::GridError::LinearOutOfBounds`] for an invalid id.
    pub fn lookup_linear(&self, id: u64) -> Result<BucketPage> {
        // Reuse delinearize purely for its bounds check.
        self.space.delinearize(id)?;
        Ok(self.pages[id as usize])
    }

    /// Linear bucket ids stored on `disk`, in page order.
    ///
    /// Returns an empty slice for a disk id out of range (such a disk holds
    /// nothing by definition).
    pub fn buckets_on_disk(&self, disk: DiskId) -> &[u64] {
        self.per_disk
            .get(disk.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of buckets per disk (the static load vector).
    pub fn load_vector(&self) -> Vec<u64> {
        self.per_disk.iter().map(|v| v.len() as u64).collect()
    }

    /// Fills `plan` with the pages `region` touches, grouped per disk in a
    /// single flat arena. Steady-state this allocates nothing: the arena's
    /// buffers are reused across calls.
    ///
    /// Two passes over the region: one to size the per-disk groups, one to
    /// scatter page numbers into place. Because region iteration visits
    /// buckets in ascending linear order and [`GridDirectory::build`]
    /// assigns pages in that same order, each disk's group comes out sorted
    /// without a sort pass.
    pub fn io_plan_into(&self, region: &BucketRegion, plan: &mut IoPlan) {
        let m = self.per_disk.len();
        plan.offsets.clear();
        plan.offsets.resize(m + 1, 0);
        plan.cursors.clear();
        plan.cursors.resize(m, 0);
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            plan.cursors[self.pages[id as usize].disk.index()] += 1;
        }
        let mut total = 0usize;
        for d in 0..m {
            plan.offsets[d] = total;
            total += plan.cursors[d];
            plan.cursors[d] = plan.offsets[d];
        }
        plan.offsets[m] = total;
        plan.pages.clear();
        plan.pages.resize(total, 0);
        for bucket in region.iter() {
            let id = self.space.linearize_unchecked(bucket.as_slice());
            let bp = self.pages[id as usize];
            let cursor = &mut plan.cursors[bp.disk.index()];
            plan.pages[*cursor] = bp.page;
            *cursor += 1;
        }
        debug_assert!((0..m).all(|d| plan.disk_pages(d).windows(2).all(|w| w[0] < w[1])));
    }

    /// Disk assignment per bucket, in linear (row-major) bucket order.
    ///
    /// This is the raw declustering table behind the directory; consumers
    /// that only need per-disk *counts* (not page identities) can feed it
    /// to a prefix-sum kernel instead of walking regions.
    pub fn disk_table(&self) -> Vec<u32> {
        self.pages.iter().map(|bp| bp.disk.0).collect()
    }
}

/// A flat I/O plan: every page a range query touches, in one contiguous
/// buffer sliced per disk.
///
/// Replaces the allocating `Vec<Vec<u64>>` plan: disk `d`'s (sorted) pages
/// are `pages[offsets[d]..offsets[d + 1]]`. Reusing one `IoPlan` across
/// queries makes plan construction allocation-free once the buffers have
/// grown to the working-set size.
#[derive(Clone, Debug, Default)]
pub struct IoPlan {
    /// Page numbers grouped by disk, each group sorted ascending.
    pages: Vec<u64>,
    /// `num_disks + 1` group boundaries into `pages`.
    offsets: Vec<usize>,
    /// Per-disk scatter cursors, reused by [`GridDirectory::io_plan_into`].
    cursors: Vec<usize>,
}

impl IoPlan {
    /// An empty plan (fill it with [`GridDirectory::io_plan_into`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of disk groups in the last fill (0 before any fill).
    pub fn num_disks(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The sorted pages disk `d` must fetch (empty for `d` out of range).
    pub fn disk_pages(&self, d: usize) -> &[u64] {
        match (self.offsets.get(d), self.offsets.get(d + 1)) {
            (Some(&lo), Some(&hi)) => &self.pages[lo..hi],
            _ => &[],
        }
    }

    /// Total pages across all disks.
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterator over per-disk page groups, disk 0 first.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.num_disks()).map(move |d| self.disk_pages(d))
    }

    /// Resets the plan to `num_disks` empty groups, keeping the buffers'
    /// capacity so a warmed plan stays allocation-free.
    pub fn reset(&mut self, num_disks: usize) {
        self.pages.clear();
        self.offsets.clear();
        self.offsets.resize(num_disks + 1, 0);
        self.cursors.clear();
    }

    /// Fills `self` with the order-preserving deduplicated union of `a` and
    /// `b`: per disk, the sorted set union of both page groups.
    ///
    /// Both inputs must cover the same number of disks (a plan freshly
    /// [`reset`](IoPlan::reset) to that width counts). Relies on the
    /// invariant that every group is strictly ascending — which
    /// [`GridDirectory::io_plan_into`] guarantees and this union preserves —
    /// so a two-pointer merge is an exact multiset dedup. Allocation-free
    /// once `self` has grown to the working-set size.
    ///
    /// # Panics
    /// Panics if `a` and `b` have different disk counts.
    pub fn merge_union(&mut self, a: &IoPlan, b: &IoPlan) {
        let m = a.num_disks();
        assert_eq!(
            m,
            b.num_disks(),
            "cannot merge plans over different disk counts"
        );
        self.pages.clear();
        self.offsets.clear();
        self.offsets.reserve(m + 1);
        self.pages.reserve(a.total_pages() + b.total_pages());
        self.cursors.clear();
        self.offsets.push(0);
        for d in 0..m {
            let (xs, ys) = (a.disk_pages(d), b.disk_pages(d));
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                let (x, y) = (xs[i], ys[j]);
                self.pages.push(x.min(y));
                i += usize::from(x <= y);
                j += usize::from(y <= x);
            }
            self.pages.extend_from_slice(&xs[i..]);
            self.pages.extend_from_slice(&ys[j..]);
            self.offsets.push(self.pages.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_robin_dir() -> GridDirectory {
        let space = GridSpace::new_2d(4, 4).unwrap();
        let s2 = space.clone();
        GridDirectory::build(space, 4, move |b| {
            DiskId((s2.linearize_unchecked(b.as_slice()) % 4) as u32)
        })
    }

    #[test]
    fn build_assigns_sequential_pages_per_disk() {
        let dir = round_robin_dir();
        // Bucket <0,0> is linear 0 -> disk 0 page 0; <1,0> is linear 4 ->
        // disk 0 page 1.
        assert_eq!(
            dir.lookup(&BucketCoord::from([0, 0])).unwrap(),
            BucketPage {
                disk: DiskId(0),
                page: 0
            }
        );
        assert_eq!(
            dir.lookup(&BucketCoord::from([1, 0])).unwrap(),
            BucketPage {
                disk: DiskId(0),
                page: 1
            }
        );
        assert_eq!(
            dir.lookup(&BucketCoord::from([0, 1])).unwrap(),
            BucketPage {
                disk: DiskId(1),
                page: 0
            }
        );
    }

    #[test]
    fn load_vector_is_balanced_for_round_robin() {
        let dir = round_robin_dir();
        assert_eq!(dir.load_vector(), vec![4, 4, 4, 4]);
        assert_eq!(dir.num_disks(), 4);
    }

    #[test]
    fn buckets_on_disk_in_page_order() {
        let dir = round_robin_dir();
        assert_eq!(dir.buckets_on_disk(DiskId(1)), &[1, 5, 9, 13]);
        assert!(dir.buckets_on_disk(DiskId(9)).is_empty());
    }

    #[test]
    fn lookup_errors_out_of_bounds() {
        let dir = round_robin_dir();
        assert!(dir.lookup(&BucketCoord::from([4, 0])).is_err());
        assert!(dir.lookup_linear(16).is_err());
        assert!(dir.lookup_linear(15).is_ok());
    }

    #[test]
    fn flat_io_plan_covers_region_exactly() {
        let dir = round_robin_dir();
        let region = BucketRegion::new(
            dir.space(),
            BucketCoord::from([0, 0]),
            BucketCoord::from([1, 1]),
        )
        .unwrap();
        let mut plan = IoPlan::new();
        dir.io_plan_into(&region, &mut plan);
        assert_eq!(plan.num_disks(), 4);
        assert_eq!(plan.total_pages() as u64, region.num_buckets());
        // Same groups as the nested plan: disks 0 and 1 fetch pages 0 and 1.
        assert_eq!(plan.disk_pages(0), &[0, 1]);
        assert_eq!(plan.disk_pages(1), &[0, 1]);
        assert!(plan.disk_pages(2).is_empty() && plan.disk_pages(3).is_empty());
        assert!(plan.disk_pages(99).is_empty());
        assert_eq!(plan.iter().count(), 4);
    }

    #[test]
    fn flat_io_plan_matches_fresh_plan_when_reused() {
        let dir = round_robin_dir();
        let mut plan = IoPlan::new();
        // Reuse one arena across regions of different sizes and positions;
        // each fill must match a freshly-built plan exactly.
        for (lo, hi) in [
            ([0u32, 0u32], [3u32, 3u32]),
            ([1, 2], [2, 3]),
            ([2, 2], [2, 2]),
        ] {
            let region =
                BucketRegion::new(dir.space(), BucketCoord::from(lo), BucketCoord::from(hi))
                    .unwrap();
            let mut fresh = IoPlan::new();
            dir.io_plan_into(&region, &mut fresh);
            dir.io_plan_into(&region, &mut plan);
            assert_eq!(plan.num_disks(), fresh.num_disks());
            for d in 0..fresh.num_disks() {
                assert_eq!(plan.disk_pages(d), fresh.disk_pages(d));
            }
        }
    }

    #[test]
    fn reset_yields_empty_groups() {
        let dir = round_robin_dir();
        let region = BucketRegion::new(
            dir.space(),
            BucketCoord::from([0, 0]),
            BucketCoord::from([3, 3]),
        )
        .unwrap();
        let mut plan = IoPlan::new();
        dir.io_plan_into(&region, &mut plan);
        assert!(plan.total_pages() > 0);
        plan.reset(4);
        assert_eq!(plan.num_disks(), 4);
        assert_eq!(plan.total_pages(), 0);
        assert!((0..4).all(|d| plan.disk_pages(d).is_empty()));
    }

    #[test]
    fn merge_union_deduplicates_overlapping_plans() {
        let dir = round_robin_dir();
        let a_region = BucketRegion::new(
            dir.space(),
            BucketCoord::from([0, 0]),
            BucketCoord::from([2, 2]),
        )
        .unwrap();
        let b_region = BucketRegion::new(
            dir.space(),
            BucketCoord::from([1, 1]),
            BucketCoord::from([3, 3]),
        )
        .unwrap();
        let (mut a, mut b, mut merged) = (IoPlan::new(), IoPlan::new(), IoPlan::new());
        dir.io_plan_into(&a_region, &mut a);
        dir.io_plan_into(&b_region, &mut b);
        merged.merge_union(&a, &b);
        assert_eq!(merged.num_disks(), 4);
        for d in 0..4 {
            let mut expect: Vec<u64> = a.disk_pages(d).to_vec();
            expect.extend_from_slice(b.disk_pages(d));
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(merged.disk_pages(d), expect.as_slice(), "disk {d}");
        }
        // The overlap ([1,1]..[2,2], 4 buckets) is read once, not twice.
        assert_eq!(merged.total_pages(), a.total_pages() + b.total_pages() - 4);
        // Union against an empty (reset) plan is the identity.
        let mut empty = IoPlan::new();
        empty.reset(4);
        let mut same = IoPlan::new();
        same.merge_union(&a, &empty);
        for d in 0..4 {
            assert_eq!(same.disk_pages(d), a.disk_pages(d));
        }
    }

    #[test]
    #[should_panic(expected = "different disk counts")]
    fn merge_union_rejects_width_mismatch() {
        let mut a = IoPlan::new();
        a.reset(3);
        let mut b = IoPlan::new();
        b.reset(4);
        IoPlan::new().merge_union(&a, &b);
    }

    #[test]
    fn disk_table_matches_lookups() {
        let dir = round_robin_dir();
        let table = dir.disk_table();
        assert_eq!(table.len(), 16);
        for id in 0..16u64 {
            assert_eq!(table[id as usize], dir.lookup_linear(id).unwrap().disk.0);
        }
    }

    #[test]
    fn from_table_matches_build_bit_for_bit() {
        let built = round_robin_dir();
        let table = built.disk_table();
        let restored = GridDirectory::from_table(built.space().clone(), 4, &table).unwrap();
        assert_eq!(restored.space(), built.space());
        assert_eq!(restored.num_disks(), built.num_disks());
        assert_eq!(restored.disk_table(), table);
        assert_eq!(restored.load_vector(), built.load_vector());
        for id in 0..16u64 {
            assert_eq!(
                restored.lookup_linear(id).unwrap(),
                built.lookup_linear(id).unwrap()
            );
        }
        for d in 0..4 {
            assert_eq!(
                restored.buckets_on_disk(DiskId(d)),
                built.buckets_on_disk(DiskId(d))
            );
        }
    }

    #[test]
    fn from_table_rejects_bad_input() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        // Wrong length.
        assert!(GridDirectory::from_table(space.clone(), 2, &[0, 1, 0]).is_err());
        // Disk id out of range.
        assert!(GridDirectory::from_table(space.clone(), 2, &[0, 1, 0, 7]).is_err());
        // Exact fit succeeds.
        assert!(GridDirectory::from_table(space, 2, &[0, 1, 0, 1]).is_ok());
    }

    #[test]
    #[should_panic(expected = "assigned")]
    fn build_panics_on_out_of_range_disk() {
        let space = GridSpace::new_2d(2, 2).unwrap();
        let _ = GridDirectory::build(space, 2, |_| DiskId(7));
    }

    #[test]
    fn single_disk_directory() {
        let space = GridSpace::new_2d(3, 3).unwrap();
        let dir = GridDirectory::build(space, 1, |_| DiskId(0));
        assert_eq!(dir.load_vector(), vec![9]);
        assert_eq!(dir.buckets_on_disk(DiskId(0)).len(), 9);
    }
}
