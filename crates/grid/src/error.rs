use std::fmt;

/// Errors produced by grid construction, record routing, and query mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A grid must have at least one dimension.
    EmptyGrid,
    /// Every dimension must have at least one partition.
    ZeroPartitions {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// The total number of buckets overflows `u64`.
    TooManyBuckets,
    /// A coordinate vector has the wrong number of dimensions.
    DimensionMismatch {
        /// Dimensions the grid expects.
        expected: usize,
        /// Dimensions that were supplied.
        got: usize,
    },
    /// A coordinate lies outside the grid.
    CoordOutOfBounds {
        /// Offending dimension.
        dim: usize,
        /// Supplied coordinate on that dimension.
        coord: u32,
        /// Number of partitions on that dimension.
        partitions: u32,
    },
    /// A linear bucket id lies outside the grid.
    LinearOutOfBounds {
        /// Supplied linear id.
        id: u64,
        /// Total number of buckets.
        total: u64,
    },
    /// A range query has `lo > hi` on some dimension.
    InvertedRange {
        /// Offending dimension.
        dim: usize,
    },
    /// A query lies entirely outside the data space.
    EmptyQuery,
    /// A record value does not fall in its attribute's domain.
    ValueOutOfDomain {
        /// Attribute index.
        attribute: usize,
    },
    /// A record has the wrong arity for the schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity that was supplied.
        got: usize,
    },
    /// A value of the wrong type was supplied for an attribute.
    TypeMismatch {
        /// Attribute index.
        attribute: usize,
    },
    /// A partitioning's boundaries are not strictly increasing.
    UnsortedBoundaries,
    /// A partitioning does not cover its domain.
    IncompletePartitioning,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyGrid => write!(f, "grid must have at least one dimension"),
            GridError::ZeroPartitions { dim } => {
                write!(f, "dimension {dim} must have at least one partition")
            }
            GridError::TooManyBuckets => write!(f, "total bucket count overflows u64"),
            GridError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} dimensions, got {got}")
            }
            GridError::CoordOutOfBounds {
                dim,
                coord,
                partitions,
            } => write!(
                f,
                "coordinate {coord} out of bounds on dimension {dim} (has {partitions} partitions)"
            ),
            GridError::LinearOutOfBounds { id, total } => {
                write!(
                    f,
                    "linear bucket id {id} out of bounds (grid has {total} buckets)"
                )
            }
            GridError::InvertedRange { dim } => {
                write!(f, "range query has lo > hi on dimension {dim}")
            }
            GridError::EmptyQuery => write!(f, "query does not intersect the data space"),
            GridError::ValueOutOfDomain { attribute } => {
                write!(f, "value out of domain for attribute {attribute}")
            }
            GridError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record arity mismatch: schema has {expected} attributes, record has {got}"
                )
            }
            GridError::TypeMismatch { attribute } => {
                write!(f, "value type mismatch for attribute {attribute}")
            }
            GridError::UnsortedBoundaries => {
                write!(f, "partition boundaries must be strictly increasing")
            }
            GridError::IncompletePartitioning => {
                write!(f, "partitioning does not cover the attribute domain")
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GridError::CoordOutOfBounds {
            dim: 1,
            coord: 9,
            partitions: 8,
        };
        let s = e.to_string();
        assert!(s.contains("dimension 1"));
        assert!(s.contains('9'));
        assert!(s.contains('8'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GridError::EmptyGrid, GridError::EmptyGrid);
        assert_ne!(GridError::EmptyGrid, GridError::TooManyBuckets);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GridError::EmptyQuery);
        assert!(e.to_string().contains("query"));
    }
}
