use crate::record::Value;
use crate::{DomainKind, GridError, Result};

/// An ordered split of one attribute's domain into `d` intervals
/// (partitions), numbered `0..d`.
///
/// A partitioning is stored as its `d − 1` internal *cut points*: partition
/// `j` holds values `v` with `cut[j-1] ≤ v < cut[j]` (with the open ends of
/// the domain at either side). This is the grid-file style partitioning the
/// paper assumes; the study's experiments all use uniform partitionings, but
/// skewed data is served by explicit boundaries.
#[derive(Clone, Debug, PartialEq)]
pub struct Partitioning {
    /// Strictly increasing internal cut points; `cuts.len() + 1` partitions.
    cuts: Vec<Value>,
}

impl Partitioning {
    /// Builds a partitioning from explicit internal cut points.
    ///
    /// `cuts` must be strictly increasing and of a single type. An empty
    /// `cuts` gives a single all-encompassing partition.
    ///
    /// # Errors
    /// [`GridError::UnsortedBoundaries`] if the cut points are not strictly
    /// increasing or mix types.
    pub fn from_cuts(cuts: Vec<Value>) -> Result<Self> {
        for w in cuts.windows(2) {
            match w[0].partial_cmp_same_type(&w[1]) {
                Some(std::cmp::Ordering::Less) => {}
                _ => return Err(GridError::UnsortedBoundaries),
            }
        }
        Ok(Partitioning { cuts })
    }

    /// Uniform partitioning of an integer domain `[min, max]` into `d`
    /// intervals of (near-)equal width.
    ///
    /// # Errors
    /// [`GridError::IncompletePartitioning`] if `d == 0`, `min > max`, or
    /// the domain has fewer than `d` values.
    pub fn uniform_int(min: i64, max: i64, d: u32) -> Result<Self> {
        if d == 0 || min > max {
            return Err(GridError::IncompletePartitioning);
        }
        let width = (max - min + 1) as i128;
        if width < i128::from(d) {
            return Err(GridError::IncompletePartitioning);
        }
        let mut cuts = Vec::with_capacity(d as usize - 1);
        for j in 1..i128::from(d) {
            // Cut after floor(j * width / d) values.
            let cut = i128::from(min) + (j * width) / i128::from(d);
            cuts.push(Value::Int(cut as i64));
        }
        Partitioning::from_cuts(cuts)
    }

    /// Uniform partitioning of a float domain `[min, max)` into `d`
    /// intervals of equal width.
    ///
    /// # Errors
    /// [`GridError::IncompletePartitioning`] if `d == 0` or `min >= max` or
    /// a bound is not finite.
    pub fn uniform_float(min: f64, max: f64, d: u32) -> Result<Self> {
        if d == 0 || min >= max || !min.is_finite() || !max.is_finite() {
            return Err(GridError::IncompletePartitioning);
        }
        let width = (max - min) / f64::from(d);
        let cuts = (1..d)
            .map(|j| Value::Float(min + width * f64::from(j)))
            .collect();
        Partitioning::from_cuts(cuts)
    }

    /// Number of partitions (`d_i`).
    pub fn num_partitions(&self) -> u32 {
        self.cuts.len() as u32 + 1
    }

    /// The partition index a value falls in.
    ///
    /// Returns the number of cut points ≤ `v`, i.e. a binary search over the
    /// cuts. The caller is responsible for having checked `v` against the
    /// attribute's domain; any value of the right type gets *some* partition
    /// (out-of-domain values clamp to the end partitions).
    ///
    /// # Errors
    /// [`GridError::TypeMismatch`] if `v`'s type differs from the cuts'.
    pub fn partition_of(&self, v: &Value) -> Result<u32> {
        if let Some(first) = self.cuts.first() {
            if v.partial_cmp_same_type(first).is_none() {
                return Err(GridError::TypeMismatch { attribute: 0 });
            }
        }
        // Count cuts ≤ v: partition j covers [cut[j-1], cut[j]).
        let mut lo = 0usize;
        let mut hi = self.cuts.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cuts[mid].partial_cmp_same_type(v) {
                Some(std::cmp::Ordering::Greater) => hi = mid,
                Some(_) => lo = mid + 1,
                None => return Err(GridError::TypeMismatch { attribute: 0 }),
            }
        }
        Ok(lo as u32)
    }

    /// The partitions overlapped by the inclusive value range `[lo, hi]`,
    /// as an inclusive partition-index range.
    ///
    /// # Errors
    /// [`GridError::TypeMismatch`] on type mismatch;
    /// [`GridError::InvertedRange`] if `lo > hi`.
    pub fn partitions_of_range(&self, lo: &Value, hi: &Value) -> Result<(u32, u32)> {
        match lo.partial_cmp_same_type(hi) {
            Some(std::cmp::Ordering::Greater) => return Err(GridError::InvertedRange { dim: 0 }),
            None => return Err(GridError::TypeMismatch { attribute: 0 }),
            _ => {}
        }
        Ok((self.partition_of(lo)?, self.partition_of(hi)?))
    }

    /// Equi-depth partitioning from a data sample: cut points are placed
    /// at the sample's `j/d` quantiles so each partition holds roughly the
    /// same number of records — the grid-file answer to skewed data.
    ///
    /// Duplicate quantile values are merged, so heavily repeated values
    /// can yield fewer than `d` partitions (check
    /// [`Partitioning::num_partitions`]). The sample is consumed because
    /// it must be sorted.
    ///
    /// # Errors
    /// [`GridError::IncompletePartitioning`] if `d == 0` or the sample is
    /// empty; [`GridError::UnsortedBoundaries`] if the sample mixes types
    /// (or contains NaN).
    pub fn equi_depth(mut sample: Vec<Value>, d: u32) -> Result<Self> {
        if d == 0 || sample.is_empty() {
            return Err(GridError::IncompletePartitioning);
        }
        // Total-order sort; surface mixed types / NaN as an error by
        // checking adjacency after a best-effort sort.
        sample.sort_by(|a, b| {
            a.partial_cmp_same_type(b)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for w in sample.windows(2) {
            if w[0].partial_cmp_same_type(&w[1]).is_none() {
                return Err(GridError::UnsortedBoundaries);
            }
        }
        let n = sample.len();
        let mut cuts: Vec<Value> = Vec::with_capacity(d as usize - 1);
        for j in 1..u64::from(d) {
            let idx = ((j as u128 * n as u128) / u128::from(d)) as usize;
            let cut = sample[idx.min(n - 1)].clone();
            let strictly_greater = cuts
                .last()
                .map(|prev| {
                    matches!(
                        prev.partial_cmp_same_type(&cut),
                        Some(std::cmp::Ordering::Less)
                    )
                })
                .unwrap_or(true);
            if strictly_greater {
                cuts.push(cut);
            }
        }
        Partitioning::from_cuts(cuts)
    }

    /// A sensible default partitioning for a domain: uniform with `d`
    /// partitions for bounded domains.
    ///
    /// # Errors
    /// Propagates the uniform constructors' errors; string domains cannot be
    /// uniformly partitioned automatically and yield
    /// [`GridError::IncompletePartitioning`] (supply explicit cuts instead).
    pub fn uniform_for(kind: &DomainKind, d: u32) -> Result<Self> {
        match kind {
            DomainKind::Int { min, max } => Partitioning::uniform_int(*min, *max, d),
            DomainKind::Float { min, max } => Partitioning::uniform_float(*min, *max, d),
            DomainKind::Str => Err(GridError::IncompletePartitioning),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cuts_rejects_unsorted_and_mixed() {
        assert_eq!(
            Partitioning::from_cuts(vec![Value::Int(3), Value::Int(1)]).unwrap_err(),
            GridError::UnsortedBoundaries
        );
        assert_eq!(
            Partitioning::from_cuts(vec![Value::Int(3), Value::Int(3)]).unwrap_err(),
            GridError::UnsortedBoundaries
        );
        assert_eq!(
            Partitioning::from_cuts(vec![Value::Int(3), Value::Float(4.0)]).unwrap_err(),
            GridError::UnsortedBoundaries
        );
    }

    #[test]
    fn empty_cuts_is_one_partition() {
        let p = Partitioning::from_cuts(vec![]).unwrap();
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_of(&Value::Int(42)).unwrap(), 0);
    }

    #[test]
    fn uniform_int_splits_evenly() {
        // [0, 99] into 4: cuts at 25, 50, 75.
        let p = Partitioning::uniform_int(0, 99, 4).unwrap();
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.partition_of(&Value::Int(0)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Int(24)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Int(25)).unwrap(), 1);
        assert_eq!(p.partition_of(&Value::Int(99)).unwrap(), 3);
    }

    #[test]
    fn uniform_int_uneven_width_covers_all() {
        // [0, 9] into 3 partitions: every value lands somewhere in 0..3.
        let p = Partitioning::uniform_int(0, 9, 3).unwrap();
        for v in 0..=9 {
            let j = p.partition_of(&Value::Int(v)).unwrap();
            assert!(j < 3, "value {v} mapped to partition {j}");
        }
        // Partition of min is 0 and of max is d-1.
        assert_eq!(p.partition_of(&Value::Int(0)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Int(9)).unwrap(), 2);
    }

    #[test]
    fn uniform_int_rejects_degenerate() {
        assert!(Partitioning::uniform_int(0, 9, 0).is_err());
        assert!(Partitioning::uniform_int(9, 0, 2).is_err());
        assert!(Partitioning::uniform_int(0, 1, 3).is_err()); // 2 values, 3 parts
    }

    #[test]
    fn uniform_float_splits_evenly() {
        let p = Partitioning::uniform_float(0.0, 1.0, 4).unwrap();
        assert_eq!(p.partition_of(&Value::Float(0.1)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Float(0.25)).unwrap(), 1);
        assert_eq!(p.partition_of(&Value::Float(0.99)).unwrap(), 3);
        assert!(Partitioning::uniform_float(1.0, 0.0, 2).is_err());
        assert!(Partitioning::uniform_float(0.0, f64::INFINITY, 2).is_err());
    }

    #[test]
    fn string_cuts() {
        let p = Partitioning::from_cuts(vec![Value::from("h"), Value::from("p")]).unwrap();
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.partition_of(&Value::from("aardvark")).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::from("h")).unwrap(), 1);
        assert_eq!(p.partition_of(&Value::from("moose")).unwrap(), 1);
        assert_eq!(p.partition_of(&Value::from("zebra")).unwrap(), 2);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let p = Partitioning::uniform_int(0, 9, 2).unwrap();
        assert!(matches!(
            p.partition_of(&Value::from("x")).unwrap_err(),
            GridError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn range_mapping() {
        let p = Partitioning::uniform_int(0, 99, 4).unwrap();
        assert_eq!(
            p.partitions_of_range(&Value::Int(10), &Value::Int(60))
                .unwrap(),
            (0, 2)
        );
        assert_eq!(
            p.partitions_of_range(&Value::Int(30), &Value::Int(30))
                .unwrap(),
            (1, 1)
        );
        assert!(matches!(
            p.partitions_of_range(&Value::Int(60), &Value::Int(10))
                .unwrap_err(),
            GridError::InvertedRange { .. }
        ));
    }

    #[test]
    fn out_of_domain_values_clamp() {
        let p = Partitioning::uniform_int(0, 99, 4).unwrap();
        assert_eq!(p.partition_of(&Value::Int(-5)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Int(1000)).unwrap(), 3);
    }

    #[test]
    fn equi_depth_balances_a_skewed_sample() {
        // Zipf-ish sample: many small values, few large ones.
        let mut sample = Vec::new();
        for v in 0..100i64 {
            let copies = 1 + 1000 / (v + 1);
            for _ in 0..copies {
                sample.push(Value::Int(v));
            }
        }
        let n = sample.len();
        let p = Partitioning::equi_depth(sample.clone(), 4).unwrap();
        assert!(p.num_partitions() >= 2);
        // Count records per partition: near-equal within a generous bound
        // (duplicates at cut values skew the split).
        let mut counts = vec![0usize; p.num_partitions() as usize];
        for v in &sample {
            counts[p.partition_of(v).unwrap() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max < n, // strictly better than one partition holding all
            "equi-depth degenerate: {counts:?}"
        );
        // A uniform partitioning on the same data is far more skewed.
        let u = Partitioning::uniform_int(0, 99, 4).unwrap();
        let mut ucounts = vec![0usize; 4];
        for v in &sample {
            ucounts[u.partition_of(v).unwrap() as usize] += 1;
        }
        assert!(
            *ucounts.iter().max().unwrap() > max,
            "uniform {ucounts:?} should be more skewed than equi-depth {counts:?}"
        );
    }

    #[test]
    fn equi_depth_on_uniform_data_matches_quantiles() {
        let sample: Vec<Value> = (0..100i64).map(Value::Int).collect();
        let p = Partitioning::equi_depth(sample, 4).unwrap();
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.partition_of(&Value::Int(10)).unwrap(), 0);
        assert_eq!(p.partition_of(&Value::Int(30)).unwrap(), 1);
        assert_eq!(p.partition_of(&Value::Int(60)).unwrap(), 2);
        assert_eq!(p.partition_of(&Value::Int(90)).unwrap(), 3);
    }

    #[test]
    fn equi_depth_collapses_heavy_duplicates() {
        // 90% of the sample is the single value 7: fewer partitions than
        // requested, but construction still succeeds.
        let mut sample = vec![Value::Int(7); 90];
        sample.extend((0..10i64).map(Value::Int));
        let p = Partitioning::equi_depth(sample, 8).unwrap();
        assert!(p.num_partitions() < 8);
        assert!(p.num_partitions() >= 1);
    }

    #[test]
    fn equi_depth_validates_input() {
        assert!(Partitioning::equi_depth(vec![], 4).is_err());
        assert!(Partitioning::equi_depth(vec![Value::Int(1)], 0).is_err());
        assert!(matches!(
            Partitioning::equi_depth(vec![Value::Int(1), Value::from("x")], 2).unwrap_err(),
            GridError::UnsortedBoundaries
        ));
    }

    #[test]
    fn equi_depth_works_for_strings() {
        let sample: Vec<Value> = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        let p = Partitioning::equi_depth(sample, 3).unwrap();
        assert_eq!(p.num_partitions(), 3);
    }

    #[test]
    fn uniform_for_dispatches_on_kind() {
        assert!(Partitioning::uniform_for(&DomainKind::Int { min: 0, max: 9 }, 2).is_ok());
        assert!(Partitioning::uniform_for(&DomainKind::Str, 2).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn uniform_int_partition_counts_are_balanced(
            d in 1u32..16,
            span in 16i64..1000,
            min in -500i64..500,
        ) {
            let max = min + span;
            let p = Partitioning::uniform_int(min, max, d).unwrap();
            let mut counts = vec![0u64; d as usize];
            for v in min..=max {
                counts[p.partition_of(&Value::Int(v)).unwrap() as usize] += 1;
            }
            let lo = counts.iter().min().unwrap();
            let hi = counts.iter().max().unwrap();
            // Near-equal widths: differ by at most 1.
            prop_assert!(hi - lo <= 1, "counts {counts:?}");
        }

        #[test]
        fn partition_of_is_monotone(d in 1u32..16, a in -1000i64..1000, b in -1000i64..1000) {
            let p = Partitioning::uniform_int(-1000, 1000, d).unwrap();
            let (x, y) = (a.min(b), a.max(b));
            let px = p.partition_of(&Value::Int(x)).unwrap();
            let py = p.partition_of(&Value::Int(y)).unwrap();
            prop_assert!(px <= py);
        }
    }
}
