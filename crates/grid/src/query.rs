use crate::record::Value;
use crate::{BucketCoord, BucketRegion, GridError, GridSpace, Result};

/// A range query in **bucket coordinates**: `l_i ≤ x_i ≤ u_i` per dimension
/// (Definition 2 of the paper, at grid granularity).
///
/// The simulation study operates at bucket granularity throughout — a
/// query's cost depends only on which buckets it touches — so this is the
/// workhorse query type. Value-level queries ([`ValueRangeQuery`]) are
/// mapped to this form by a [`crate::GridSchema`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    lo: BucketCoord,
    hi: BucketCoord,
}

impl RangeQuery {
    /// Creates a range query from inclusive per-dimension bounds.
    ///
    /// # Errors
    /// [`GridError::EmptyGrid`] for zero dimensions,
    /// [`GridError::DimensionMismatch`] if `lo` and `hi` differ in arity,
    /// [`GridError::InvertedRange`] if `lo > hi` somewhere.
    pub fn new(lo: impl Into<BucketCoord>, hi: impl Into<BucketCoord>) -> Result<Self> {
        let (lo, hi) = (lo.into(), hi.into());
        if lo.dims() == 0 {
            return Err(GridError::EmptyGrid);
        }
        if lo.dims() != hi.dims() {
            return Err(GridError::DimensionMismatch {
                expected: lo.dims(),
                got: hi.dims(),
            });
        }
        for d in 0..lo.dims() {
            if lo[d] > hi[d] {
                return Err(GridError::InvertedRange { dim: d });
            }
        }
        Ok(RangeQuery { lo, hi })
    }

    /// Inclusive lower bounds.
    pub fn lo(&self) -> &BucketCoord {
        &self.lo
    }

    /// Inclusive upper bounds.
    pub fn hi(&self) -> &BucketCoord {
        &self.hi
    }

    /// Number of queried dimensions.
    pub fn dims(&self) -> usize {
        self.lo.dims()
    }

    /// The bucket region this query touches in `space`, clipping to the
    /// grid's extent.
    ///
    /// # Errors
    /// [`GridError::DimensionMismatch`] on arity mismatch and
    /// [`GridError::EmptyQuery`] if the query lies wholly outside the grid.
    pub fn region(&self, space: &GridSpace) -> Result<BucketRegion> {
        if self.dims() != space.k() {
            return Err(GridError::DimensionMismatch {
                expected: space.k(),
                got: self.dims(),
            });
        }
        let k = space.k();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for d in 0..k {
            let max = space.dim(d) - 1;
            if self.lo[d] > max {
                return Err(GridError::EmptyQuery);
            }
            lo.push(self.lo[d]);
            hi.push(self.hi[d].min(max));
        }
        BucketRegion::new(space, BucketCoord::from(lo), BucketCoord::from(hi))
    }
}

/// A partial match query: each attribute is either bound to a single
/// partition or left unspecified (Definition 3 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PartialMatchQuery {
    /// `Some(j)` binds the attribute to partition `j`; `None` leaves it
    /// unspecified.
    bindings: Vec<Option<u32>>,
}

impl PartialMatchQuery {
    /// Creates a partial match query from per-attribute bindings.
    ///
    /// # Errors
    /// [`GridError::EmptyGrid`] if no attributes are given.
    pub fn new(bindings: Vec<Option<u32>>) -> Result<Self> {
        if bindings.is_empty() {
            return Err(GridError::EmptyGrid);
        }
        Ok(PartialMatchQuery { bindings })
    }

    /// The per-attribute bindings.
    pub fn bindings(&self) -> &[Option<u32>] {
        &self.bindings
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.bindings.len()
    }

    /// Number of unspecified attributes.
    pub fn unspecified(&self) -> usize {
        self.bindings.iter().filter(|b| b.is_none()).count()
    }

    /// Whether every attribute is bound (i.e. this is a point query).
    pub fn is_point(&self) -> bool {
        self.unspecified() == 0
    }

    /// The bucket region this query touches: bound attributes pin one
    /// partition, unspecified attributes span the whole dimension.
    ///
    /// # Errors
    /// Arity and bounds errors as for [`RangeQuery::region`].
    pub fn region(&self, space: &GridSpace) -> Result<BucketRegion> {
        if self.dims() != space.k() {
            return Err(GridError::DimensionMismatch {
                expected: space.k(),
                got: self.dims(),
            });
        }
        let k = space.k();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for d in 0..k {
            match self.bindings[d] {
                Some(j) => {
                    if j >= space.dim(d) {
                        return Err(GridError::CoordOutOfBounds {
                            dim: d,
                            coord: j,
                            partitions: space.dim(d),
                        });
                    }
                    lo.push(j);
                    hi.push(j);
                }
                None => {
                    lo.push(0);
                    hi.push(space.dim(d) - 1);
                }
            }
        }
        BucketRegion::new(space, BucketCoord::from(lo), BucketCoord::from(hi))
    }
}

/// A point query: every attribute bound to one partition (Definition 4).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PointQuery(BucketCoord);

impl PointQuery {
    /// Creates a point query at the given bucket.
    pub fn new(coord: impl Into<BucketCoord>) -> Self {
        PointQuery(coord.into())
    }

    /// The queried bucket.
    pub fn coord(&self) -> &BucketCoord {
        &self.0
    }

    /// The single-bucket region for this query.
    ///
    /// # Errors
    /// Bounds errors if the bucket lies outside `space`.
    pub fn region(&self, space: &GridSpace) -> Result<BucketRegion> {
        BucketRegion::point(space, self.0.clone())
    }
}

/// Any of the paper's three query classes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// General range query.
    Range(RangeQuery),
    /// Partial match query.
    PartialMatch(PartialMatchQuery),
    /// Point query.
    Point(PointQuery),
}

impl Query {
    /// The bucket region this query touches in `space`.
    ///
    /// # Errors
    /// Propagates the underlying query's region errors.
    pub fn region(&self, space: &GridSpace) -> Result<BucketRegion> {
        match self {
            Query::Range(q) => q.region(space),
            Query::PartialMatch(q) => q.region(space),
            Query::Point(q) => q.region(space),
        }
    }
}

impl From<RangeQuery> for Query {
    fn from(q: RangeQuery) -> Self {
        Query::Range(q)
    }
}
impl From<PartialMatchQuery> for Query {
    fn from(q: PartialMatchQuery) -> Self {
        Query::PartialMatch(q)
    }
}
impl From<PointQuery> for Query {
    fn from(q: PointQuery) -> Self {
        Query::Point(q)
    }
}

/// A range query over **attribute values**, one optional inclusive interval
/// per attribute (`None` = attribute unconstrained).
///
/// This is the form an application would issue; [`crate::GridSchema`]
/// translates it to a [`BucketRegion`] via the per-attribute partitionings.
#[derive(Clone, Debug, PartialEq)]
pub struct ValueRangeQuery {
    /// Per-attribute inclusive intervals; `None` leaves an attribute free.
    intervals: Vec<Option<(Value, Value)>>,
}

impl ValueRangeQuery {
    /// Creates a value-level range query.
    ///
    /// # Errors
    /// [`GridError::EmptyGrid`] if no attributes are given.
    pub fn new(intervals: Vec<Option<(Value, Value)>>) -> Result<Self> {
        if intervals.is_empty() {
            return Err(GridError::EmptyGrid);
        }
        Ok(ValueRangeQuery { intervals })
    }

    /// The per-attribute intervals.
    pub fn intervals(&self) -> &[Option<(Value, Value)>] {
        &self.intervals
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.intervals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpace {
        GridSpace::new_2d(8, 8).unwrap()
    }

    #[test]
    fn range_query_validation() {
        assert!(RangeQuery::new([1, 1], [2, 2]).is_ok());
        assert!(matches!(
            RangeQuery::new([2, 1], [1, 2]).unwrap_err(),
            GridError::InvertedRange { dim: 0 }
        ));
        assert!(matches!(
            RangeQuery::new([1], [1, 2]).unwrap_err(),
            GridError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn range_region_clips_to_grid() {
        let g = grid();
        let q = RangeQuery::new([6, 6], [20, 20]).unwrap();
        let r = q.region(&g).unwrap();
        assert_eq!(r.hi(), &BucketCoord::from([7, 7]));
        assert_eq!(r.num_buckets(), 4);
    }

    #[test]
    fn range_region_outside_grid_is_empty() {
        let g = grid();
        let q = RangeQuery::new([9, 0], [10, 3]).unwrap();
        assert_eq!(q.region(&g).unwrap_err(), GridError::EmptyQuery);
    }

    #[test]
    fn range_region_arity_checked() {
        let g = GridSpace::new(vec![4, 4, 4]).unwrap();
        let q = RangeQuery::new([0, 0], [1, 1]).unwrap();
        assert!(matches!(
            q.region(&g).unwrap_err(),
            GridError::DimensionMismatch {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn partial_match_region_spans_unbound_dims() {
        let g = grid();
        let q = PartialMatchQuery::new(vec![Some(3), None]).unwrap();
        let r = q.region(&g).unwrap();
        assert_eq!(r.lo(), &BucketCoord::from([3, 0]));
        assert_eq!(r.hi(), &BucketCoord::from([3, 7]));
        assert_eq!(q.unspecified(), 1);
        assert!(!q.is_point());
    }

    #[test]
    fn partial_match_bound_out_of_range() {
        let g = grid();
        let q = PartialMatchQuery::new(vec![Some(9), None]).unwrap();
        assert!(matches!(
            q.region(&g).unwrap_err(),
            GridError::CoordOutOfBounds {
                dim: 0,
                coord: 9,
                ..
            }
        ));
    }

    #[test]
    fn fully_bound_partial_match_is_point() {
        let q = PartialMatchQuery::new(vec![Some(1), Some(2)]).unwrap();
        assert!(q.is_point());
        let g = grid();
        assert_eq!(q.region(&g).unwrap().num_buckets(), 1);
    }

    #[test]
    fn point_query_region() {
        let g = grid();
        let q = PointQuery::new([5, 5]);
        assert_eq!(q.region(&g).unwrap().num_buckets(), 1);
        let bad = PointQuery::new([8, 0]);
        assert!(bad.region(&g).is_err());
    }

    #[test]
    fn query_enum_dispatches() {
        let g = grid();
        let q: Query = RangeQuery::new([0, 0], [1, 1]).unwrap().into();
        assert_eq!(q.region(&g).unwrap().num_buckets(), 4);
        let q: Query = PartialMatchQuery::new(vec![None, Some(0)]).unwrap().into();
        assert_eq!(q.region(&g).unwrap().num_buckets(), 8);
        let q: Query = PointQuery::new([0, 0]).into();
        assert_eq!(q.region(&g).unwrap().num_buckets(), 1);
    }

    #[test]
    fn empty_queries_rejected() {
        assert!(RangeQuery::new(Vec::<u32>::new(), Vec::<u32>::new()).is_err());
        assert!(PartialMatchQuery::new(vec![]).is_err());
        assert!(ValueRangeQuery::new(vec![]).is_err());
    }
}
