use crate::query::ValueRangeQuery;
use crate::record::Record;
use crate::{
    AttributeDomain, BucketCoord, BucketRegion, GridError, GridSpace, Partitioning, Result,
};

/// The value-level view of a Cartesian product file: named, typed attribute
/// domains plus one [`Partitioning`] per attribute, inducing a
/// [`GridSpace`].
///
/// The schema routes records to buckets and translates value-level range
/// queries into bucket regions, which is all a declustering method or the
/// simulator needs.
#[derive(Clone, Debug)]
pub struct GridSchema {
    attributes: Vec<AttributeDomain>,
    partitionings: Vec<Partitioning>,
    space: GridSpace,
}

impl GridSchema {
    /// Creates a schema from attributes and matching partitionings.
    ///
    /// # Errors
    /// [`GridError::ArityMismatch`] if the two lists differ in length, plus
    /// any [`GridSpace`] construction error.
    pub fn new(attributes: Vec<AttributeDomain>, partitionings: Vec<Partitioning>) -> Result<Self> {
        if attributes.len() != partitionings.len() {
            return Err(GridError::ArityMismatch {
                expected: attributes.len(),
                got: partitionings.len(),
            });
        }
        let dims: Vec<u32> = partitionings.iter().map(|p| p.num_partitions()).collect();
        let space = GridSpace::new(dims)?;
        Ok(GridSchema {
            attributes,
            partitionings,
            space,
        })
    }

    /// Creates a schema with uniform partitionings: `d` partitions on every
    /// attribute.
    ///
    /// # Errors
    /// Propagates [`Partitioning::uniform_for`] errors (e.g. string
    /// domains, too-small domains).
    pub fn uniform(attributes: Vec<AttributeDomain>, d: u32) -> Result<Self> {
        let partitionings = attributes
            .iter()
            .map(|a| Partitioning::uniform_for(a.kind(), d))
            .collect::<Result<Vec<_>>>()?;
        GridSchema::new(attributes, partitionings)
    }

    /// The induced bucket grid.
    pub fn space(&self) -> &GridSpace {
        &self.space
    }

    /// The attribute list.
    pub fn attributes(&self) -> &[AttributeDomain] {
        &self.attributes
    }

    /// The per-attribute partitionings.
    pub fn partitionings(&self) -> &[Partitioning] {
        &self.partitionings
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of the attribute with the given name, if any.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Routes a record to its bucket.
    ///
    /// # Errors
    /// [`GridError::ArityMismatch`] on wrong arity,
    /// [`GridError::ValueOutOfDomain`] / [`GridError::TypeMismatch`] on bad
    /// values.
    pub fn bucket_of(&self, record: &Record) -> Result<BucketCoord> {
        if record.arity() != self.arity() {
            return Err(GridError::ArityMismatch {
                expected: self.arity(),
                got: record.arity(),
            });
        }
        let mut coords = Vec::with_capacity(self.arity());
        for (i, v) in record.values().iter().enumerate() {
            if !self.attributes[i].kind().type_matches(v) {
                return Err(GridError::TypeMismatch { attribute: i });
            }
            if !self.attributes[i].kind().contains(v) {
                return Err(GridError::ValueOutOfDomain { attribute: i });
            }
            let j = self.partitionings[i]
                .partition_of(v)
                .map_err(|_| GridError::TypeMismatch { attribute: i })?;
            coords.push(j);
        }
        Ok(BucketCoord::from(coords))
    }

    /// Translates a value-level range query to its bucket region.
    ///
    /// # Errors
    /// Arity, type, and inverted-range errors as applicable.
    pub fn region_of(&self, query: &ValueRangeQuery) -> Result<BucketRegion> {
        if query.dims() != self.arity() {
            return Err(GridError::ArityMismatch {
                expected: self.arity(),
                got: query.dims(),
            });
        }
        let k = self.arity();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for (i, interval) in query.intervals().iter().enumerate() {
            match interval {
                Some((a, b)) => {
                    let (pa, pb) =
                        self.partitionings[i]
                            .partitions_of_range(a, b)
                            .map_err(|e| match e {
                                GridError::TypeMismatch { .. } => {
                                    GridError::TypeMismatch { attribute: i }
                                }
                                GridError::InvertedRange { .. } => {
                                    GridError::InvertedRange { dim: i }
                                }
                                other => other,
                            })?;
                    lo.push(pa);
                    hi.push(pb);
                }
                None => {
                    lo.push(0);
                    hi.push(self.space.dim(i) - 1);
                }
            }
        }
        BucketRegion::new(&self.space, BucketCoord::from(lo), BucketCoord::from(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn schema() -> GridSchema {
        GridSchema::uniform(
            vec![
                AttributeDomain::int("age", 0, 99),
                AttributeDomain::float("salary", 0.0, 100_000.0),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn uniform_schema_builds_square_grid() {
        let s = schema();
        assert_eq!(s.space().dims(), &[4, 4]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attribute_index("salary"), Some(1));
        assert_eq!(s.attribute_index("nope"), None);
    }

    #[test]
    fn mismatched_lists_rejected() {
        let err = GridSchema::new(vec![AttributeDomain::int("a", 0, 9)], vec![]).unwrap_err();
        assert!(matches!(err, GridError::ArityMismatch { .. }));
    }

    #[test]
    fn record_routing() {
        let s = schema();
        let b = s
            .bucket_of(&Record::new(vec![Value::Int(30), Value::Float(80_000.0)]))
            .unwrap();
        assert_eq!(b, BucketCoord::from([1, 3]));
    }

    #[test]
    fn record_routing_errors() {
        let s = schema();
        assert!(matches!(
            s.bucket_of(&Record::new(vec![Value::Int(30)])).unwrap_err(),
            GridError::ArityMismatch { .. }
        ));
        assert!(matches!(
            s.bucket_of(&Record::new(vec![Value::Int(30), Value::Int(1)]))
                .unwrap_err(),
            GridError::TypeMismatch { attribute: 1 }
        ));
        assert!(matches!(
            s.bucket_of(&Record::new(vec![Value::Int(200), Value::Float(1.0)]))
                .unwrap_err(),
            GridError::ValueOutOfDomain { attribute: 0 }
        ));
    }

    #[test]
    fn value_query_region() {
        let s = schema();
        // age in [0, 49] -> partitions 0..=1; salary unconstrained.
        let q = ValueRangeQuery::new(vec![Some((Value::Int(0), Value::Int(49))), None]).unwrap();
        let r = s.region_of(&q).unwrap();
        assert_eq!(r.lo(), &BucketCoord::from([0, 0]));
        assert_eq!(r.hi(), &BucketCoord::from([1, 3]));
        assert_eq!(r.num_buckets(), 8);
    }

    #[test]
    fn value_query_errors() {
        let s = schema();
        let wrong_arity = ValueRangeQuery::new(vec![None]).unwrap();
        assert!(matches!(
            s.region_of(&wrong_arity).unwrap_err(),
            GridError::ArityMismatch { .. }
        ));
        let inverted =
            ValueRangeQuery::new(vec![Some((Value::Int(50), Value::Int(10))), None]).unwrap();
        assert!(matches!(
            s.region_of(&inverted).unwrap_err(),
            GridError::InvertedRange { dim: 0 }
        ));
        let bad_type =
            ValueRangeQuery::new(vec![Some((Value::from("a"), Value::from("b"))), None]).unwrap();
        assert!(matches!(
            s.region_of(&bad_type).unwrap_err(),
            GridError::TypeMismatch { attribute: 0 }
        ));
    }

    #[test]
    fn string_attribute_with_explicit_cuts() {
        let s = GridSchema::new(
            vec![
                AttributeDomain::str("name"),
                AttributeDomain::int("age", 0, 99),
            ],
            vec![
                Partitioning::from_cuts(vec![Value::from("h"), Value::from("p")]).unwrap(),
                Partitioning::uniform_int(0, 99, 2).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(s.space().dims(), &[3, 2]);
        let b = s
            .bucket_of(&Record::new(vec![Value::from("miller"), Value::Int(70)]))
            .unwrap();
        assert_eq!(b, BucketCoord::from([1, 1]));
    }
}
