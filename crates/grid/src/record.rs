use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// Values are totally ordered *within* a type; ordering across types is not
/// defined (the schema prevents it from ever being asked for).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (must be finite to participate in a grid).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Compares two values of the same type. Returns `None` if the types
    /// differ or a float is NaN.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A record (tuple) of the relation: one [`Value`] per attribute, in schema
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct Record(Vec<Value>);

impl Record {
    /// Creates a record from its values.
    pub fn new(values: Vec<Value>) -> Self {
        Record(values)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value of attribute `i`.
    ///
    /// # Panics
    /// Panics if `i >= arity()`.
    pub fn value(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl<const N: usize> From<[Value; N]> for Record {
    fn from(v: [Value; N]) -> Self {
        Record(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_comparison() {
        assert_eq!(
            Value::Int(1).partial_cmp_same_type(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("b".into()).partial_cmp_same_type(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float(1.0).partial_cmp_same_type(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(
            Value::Int(1).partial_cmp_same_type(&Value::Float(1.0)),
            None
        );
        assert_eq!(
            Value::Float(f64::NAN).partial_cmp_same_type(&Value::Float(0.0)),
            None
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn record_accessors() {
        let r = Record::new(vec![Value::Int(4), Value::Str("x".into())]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.value(0), &Value::Int(4));
        assert_eq!(r.values().len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}
