//! A dynamic grid file (Nievergelt, Hinterberger & Sevcik, TODS 1984) —
//! the adaptable structure behind the paper's grid partitioning.
//!
//! The static [`crate::GridSchema`] fixes its partitionings up front,
//! which is what the declustering study assumes ("the allocation of
//! buckets remains fixed over time"). The grid file is where those
//! partitionings come from in a living system: *linear scales* (one
//! ordered cut-point list per attribute) partition the space into cells,
//! a *directory* maps every cell to a data bucket, and bucket overflows
//! drive splits — first splitting buckets that span several cells
//! (directory unchanged), then extending a scale (directory grows by one
//! slice) when a bucket has shrunk to a single cell.
//!
//! This module implements insertion, splitting, directory maintenance,
//! and range scans with bucket-access accounting. Convergence guarantee:
//! a split always reduces the maximum bucket occupancy unless all
//! records in the bucket are duplicates of one point, in which case the
//! bucket is allowed to overflow (documented grid-file behaviour).
//!
//! # Example
//!
//! ```
//! use decluster_grid::{AttributeDomain, GridFile, Record, Value, ValueRangeQuery};
//!
//! let mut gf = GridFile::new(
//!     vec![
//!         AttributeDomain::int("x", 0, 999),
//!         AttributeDomain::int("y", 0, 999),
//!     ],
//!     4, // bucket capacity
//! ).unwrap();
//! for i in 0..100i64 {
//!     gf.insert(Record::new(vec![Value::Int(i * 7 % 1000), Value::Int(i * 13 % 1000)])).unwrap();
//! }
//! assert_eq!(gf.len(), 100);
//! let q = ValueRangeQuery::new(vec![Some((Value::Int(0), Value::Int(499))), None]).unwrap();
//! let result = gf.scan(&q).unwrap();
//! assert!(result.records.iter().all(|r| matches!(r.value(0), Value::Int(x) if *x < 500)));
//! ```

use crate::record::{Record, Value};
use crate::{AttributeDomain, GridError, Result};
use std::cmp::Ordering;

/// Identifier of a data bucket inside a [`GridFile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridBucketId(pub usize);

/// One data bucket: the records of a hyper-rectangular cell region.
#[derive(Clone, Debug)]
struct Bucket {
    /// Inclusive cell-coordinate region this bucket covers.
    lo: Vec<u32>,
    hi: Vec<u32>,
    records: Vec<Record>,
}

impl Bucket {
    fn spans_multiple_cells(&self, dim: usize) -> bool {
        self.hi[dim] > self.lo[dim]
    }
}

/// Result of a [`GridFile::scan`]: matching records plus access counts.
#[derive(Clone, Debug)]
pub struct GridScan {
    /// Records satisfying the query exactly.
    pub records: Vec<Record>,
    /// Distinct buckets read.
    pub buckets_read: usize,
    /// Directory cells examined.
    pub cells_examined: u64,
}

/// A dynamic grid file over typed attributes.
#[derive(Debug)]
pub struct GridFile {
    attributes: Vec<AttributeDomain>,
    /// Cut points per dimension, strictly increasing. `cuts[d].len() + 1`
    /// cells along dimension `d`.
    scales: Vec<Vec<Value>>,
    /// Row-major directory: cell → bucket id.
    directory: Vec<GridBucketId>,
    /// Cells per dimension.
    cells: Vec<u32>,
    buckets: Vec<Bucket>,
    capacity: usize,
    /// Next dimension to try splitting (cyclic policy).
    next_split_dim: usize,
    records: u64,
}

impl GridFile {
    /// Creates an empty grid file: one cell, one bucket.
    ///
    /// # Errors
    /// [`GridError::EmptyGrid`] for no attributes,
    /// [`GridError::IncompletePartitioning`] for `capacity == 0`.
    pub fn new(attributes: Vec<AttributeDomain>, capacity: usize) -> Result<Self> {
        if attributes.is_empty() {
            return Err(GridError::EmptyGrid);
        }
        if capacity == 0 {
            return Err(GridError::IncompletePartitioning);
        }
        let k = attributes.len();
        Ok(GridFile {
            attributes,
            scales: vec![Vec::new(); k],
            directory: vec![GridBucketId(0)],
            cells: vec![1; k],
            buckets: vec![Bucket {
                lo: vec![0; k],
                hi: vec![0; k],
                records: Vec::new(),
            }],
            capacity,
            next_split_dim: 0,
            records: 0,
        })
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Current cells per dimension (the induced grid resolution).
    pub fn cell_counts(&self) -> &[u32] {
        &self.cells
    }

    /// Number of data buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket capacity (soft: all-duplicate buckets may exceed it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cut points currently on dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is out of range.
    pub fn scale(&self, dim: usize) -> &[Value] {
        &self.scales[dim]
    }

    /// Inserts a record, splitting buckets/extending scales as needed.
    ///
    /// # Errors
    /// Arity/type/domain errors for malformed records.
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.check_record(&record)?;
        let cell = self.cell_of(&record);
        let bucket_id = self.bucket_at(&cell);
        self.buckets[bucket_id.0].records.push(record);
        self.records += 1;
        if self.buckets[bucket_id.0].records.len() > self.capacity {
            self.split(bucket_id);
        }
        Ok(())
    }

    /// Deletes one record equal to `record`, returning whether one was
    /// found.
    ///
    /// Buckets are **not** merged on underflow: the original grid file's
    /// merging policy mainly reclaims directory space and does not affect
    /// query correctness, so this implementation (like several published
    /// grid-file variants) leaves regions in place. Scales never shrink.
    ///
    /// # Errors
    /// Arity/type/domain errors for malformed records.
    pub fn delete(&mut self, record: &Record) -> Result<bool> {
        self.check_record(record)?;
        let cell = self.cell_of(record);
        let bucket_id = self.bucket_at(&cell);
        let records = &mut self.buckets[bucket_id.0].records;
        if let Some(pos) = records.iter().position(|r| r == record) {
            records.swap_remove(pos);
            self.records -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Exact-predicate range scan with bucket-access accounting.
    ///
    /// # Errors
    /// Arity/type errors in the query.
    pub fn scan(&self, query: &crate::ValueRangeQuery) -> Result<GridScan> {
        if query.dims() != self.arity() {
            return Err(GridError::ArityMismatch {
                expected: self.arity(),
                got: query.dims(),
            });
        }
        // Cell range per dimension.
        let k = self.arity();
        let mut lo = vec![0u32; k];
        let mut hi: Vec<u32> = self.cells.iter().map(|&c| c - 1).collect();
        for (d, interval) in query.intervals().iter().enumerate() {
            if let Some((a, b)) = interval {
                if !self.attributes[d].kind().type_matches(a)
                    || !self.attributes[d].kind().type_matches(b)
                {
                    return Err(GridError::TypeMismatch { attribute: d });
                }
                match a.partial_cmp_same_type(b) {
                    Some(Ordering::Greater) => return Err(GridError::InvertedRange { dim: d }),
                    None => return Err(GridError::TypeMismatch { attribute: d }),
                    _ => {}
                }
                lo[d] = self.cell_index(d, a)?;
                hi[d] = self.cell_index(d, b)?;
            }
        }
        // Walk the cell box, dedupe buckets.
        let mut seen = vec![false; self.buckets.len()];
        let mut records = Vec::new();
        let mut buckets_read = 0usize;
        let mut cells_examined = 0u64;
        let mut pos = lo.clone();
        loop {
            cells_examined += 1;
            let b = self.bucket_at(&pos);
            if !seen[b.0] {
                seen[b.0] = true;
                buckets_read += 1;
                for r in &self.buckets[b.0].records {
                    if Self::matches(query, r) {
                        records.push(r.clone());
                    }
                }
            }
            let mut dim = k;
            let advanced = loop {
                if dim == 0 {
                    break false;
                }
                dim -= 1;
                pos[dim] += 1;
                if pos[dim] <= hi[dim] {
                    break true;
                }
                pos[dim] = lo[dim];
            };
            if !advanced {
                break;
            }
        }
        Ok(GridScan {
            records,
            buckets_read,
            cells_examined,
        })
    }

    /// The current scales as static [`crate::Partitioning`]s — the bridge
    /// from dynamic partition discovery to the paper's static
    /// declustering: bulk-load a grid file, freeze its scales into a
    /// [`crate::GridSchema`], and decluster that grid.
    ///
    /// # Errors
    /// Propagates cut-point validation (cannot fail for a consistent
    /// file; kept fallible for API honesty).
    pub fn partitionings(&self) -> Result<Vec<crate::Partitioning>> {
        self.scales
            .iter()
            .map(|cuts| crate::Partitioning::from_cuts(cuts.clone()))
            .collect()
    }

    /// Freezes the file's current partitioning into a static
    /// [`crate::GridSchema`] over the same attributes.
    ///
    /// # Errors
    /// Propagates schema construction errors.
    pub fn to_schema(&self) -> Result<crate::GridSchema> {
        crate::GridSchema::new(self.attributes.clone(), self.partitionings()?)
    }

    /// The per-bucket occupancy histogram (diagnostics, tests).
    pub fn occupancy(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.records.len()).collect()
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// * every directory cell maps to a bucket whose region contains it;
    /// * bucket regions tile the directory exactly;
    /// * every record lies in a cell of its bucket's region;
    /// * record count matches.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let k = self.arity();
        let mut counted = 0u64;
        // Region containment + tiling via per-cell check.
        let mut pos = vec![0u32; k];
        loop {
            let b = self.bucket_at(&pos);
            let bucket = &self.buckets[b.0];
            for d in 0..k {
                if pos[d] < bucket.lo[d] || pos[d] > bucket.hi[d] {
                    return Err(format!(
                        "cell {pos:?} maps to bucket {b:?} with region {:?}..{:?}",
                        bucket.lo, bucket.hi
                    ));
                }
            }
            let mut dim = k;
            let advanced = loop {
                if dim == 0 {
                    break false;
                }
                dim -= 1;
                pos[dim] += 1;
                if pos[dim] < self.cells[dim] {
                    break true;
                }
                pos[dim] = 0;
            };
            if !advanced {
                break;
            }
        }
        for (i, bucket) in self.buckets.iter().enumerate() {
            counted += bucket.records.len() as u64;
            for r in &bucket.records {
                let cell = self.cell_of(r);
                for d in 0..k {
                    if cell[d] < bucket.lo[d] || cell[d] > bucket.hi[d] {
                        return Err(format!(
                            "record {r:?} in bucket {i} lies in cell {cell:?} outside {:?}..{:?}",
                            bucket.lo, bucket.hi
                        ));
                    }
                }
            }
        }
        if counted != self.records {
            return Err(format!("record count {counted} != {}", self.records));
        }
        Ok(())
    }

    // ---- internals -----------------------------------------------------

    fn check_record(&self, record: &Record) -> Result<()> {
        if record.arity() != self.arity() {
            return Err(GridError::ArityMismatch {
                expected: self.arity(),
                got: record.arity(),
            });
        }
        for (i, v) in record.values().iter().enumerate() {
            if !self.attributes[i].kind().type_matches(v) {
                return Err(GridError::TypeMismatch { attribute: i });
            }
            if !self.attributes[i].kind().contains(v) {
                return Err(GridError::ValueOutOfDomain { attribute: i });
            }
        }
        Ok(())
    }

    /// Cell index of a value on one dimension: number of cuts ≤ value.
    fn cell_index(&self, dim: usize, v: &Value) -> Result<u32> {
        let cuts = &self.scales[dim];
        let mut lo = 0usize;
        let mut hi = cuts.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match cuts[mid].partial_cmp_same_type(v) {
                Some(Ordering::Greater) => hi = mid,
                Some(_) => lo = mid + 1,
                None => return Err(GridError::TypeMismatch { attribute: dim }),
            }
        }
        Ok(lo as u32)
    }

    fn cell_of(&self, record: &Record) -> Vec<u32> {
        (0..self.arity())
            .map(|d| {
                self.cell_index(d, record.value(d))
                    .expect("record was type-checked on insert")
            })
            .collect()
    }

    fn dir_index(&self, cell: &[u32]) -> usize {
        let mut idx = 0usize;
        for (d, &c) in cell.iter().enumerate() {
            idx = idx * self.cells[d] as usize + c as usize;
        }
        idx
    }

    fn bucket_at(&self, cell: &[u32]) -> GridBucketId {
        self.directory[self.dir_index(cell)]
    }

    /// Splits an overflowing bucket. Tries, in cyclic dimension order:
    /// (1) a region split along a dimension the bucket spans;
    /// (2) a scale extension at the median record value, then the region
    ///     split. Gives up (soft overflow) only when every record is the
    ///     same point.
    fn split(&mut self, bucket_id: GridBucketId) {
        let k = self.arity();
        for attempt in 0..k {
            let dim = (self.next_split_dim + attempt) % k;
            if self.buckets[bucket_id.0].spans_multiple_cells(dim) {
                if self.region_split(bucket_id, dim) {
                    self.next_split_dim = (dim + 1) % k;
                    return;
                }
            } else if self.extend_scale(bucket_id, dim) {
                // The bucket now spans two cells along `dim`.
                let split_ok = self.region_split(bucket_id, dim);
                debug_assert!(split_ok, "scale extension must enable a split");
                self.next_split_dim = (dim + 1) % k;
                return;
            }
        }
        // All dimensions degenerate (all records one point): soft overflow.
    }

    /// Splits the bucket's cell region along `dim` at a boundary that
    /// separates records; returns false if every boundary leaves one side
    /// empty *and* the region cannot separate records (degenerate).
    fn region_split(&mut self, bucket_id: GridBucketId, dim: usize) -> bool {
        let (lo_d, hi_d) = {
            let b = &self.buckets[bucket_id.0];
            (b.lo[dim], b.hi[dim])
        };
        if hi_d <= lo_d {
            return false;
        }
        // Candidate boundary: midpoint first, then sweep for one that
        // actually separates records.
        let mut boundaries: Vec<u32> = (lo_d..hi_d).collect();
        boundaries.sort_by_key(|&b| {
            let mid = lo_d + (hi_d - lo_d) / 2;
            b.abs_diff(mid)
        });
        for boundary in boundaries {
            // Left keeps cells lo..=boundary, right gets boundary+1..=hi.
            let drained: Vec<Record> = self.buckets[bucket_id.0].records.drain(..).collect();
            let (left, right): (Vec<Record>, Vec<Record>) = drained
                .into_iter()
                .partition(|r| self.cell_index(dim, r.value(dim)).expect("typed") <= boundary);
            if left.is_empty() || right.is_empty() {
                // Put them back and try the next boundary.
                let all: Vec<Record> = left.into_iter().chain(right).collect();
                self.buckets[bucket_id.0].records = all;
                continue;
            }
            // Commit: shrink the old bucket, create the new one.
            let new_id = GridBucketId(self.buckets.len());
            let (mut new_lo, mut new_hi) = {
                let b = &mut self.buckets[bucket_id.0];
                b.records = left;
                let new_lo = {
                    let mut l = b.lo.clone();
                    l[dim] = boundary + 1;
                    l
                };
                let new_hi = b.hi.clone();
                b.hi[dim] = boundary;
                (new_lo, new_hi)
            };
            self.buckets.push(Bucket {
                lo: std::mem::take(&mut new_lo),
                hi: std::mem::take(&mut new_hi),
                records: right,
            });
            // Re-point directory cells of the new region.
            self.repoint(new_id);
            // Recurse if either half still overflows (possible after a
            // skewed split).
            for id in [bucket_id, new_id] {
                if self.buckets[id.0].records.len() > self.capacity {
                    self.split(id);
                }
            }
            return true;
        }
        false
    }

    /// Adds a cut point on `dim` inside the (single-cell) region of
    /// `bucket_id`, chosen near the median record value. Rebuilds the
    /// directory. Returns false if no cut can separate the records while
    /// keeping the scale strictly increasing (all values equal, or all
    /// non-maximal values sit on the cell's left boundary).
    fn extend_scale(&mut self, bucket_id: GridBucketId, dim: usize) -> bool {
        let cell = self.buckets[bucket_id.0].lo[dim];
        let records = &self.buckets[bucket_id.0].records;
        let mut values: Vec<Value> = records.iter().map(|r| r.value(dim).clone()).collect();
        values.sort_by(|a, b| a.partial_cmp_same_type(b).unwrap_or(Ordering::Equal));
        values.dedup_by(|a, b| a.partial_cmp_same_type(b) == Some(Ordering::Equal));
        if values.len() < 2 {
            return false; // all records share one value on this dimension
        }
        // Cell-index semantics: a value equal to a cut lies in the cell
        // *above* the cut (index = number of cuts ≤ value). A cut `c`
        // therefore sends values < c left and values ≥ c right, so any
        // distinct value except the minimum separates the records; the
        // scale stays strictly increasing because every such value
        // strictly exceeds the cell's left boundary (≤ the minimum).
        let candidates = &values[1..];
        let cut = candidates[candidates.len() / 2].clone();
        // Insert the cut into the scale at position `cell` (cuts ≤ index).
        self.scales[dim].insert(cell as usize, cut);
        self.cells[dim] += 1;
        // Shift every bucket's region on `dim`: coordinates > cell move up;
        // the bucket containing `cell` now spans cell..=cell+1.
        for b in &mut self.buckets {
            if b.lo[dim] > cell {
                b.lo[dim] += 1;
            }
            if b.hi[dim] >= cell {
                b.hi[dim] += 1;
            }
        }
        self.rebuild_directory();
        true
    }

    /// Rebuilds the whole directory from bucket regions (used after scale
    /// extension).
    fn rebuild_directory(&mut self) {
        let total: usize = self.cells.iter().map(|&c| c as usize).product();
        self.directory = vec![GridBucketId(usize::MAX); total];
        for (i, bucket) in self.buckets.iter().enumerate() {
            let k = self.arity();
            let mut pos = bucket.lo.clone();
            loop {
                let idx = {
                    let mut acc = 0usize;
                    for (d, &c) in pos.iter().enumerate() {
                        acc = acc * self.cells[d] as usize + c as usize;
                    }
                    acc
                };
                self.directory[idx] = GridBucketId(i);
                let mut dim = k;
                let advanced = loop {
                    if dim == 0 {
                        break false;
                    }
                    dim -= 1;
                    pos[dim] += 1;
                    if pos[dim] <= bucket.hi[dim] {
                        break true;
                    }
                    pos[dim] = bucket.lo[dim];
                };
                if !advanced {
                    break;
                }
            }
        }
        debug_assert!(
            self.directory.iter().all(|b| b.0 != usize::MAX),
            "directory has unmapped cells"
        );
    }

    /// Points the directory cells of `bucket_id`'s region at it (used
    /// after a region split, where the grid resolution is unchanged).
    fn repoint(&mut self, bucket_id: GridBucketId) {
        let (lo, hi) = {
            let b = &self.buckets[bucket_id.0];
            (b.lo.clone(), b.hi.clone())
        };
        let k = self.arity();
        let mut pos = lo.clone();
        loop {
            let idx = self.dir_index(&pos);
            self.directory[idx] = bucket_id;
            let mut dim = k;
            let advanced = loop {
                if dim == 0 {
                    break false;
                }
                dim -= 1;
                pos[dim] += 1;
                if pos[dim] <= hi[dim] {
                    break true;
                }
                pos[dim] = lo[dim];
            };
            if !advanced {
                break;
            }
        }
    }

    fn matches(query: &crate::ValueRangeQuery, record: &Record) -> bool {
        query
            .intervals()
            .iter()
            .zip(record.values())
            .all(|(interval, v)| match interval {
                None => true,
                Some((lo, hi)) => {
                    matches!(
                        lo.partial_cmp_same_type(v),
                        Some(Ordering::Less | Ordering::Equal)
                    ) && matches!(
                        v.partial_cmp_same_type(hi),
                        Some(Ordering::Less | Ordering::Equal)
                    )
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueRangeQuery;

    fn file(capacity: usize) -> GridFile {
        GridFile::new(
            vec![
                AttributeDomain::int("x", 0, 999),
                AttributeDomain::int("y", 0, 999),
            ],
            capacity,
        )
        .unwrap()
    }

    fn rec(x: i64, y: i64) -> Record {
        Record::new(vec![Value::Int(x), Value::Int(y)])
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            GridFile::new(vec![], 4).unwrap_err(),
            GridError::EmptyGrid
        ));
        assert!(GridFile::new(vec![AttributeDomain::int("x", 0, 9)], 0).is_err());
        let gf = file(4);
        assert!(gf.is_empty());
        assert_eq!(gf.cell_counts(), &[1, 1]);
        assert_eq!(gf.num_buckets(), 1);
    }

    #[test]
    fn inserts_split_when_capacity_exceeded() {
        let mut gf = file(2);
        for i in 0..10 {
            gf.insert(rec(i * 100, i * 100)).unwrap();
            gf.check_invariants().unwrap();
        }
        assert_eq!(gf.len(), 10);
        assert!(gf.num_buckets() > 1, "no splits happened");
        // Every bucket within capacity (no degenerate duplicates here).
        assert!(
            gf.occupancy().iter().all(|&n| n <= 2),
            "{:?}",
            gf.occupancy()
        );
    }

    #[test]
    fn insert_rejects_bad_records() {
        let mut gf = file(4);
        assert!(gf.insert(Record::new(vec![Value::Int(1)])).is_err());
        assert!(gf.insert(rec(-5, 0)).is_err());
        assert!(gf
            .insert(Record::new(vec![Value::from("x"), Value::Int(1)]))
            .is_err());
        assert_eq!(gf.len(), 0);
    }

    #[test]
    fn scan_matches_naive_filter() {
        let mut gf = file(3);
        let mut all = Vec::new();
        for i in 0..200i64 {
            let r = rec((i * 37) % 1000, (i * 59) % 1000);
            all.push(r.clone());
            gf.insert(r).unwrap();
        }
        gf.check_invariants().unwrap();
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(100), Value::Int(600))),
            Some((Value::Int(0), Value::Int(500))),
        ])
        .unwrap();
        let mut got = gf.scan(&q).unwrap().records;
        let mut expected: Vec<Record> = all
            .into_iter()
            .filter(|r| {
                matches!(r.value(0), Value::Int(x) if (100..=600).contains(x))
                    && matches!(r.value(1), Value::Int(y) if (0..=500).contains(y))
            })
            .collect();
        let key = |r: &Record| {
            let (Value::Int(a), Value::Int(b)) = (r.value(0).clone(), r.value(1).clone()) else {
                unreachable!()
            };
            (a, b)
        };
        got.sort_by_key(key);
        expected.sort_by_key(key);
        assert_eq!(got, expected);
    }

    #[test]
    fn scan_reads_fewer_buckets_for_smaller_queries() {
        let mut gf = file(4);
        for i in 0..500i64 {
            gf.insert(rec((i * 13) % 1000, (i * 29) % 1000)).unwrap();
        }
        let narrow = ValueRangeQuery::new(vec![
            Some((Value::Int(0), Value::Int(99))),
            Some((Value::Int(0), Value::Int(99))),
        ])
        .unwrap();
        let wide = ValueRangeQuery::new(vec![None, None]).unwrap();
        let n = gf.scan(&narrow).unwrap();
        let w = gf.scan(&wide).unwrap();
        assert!(n.buckets_read < w.buckets_read);
        assert_eq!(w.records.len() as u64, gf.len());
        assert_eq!(w.buckets_read, gf.num_buckets());
    }

    #[test]
    fn duplicate_heavy_bucket_soft_overflows() {
        let mut gf = file(3);
        for _ in 0..10 {
            gf.insert(rec(500, 500)).unwrap();
        }
        gf.check_invariants().unwrap();
        assert_eq!(gf.len(), 10);
        // All identical points: unsplittable, capacity is soft.
        assert!(gf.occupancy().contains(&10));
        // But they are still findable.
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(500), Value::Int(500))),
            Some((Value::Int(500), Value::Int(500))),
        ])
        .unwrap();
        assert_eq!(gf.scan(&q).unwrap().records.len(), 10);
    }

    #[test]
    fn scales_grow_with_data() {
        let mut gf = file(2);
        for i in 0..64i64 {
            gf.insert(rec(i * 15, (i * 7) % 1000)).unwrap();
        }
        assert!(gf.scale(0).len() + gf.scale(1).len() > 0, "no scale growth");
        assert_eq!(gf.cell_counts()[0] as usize, gf.scale(0).len() + 1);
        gf.check_invariants().unwrap();
    }

    #[test]
    fn skewed_inserts_stay_consistent() {
        // All records on one line: splits must keep working on the other
        // dimension.
        let mut gf = file(3);
        for i in 0..100i64 {
            gf.insert(rec(7, i * 10 % 1000)).unwrap();
        }
        gf.check_invariants().unwrap();
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(7), Value::Int(7))),
            Some((Value::Int(0), Value::Int(499))),
        ])
        .unwrap();
        let scan = gf.scan(&q).unwrap();
        assert_eq!(scan.records.len(), 50);
    }

    #[test]
    fn scan_validates_queries() {
        let gf = file(4);
        assert!(gf.scan(&ValueRangeQuery::new(vec![None]).unwrap()).is_err());
        let inverted =
            ValueRangeQuery::new(vec![Some((Value::Int(9), Value::Int(1))), None]).unwrap();
        assert!(gf.scan(&inverted).is_err());
        let bad_type =
            ValueRangeQuery::new(vec![Some((Value::from("a"), Value::from("b"))), None]).unwrap();
        assert!(gf.scan(&bad_type).is_err());
    }

    #[test]
    fn delete_removes_one_matching_record() {
        let mut gf = file(3);
        for i in 0..20i64 {
            gf.insert(rec(i * 50, i * 50)).unwrap();
        }
        // Insert a duplicate; delete removes exactly one copy at a time.
        gf.insert(rec(100, 100)).unwrap();
        assert_eq!(gf.len(), 21);
        assert!(gf.delete(&rec(100, 100)).unwrap());
        assert_eq!(gf.len(), 20);
        assert!(gf.delete(&rec(100, 100)).unwrap());
        assert_eq!(gf.len(), 19);
        assert!(!gf.delete(&rec(100, 100)).unwrap());
        assert_eq!(gf.len(), 19);
        gf.check_invariants().unwrap();
        // Deleted records no longer match queries.
        let q = ValueRangeQuery::new(vec![
            Some((Value::Int(100), Value::Int(100))),
            Some((Value::Int(100), Value::Int(100))),
        ])
        .unwrap();
        assert!(gf.scan(&q).unwrap().records.is_empty());
    }

    #[test]
    fn delete_validates_records() {
        let mut gf = file(3);
        assert!(gf.delete(&Record::new(vec![Value::Int(1)])).is_err());
        assert!(gf.delete(&rec(-1, 0)).is_err());
        // Deleting from an empty file is a clean miss.
        assert!(!gf.delete(&rec(1, 1)).unwrap());
    }

    #[test]
    fn insert_delete_interleaving_keeps_invariants() {
        let mut gf = file(2);
        for round in 0..5 {
            for i in 0..30i64 {
                gf.insert(rec((i * 31 + round) % 1000, (i * 77) % 1000))
                    .unwrap();
            }
            for i in 0..15i64 {
                gf.delete(&rec((i * 31 + round) % 1000, (i * 77) % 1000))
                    .unwrap();
            }
            gf.check_invariants().unwrap();
        }
        assert_eq!(gf.len(), 5 * 15);
    }

    #[test]
    fn frozen_schema_matches_grid_file_resolution() {
        let mut gf = file(3);
        for i in 0..150i64 {
            gf.insert(rec((i * 41) % 1000, (i * 97) % 1000)).unwrap();
        }
        let schema = gf.to_schema().unwrap();
        assert_eq!(schema.space().dims(), gf.cell_counts());
        // Records route into the same cells under the frozen schema.
        for i in 0..150i64 {
            let r = rec((i * 41) % 1000, (i * 97) % 1000);
            let bucket = schema.bucket_of(&r).unwrap();
            let cell = gf.cell_of(&r);
            assert_eq!(bucket.as_slice(), cell.as_slice());
        }
    }

    #[test]
    fn three_dimensional_grid_file() {
        let mut gf = GridFile::new(
            vec![
                AttributeDomain::int("x", 0, 99),
                AttributeDomain::int("y", 0, 99),
                AttributeDomain::int("z", 0, 99),
            ],
            4,
        )
        .unwrap();
        for i in 0..200i64 {
            gf.insert(Record::new(vec![
                Value::Int((i * 11) % 100),
                Value::Int((i * 17) % 100),
                Value::Int((i * 23) % 100),
            ]))
            .unwrap();
        }
        gf.check_invariants().unwrap();
        assert!(gf.num_buckets() > 10);
        let q =
            ValueRangeQuery::new(vec![None, None, Some((Value::Int(0), Value::Int(49)))]).unwrap();
        let scan = gf.scan(&q).unwrap();
        assert_eq!(scan.records.len(), 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ValueRangeQuery;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_inserts_preserve_invariants_and_queries(
            points in proptest::collection::vec((0i64..100, 0i64..100), 1..150),
            cap in 1usize..6,
            (qx0, qx1, qy0, qy1) in (0i64..100, 0i64..100, 0i64..100, 0i64..100),
        ) {
            let mut gf = GridFile::new(
                vec![
                    AttributeDomain::int("x", 0, 99),
                    AttributeDomain::int("y", 0, 99),
                ],
                cap,
            ).unwrap();
            for &(x, y) in &points {
                gf.insert(Record::new(vec![Value::Int(x), Value::Int(y)])).unwrap();
            }
            prop_assert!(gf.check_invariants().is_ok(), "{:?}", gf.check_invariants());
            prop_assert_eq!(gf.len() as usize, points.len());

            let (xl, xh) = (qx0.min(qx1), qx0.max(qx1));
            let (yl, yh) = (qy0.min(qy1), qy0.max(qy1));
            let q = ValueRangeQuery::new(vec![
                Some((Value::Int(xl), Value::Int(xh))),
                Some((Value::Int(yl), Value::Int(yh))),
            ]).unwrap();
            let got = gf.scan(&q).unwrap().records.len();
            let expected = points
                .iter()
                .filter(|&&(x, y)| xl <= x && x <= xh && yl <= y && y <= yh)
                .count();
            prop_assert_eq!(got, expected);
        }
    }
}
